//! Incremental admission sessions: the gateway's tick loop exposed as
//! an open-ended `offer` / `advance_to` / `finish` surface, so a
//! streaming caller (the `bios-stream` engine) can interleave request
//! submission with its own per-tick simulation instead of assembling
//! the whole arrival trace up front.
//!
//! [`crate::Gateway::run`] is a thin wrapper over this module: it
//! offers the full trace and drives the session to drain. Both paths
//! therefore share one admission/breaker/brownout implementation, and
//! the batch digests pin the session's semantics.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bios_core::catalog::CatalogEntry;
use bios_faults::FaultPlan;
use bios_quorum::{QuorumScreen, QuorumSummary};
use bios_runtime::{JobResult, JobStream, Runtime};

use crate::breaker::{Admission, CircuitBreaker};
use crate::bucket::TokenBucket;
use crate::degrade::Quality;
use crate::{
    breaker_verdict, Disposition, Gateway, GatewayCounters, GatewayReport, Rejected, Request,
    RequestOutcome,
};

/// A job the session has dispatched whose logical service time has not
/// yet elapsed. The runtime result is fetched by `ticket` when
/// `done_tick` passes; no admission decision ever reads it earlier, so
/// pipelined physical execution cannot leak into logical ordering.
#[derive(Debug)]
struct InFlight {
    idx: usize,
    dispatched_tick: u64,
    done_tick: u64,
    probe: bool,
    quality: Quality,
    ticket: u64,
}

/// An open admission session over a [`Gateway`].
///
/// Requests are [`GatewaySession::offer`]ed at any time before their
/// arrival tick is processed; [`GatewaySession::advance_to`] runs the
/// deterministic tick loop (completions → arrivals → dispatch) up to
/// and including a tick and returns the outcomes that became terminal;
/// [`GatewaySession::finish`] drains everything still queued or in
/// flight and renders the final [`GatewayReport`] in offer order.
///
/// Jobs dispatch onto the runtime's worker pool immediately through a
/// [`JobStream`] and *complete* — logically — when their service ticks
/// elapse. Every admission, brownout, shed, and breaker decision is a
/// pure function of (config, offered requests, tick), so a session
/// produces byte-identical digests at any worker count.
#[derive(Debug)]
pub struct GatewaySession<'g> {
    gateway: &'g Gateway,
    stream: JobStream<'g>,
    /// Every offered request, in offer order (= report order).
    requests: Vec<Request>,
    /// Terminal disposition per request, filled as ticks pass.
    outcomes: Vec<Option<Disposition>>,
    counters: GatewayCounters,
    /// Indices of offered-but-unprocessed requests, sorted stably by
    /// arrival tick (ties keep offer order).
    pending: Vec<usize>,
    buckets: BTreeMap<String, TokenBucket>,
    breakers: BTreeMap<String, CircuitBreaker>,
    probes: BTreeSet<usize>,
    /// Admitted routine work awaiting a service slot.
    routine: VecDeque<usize>,
    /// Admitted recalibration-class work; drained before `routine`.
    recal: VecDeque<usize>,
    running: Vec<InFlight>,
    /// Completions fetched from the stream ahead of their logical tick.
    results: BTreeMap<u64, JobResult>,
    /// Last tick the loop processed; events never run earlier.
    last_tick: Option<u64>,
    drained_tick: Option<u64>,
    /// Fault plan applied to every job this session dispatches — the
    /// per-tenant chaos seam `bios-shard` arms (see
    /// [`GatewaySession::set_fault_plan`]).
    plan: Option<FaultPlan>,
    /// Runtime whose worker pool physically executes the next
    /// dispatches; `None` means the session's own gateway runtime (see
    /// [`GatewaySession::set_execution_host`]).
    host: Option<&'g Runtime>,
    /// Optional redundancy screen (the `bios-quorum` seam): covered
    /// completions are re-polled across replica lanes and voted before
    /// the result stands (see [`GatewaySession::set_quorum`]).
    quorum: Option<QuorumScreen>,
}

impl<'g> GatewaySession<'g> {
    pub(crate) fn new(gateway: &'g Gateway) -> GatewaySession<'g> {
        GatewaySession {
            gateway,
            stream: gateway.runtime().open_stream(),
            requests: Vec::new(),
            outcomes: Vec::new(),
            counters: GatewayCounters::default(),
            pending: Vec::new(),
            buckets: BTreeMap::new(),
            breakers: BTreeMap::new(),
            probes: BTreeSet::new(),
            routine: VecDeque::new(),
            recal: VecDeque::new(),
            running: Vec::new(),
            results: BTreeMap::new(),
            last_tick: None,
            drained_tick: None,
            plan: None,
            host: None,
            quorum: None,
        }
    }

    /// Arms a fault plan on every job this session dispatches from now
    /// on — the per-tenant chaos seam: `bios-shard` arms one tenant's
    /// plan on that tenant's session only, so a neighbor's session
    /// (its own breakers, buckets, queues, and counters) never sees it.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// Routes the *physical* execution of subsequent dispatches onto
    /// `host`'s worker pool (or back to the session's own gateway
    /// runtime with `None`) — the work-stealing/redistribution seam.
    /// Accounting never moves: jobs are still billed to, memoized in,
    /// and collected from the home runtime
    /// (see [`JobStream::submit_on`]), and because job outcomes are
    /// pure functions of `(entry, seed, plan)` the digest is
    /// host-independent.
    pub fn set_execution_host(&mut self, host: Option<&'g Runtime>) {
        self.host = host;
    }

    /// Arms (or disarms) the redundancy screen on this session's
    /// completions. Every recalibration-class completion and a sampled
    /// fraction of routine ones is re-polled across replica lanes and
    /// majority-voted before the result stands; disagreements, catches,
    /// and quarantines are metered on the home runtime's registry. The
    /// vote validates the already-committed value, so arming a screen
    /// never changes a digest — only what is observed about it.
    pub fn set_quorum(&mut self, screen: Option<QuorumScreen>) {
        self.quorum = screen;
    }

    /// Totals accumulated by the armed quorum screen, if any.
    pub fn quorum_summary(&self) -> Option<QuorumSummary> {
        self.quorum.as_ref().map(QuorumScreen::summary)
    }

    /// The armed quorum screen, if any (scoreboard inspection).
    pub fn quorum(&self) -> Option<&QuorumScreen> {
        self.quorum.as_ref()
    }

    /// Offers one request to the session. A request whose arrival tick
    /// has already been processed is clamped forward to the next
    /// unprocessed tick — arrivals never land in the past.
    pub fn offer(&mut self, mut request: Request) {
        if let Some(last) = self.last_tick {
            request.arrival_tick = request.arrival_tick.max(last + 1);
        }
        let idx = self.requests.len();
        let at = request.arrival_tick;
        // Stable insert: after every pending request arriving at or
        // before `at`, so ties keep offer order.
        let pos = self
            .pending
            .partition_point(|&i| self.requests[i].arrival_tick <= at);
        self.pending.insert(pos, idx);
        self.requests.push(request);
        self.outcomes.push(None);
    }

    /// Requests offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.requests.len()
    }

    /// Requests not yet terminal (pending arrival, queued, or in
    /// flight).
    #[must_use]
    pub fn open(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_none()).count()
    }

    /// The session's counters so far.
    #[must_use]
    pub fn counters(&self) -> GatewayCounters {
        self.counters
    }

    /// The next tick at which anything can happen — the earliest of
    /// the next pending arrival, the next in-flight completion, and
    /// (when admitted work waits for a slot) the tick after the last
    /// processed one. `None` when the session is fully drained.
    #[must_use]
    pub fn next_event_tick(&self) -> Option<u64> {
        let floor = self.last_tick.map_or(0, |t| t.saturating_add(1));
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            let t = t.max(floor);
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(&idx) = self.pending.first() {
            consider(self.requests[idx].arrival_tick);
        }
        if let Some(done) = self.running.iter().map(|r| r.done_tick).min() {
            consider(done);
        }
        if !self.routine.is_empty() || !self.recal.is_empty() {
            consider(floor);
        }
        next
    }

    /// Processes every event tick up to and including `tick`, in
    /// order, and returns the outcomes that became terminal, in
    /// deterministic processing order (completions of a tick before
    /// its rejections, ticks ascending).
    pub fn advance_to(&mut self, tick: u64) -> Vec<RequestOutcome> {
        let mut terminal = Vec::new();
        while let Some(event) = self.next_event_tick() {
            if event > tick {
                break;
            }
            self.process_tick(event, &mut terminal);
        }
        terminal
    }

    /// Drains the session — every offered request reaches a terminal
    /// outcome — and renders the report in offer order.
    #[must_use]
    pub fn finish(mut self) -> GatewayReport {
        let mut sink = Vec::new();
        while let Some(event) = self.next_event_tick() {
            self.process_tick(event, &mut sink);
        }
        let outcomes = self
            .requests
            .iter()
            .zip(&self.outcomes)
            .map(|(req, slot)| {
                RequestOutcome {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    sensor: req.entry.id().to_string(),
                    seed: req.seed,
                    arrival_tick: req.arrival_tick,
                    priority: req.priority,
                    // Every request is terminal by construction: offers
                    // either reject or enqueue, and the drain loop only
                    // stops once queues and the running set are empty.
                    disposition: slot
                        .clone()
                        .unwrap_or(Disposition::Rejected(Rejected::QueueFull)),
                }
            })
            .collect();
        GatewayReport {
            outcomes,
            drained_tick: self.drained_tick.unwrap_or(0),
            counters: self.counters,
        }
    }

    /// One tick of the deterministic loop: completions due at this
    /// tick feed the breakers, arrivals are admitted or rejected, and
    /// free service slots dispatch queued work (recalibration class
    /// first).
    fn process_tick(&mut self, tick: u64, terminal: &mut Vec<RequestOutcome>) {
        let metrics = self.gateway.runtime().metrics_handle();
        let config = self.gateway.config();
        self.last_tick = Some(tick);
        if self.drained_tick.is_none() {
            self.drained_tick = Some(tick);
        }

        // 1. Completions due at this tick, in (done tick, dispatch
        // tick, offer position) order, feed the breakers.
        let mut due: Vec<InFlight> = Vec::new();
        let mut still: Vec<InFlight> = Vec::new();
        for r in self.running.drain(..) {
            if r.done_tick <= tick {
                due.push(r);
            } else {
                still.push(r);
            }
        }
        self.running = still;
        due.sort_by_key(|r| (r.done_tick, r.dispatched_tick, r.idx));
        for fin in due {
            let result = self.take_result(fin.ticket);
            let family = self.requests[fin.idx].family().to_owned();
            let breaker = self
                .breakers
                .entry(family)
                .or_insert_with(|| CircuitBreaker::new(config.breaker));
            match breaker_verdict(&result) {
                Some(ok) if breaker.on_result(ok, fin.probe, tick) => {
                    self.counters.breaker_trips += 1;
                    metrics.record_breaker_trip();
                }
                Some(_) => {}
                None if fin.probe => breaker.cancel_probe(),
                None => {}
            }
            if let Some(screen) = self.quorum.as_mut() {
                let critical = self.requests[fin.idx].is_recalibration();
                if let Some(verdict) = screen.screen_result(self.plan.as_ref(), &result, critical) {
                    bios_quorum::meter(&verdict, &metrics);
                }
            }
            self.drained_tick = Some(
                self.drained_tick
                    .unwrap_or(fin.done_tick)
                    .max(fin.done_tick),
            );
            let disposition = Disposition::Executed {
                quality: fin.quality,
                dispatched_tick: fin.dispatched_tick,
                done_tick: fin.done_tick,
                result,
            };
            self.outcomes[fin.idx] = Some(disposition);
            terminal.push(self.outcome_of(fin.idx));
        }

        // 2. Arrivals at this tick, in offer order: rate limit (waived
        // for the recalibration class), then queue capacity, then the
        // family breaker.
        let arriving = self
            .pending
            .partition_point(|&i| self.requests[i].arrival_tick <= tick);
        let arrived: Vec<usize> = self.pending.drain(..arriving).collect();
        for idx in arrived {
            let req = &self.requests[idx];
            if !req.is_recalibration() {
                let bucket = self.buckets.entry(req.tenant.clone()).or_insert_with(|| {
                    TokenBucket::new(
                        config.bucket_capacity_milli,
                        config.bucket_refill_milli_per_tick,
                    )
                });
                bucket.advance_to(tick);
                if !bucket.try_take(TokenBucket::WHOLE_TOKEN) {
                    self.counters.rate_limited += 1;
                    metrics.record_rate_limited();
                    self.outcomes[idx] = Some(Disposition::Rejected(Rejected::RateLimited));
                    terminal.push(self.outcome_of(idx));
                    continue;
                }
            }
            let req = &self.requests[idx];
            if self.routine.len() + self.recal.len() >= config.queue_capacity.max(1) {
                self.counters.admission_rejected += 1;
                metrics.record_admission_rejected();
                self.outcomes[idx] = Some(Disposition::Rejected(Rejected::QueueFull));
                terminal.push(self.outcome_of(idx));
                continue;
            }
            let breaker = self
                .breakers
                .entry(req.family().to_owned())
                .or_insert_with(|| CircuitBreaker::new(config.breaker));
            match breaker.admit(tick) {
                Admission::Reject => {
                    self.outcomes[idx] = Some(Disposition::Rejected(Rejected::BreakerOpen));
                    terminal.push(self.outcome_of(idx));
                    continue;
                }
                Admission::Probe => {
                    self.counters.breaker_half_open_probes += 1;
                    metrics.record_breaker_half_open_probe();
                    self.probes.insert(idx);
                }
                Admission::Admit => {}
            }
            if self.requests[idx].is_recalibration() {
                self.recal.push_back(idx);
            } else {
                self.routine.push_back(idx);
            }
        }

        // 3. Dispatch into free slots, recalibration class first:
        // charge queueing time against the deadline budget, brown out
        // routine work under pressure (recalibrations never degrade),
        // shed what cannot finish in budget. Jobs go to the worker
        // pool immediately; their results are not read before their
        // done tick.
        let slots = config.service_slots.max(1);
        while self.running.len() < slots {
            let (idx, is_recal) = match self.recal.pop_front() {
                Some(idx) => (idx, true),
                None => match self.routine.pop_front() {
                    Some(idx) => (idx, false),
                    None => break,
                },
            };
            let req = &self.requests[idx];
            let waited = tick.saturating_sub(req.arrival_tick);
            let remaining = req.deadline_ticks.saturating_sub(waited);
            let full_ticks = self.gateway.service_ticks(req.entry.calibration_workload());
            let fits_full = full_ticks <= remaining;
            let dispatch: Option<(CatalogEntry, Quality, u64)> = if is_recal {
                // A degraded sweep would corrupt the calibration epoch
                // it is meant to restore: full resolution or nothing.
                fits_full.then(|| (req.entry.clone(), Quality::Full, full_ticks))
            } else {
                let pressured = config
                    .degradation
                    .triggered(self.routine.len() + self.recal.len(), config.queue_capacity);
                if fits_full && !pressured {
                    Some((req.entry.clone(), Quality::Full, full_ticks))
                } else {
                    let thin = config.degradation.degrade(&req.entry);
                    let thin_ticks = self.gateway.service_ticks(thin.calibration_workload());
                    if thin_ticks <= remaining && thin_ticks < full_ticks {
                        self.counters.browned_out += 1;
                        metrics.record_browned_out();
                        Some((thin, Quality::Degraded, thin_ticks))
                    } else if fits_full {
                        // Pressured, but degradation cannot shrink this
                        // entry: run it at full resolution anyway.
                        Some((req.entry.clone(), Quality::Full, full_ticks))
                    } else {
                        None
                    }
                }
            };
            match dispatch {
                Some((entry, quality, serv)) => {
                    let seed = self.requests[idx].seed;
                    let host = self.host.unwrap_or_else(|| self.gateway.runtime());
                    let ticket = self
                        .stream
                        .submit_on(host, &entry, seed, self.plan.as_ref());
                    self.running.push(InFlight {
                        idx,
                        dispatched_tick: tick,
                        done_tick: tick + serv,
                        probe: self.probes.remove(&idx),
                        quality,
                        ticket,
                    });
                }
                None => {
                    self.counters.deadline_shed += 1;
                    metrics.record_deadline_shed();
                    if self.probes.remove(&idx) {
                        let family = self.requests[idx].family().to_owned();
                        if let Some(b) = self.breakers.get_mut(&family) {
                            b.cancel_probe();
                        }
                    }
                    self.outcomes[idx] = Some(Disposition::Rejected(Rejected::DeadlineShed));
                    terminal.push(self.outcome_of(idx));
                }
            }
        }
    }

    /// Blocks until the runtime result for `ticket` is available.
    /// Results arriving out of order are parked for their own tick.
    fn take_result(&mut self, ticket: u64) -> JobResult {
        loop {
            if let Some(result) = self.results.remove(&ticket) {
                return result;
            }
            match self.stream.recv() {
                Some((t, result)) => {
                    self.results.insert(t, result);
                }
                None => {
                    // Unreachable in practice: every dispatched ticket
                    // is outstanding until received, and a lost worker
                    // surfaces as a synthesized failure, not a closed
                    // stream. Degrade to an explicit loss regardless.
                    let req = &self.requests;
                    let (sensor, seed) = self
                        .running
                        .iter()
                        .find(|r| r.ticket == ticket)
                        .map_or_else(
                            || (String::from("unknown"), 0),
                            |r| (req[r.idx].entry.id().to_owned(), req[r.idx].seed),
                        );
                    return JobResult {
                        index: ticket as usize,
                        sensor,
                        seed,
                        wall: std::time::Duration::ZERO,
                        from_cache: false,
                        attempts: 0,
                        injected: bios_faults::FaultTally::default(),
                        outcome: Err(bios_runtime::JobError::Panicked("stream closed".into())),
                        integrity: 0,
                    }
                    .sealed();
                }
            }
        }
    }

    /// Renders the terminal [`RequestOutcome`] for an index whose
    /// disposition slot has just been filled.
    fn outcome_of(&self, idx: usize) -> RequestOutcome {
        let req = &self.requests[idx];
        RequestOutcome {
            id: req.id,
            tenant: req.tenant.clone(),
            sensor: req.entry.id().to_string(),
            seed: req.seed,
            arrival_tick: req.arrival_tick,
            priority: req.priority,
            disposition: self.outcomes[idx]
                .clone()
                .unwrap_or(Disposition::Rejected(Rejected::QueueFull)),
        }
    }
}

//! Overload end-to-end pins: a bursty trace through the full gateway
//! must shed, brown out, and trip byte-identically at any worker
//! count, and browned-out results must stay close to full-resolution
//! truth.

use bios_core::catalog::{our_glucose_sensor, our_lactate_sensor, CatalogEntry};
use bios_faults::{FaultKind, FaultPlan};
use bios_gateway::{
    BreakerConfig, DegradationPolicy, Disposition, Gateway, GatewayConfig, Quality, Request,
    TokenBucket,
};
use bios_runtime::{Runtime, RuntimeConfig};

fn overload_config() -> GatewayConfig {
    GatewayConfig {
        queue_capacity: 6,
        service_slots: 2,
        work_units_per_tick: 256,
        default_deadline_ticks: 24,
        bucket_capacity_milli: 6 * TokenBucket::WHOLE_TOKEN,
        bucket_refill_milli_per_tick: TokenBucket::WHOLE_TOKEN / 2,
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown_ticks: 6,
            probe_quota: 1,
        },
        degradation: DegradationPolicy::default(),
        ..GatewayConfig::default()
    }
}

/// A bursty mixed trace: two tenants, a healthy glucose family, and a
/// poisoned lactate family (two sweep points are below the analytics
/// three-standard minimum ⇒ deterministic calibration error), with
/// arrivals compressed by a TrafficBurst fault spec.
fn overload_trace(gateway: &Gateway) -> Vec<Request> {
    let plan = FaultPlan::builder("overload-pin", 0xB10C)
        .spec(FaultKind::TrafficBurst, 0.6, 1.0)
        .build();
    let poisoned = our_lactate_sensor().with_sweep_points(2);
    let pairs: Vec<(CatalogEntry, u64)> = (0..40)
        .map(|i| {
            if i % 4 == 3 {
                (poisoned.clone(), i)
            } else {
                (our_glucose_sensor(), i)
            }
        })
        .collect();
    let mut trace = gateway.trace_from_plan(&plan, &pairs, "ward-a", 2);
    for (i, req) in trace.iter_mut().enumerate() {
        if i % 3 == 0 {
            req.tenant = "ward-b".to_string();
        }
    }
    trace
}

fn run_at(workers: usize) -> bios_gateway::GatewayReport {
    let runtime = Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    let gateway = Gateway::new(overload_config(), runtime);
    let trace = overload_trace(&gateway);
    gateway.run(&trace)
}

#[test]
fn overloaded_fleet_sheds_the_identical_job_set_at_1_2_and_8_workers() {
    let reports: Vec<_> = [1usize, 2, 8].iter().map(|&w| run_at(w)).collect();
    let digests: Vec<String> = reports.iter().map(|r| r.digest()).collect();
    assert_eq!(digests[0], digests[1], "1 vs 2 workers");
    assert_eq!(digests[1], digests[2], "2 vs 8 workers");

    // The pin is only meaningful if the trace actually overloads the
    // gateway: every robustness mechanism must have fired.
    let c = &reports[0].counters;
    assert!(c.rate_limited > 0, "rate limiter never fired: {c}");
    assert!(c.browned_out > 0, "brownout never fired: {c}");
    assert!(c.breaker_trips > 0, "breaker never tripped: {c}");
    assert!(
        reports[0].clean_drain(),
        "every request must reach a terminal outcome"
    );

    // And the shed/brownout *sets*, not just counts, must agree.
    for r in &reports[1..] {
        assert_eq!(r.executed_ids(), reports[0].executed_ids());
        assert_eq!(r.browned_out_ids(), reports[0].browned_out_ids());
        assert_eq!(
            r.rejected_ids(bios_gateway::Rejected::RateLimited),
            reports[0].rejected_ids(bios_gateway::Rejected::RateLimited)
        );
        assert_eq!(
            r.rejected_ids(bios_gateway::Rejected::BreakerOpen),
            reports[0].rejected_ids(bios_gateway::Rejected::BreakerOpen)
        );
    }
}

#[test]
fn brownout_accuracy_loss_is_bounded() {
    // Golden bound: a glucose calibration at the browned-out sweep
    // resolution must reproduce the full-resolution sensitivity within
    // 10%. If someone makes the degradation policy more aggressive,
    // this pin forces the accuracy conversation.
    let policy = DegradationPolicy::default();
    let full = our_glucose_sensor();
    let thin = policy.degrade(&full);
    assert_eq!(thin.sweep_points(), 12, "default policy halves 25 points");

    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let gateway = Gateway::new(GatewayConfig::default(), runtime);
    let reqs = vec![
        Request::new(0, "golden", full, 42, 0, 1000),
        Request::new(1, "golden", thin, 42, 0, 1000),
    ];
    let report = gateway.run(&reqs);
    let sens: Vec<f64> = report
        .outcomes
        .iter()
        .map(|o| match &o.disposition {
            Disposition::Executed { result, .. } => match &result.outcome {
                Ok(outcome) => outcome
                    .summary
                    .sensitivity
                    .as_micro_amps_per_milli_molar_square_cm(),
                Err(e) => panic!("golden run failed: {e}"),
            },
            Disposition::Rejected(r) => panic!("golden run rejected: {r}"),
        })
        .collect();
    let rel = ((sens[1] - sens[0]) / sens[0]).abs();
    assert!(
        rel < 0.10,
        "degraded sensitivity {} deviates {:.1}% from full {} (bound 10%)",
        sens[1],
        rel * 100.0,
        sens[0]
    );
}

#[test]
fn degraded_results_are_tagged_and_cheaper() {
    // Force brownout with a tiny queue and a pressure watermark of 0:
    // every dispatch is pressured, so every executed job is degraded.
    let config = GatewayConfig {
        degradation: DegradationPolicy {
            pressure_num: 0,
            pressure_den: 1,
            ..DegradationPolicy::default()
        },
        ..GatewayConfig::default()
    };
    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let gateway = Gateway::new(config, runtime);
    let reqs: Vec<Request> = (0..3)
        .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, i * 8, 64))
        .collect();
    let report = gateway.run(&reqs);
    assert_eq!(report.browned_out_ids(), vec![0, 1, 2]);
    assert_eq!(report.counters.browned_out, 3);
    for o in &report.outcomes {
        let Disposition::Executed {
            quality,
            dispatched_tick,
            done_tick,
            ..
        } = &o.disposition
        else {
            panic!("request {} did not execute", o.id);
        };
        assert_eq!(*quality, Quality::Degraded);
        // Degraded glucose: (30 + 12·3)·8 = 528 units ⇒ 3 ticks at 256.
        assert_eq!(done_tick - dispatched_tick, 3);
    }
}

#[test]
fn quiet_traffic_passes_through_untouched() {
    // The robustness layer must be invisible when there is no
    // overload: no rejections, no brownouts, no trips.
    let report = {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let gateway = Gateway::new(GatewayConfig::default(), runtime);
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::new(i, "clinic", our_glucose_sensor(), i, i * 10, 100))
            .collect();
        gateway.run(&reqs)
    };
    assert_eq!(report.executed_ids().len(), 6);
    assert_eq!(report.counters, bios_gateway::GatewayCounters::default());
    assert!(report.clean_drain());
}

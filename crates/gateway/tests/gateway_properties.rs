//! Property and exhaustive small-state tests for the gateway's two
//! decision machines: the token bucket and the circuit breaker.
//!
//! The breaker state space is small enough to enumerate outright:
//! every ok/fail outcome sequence of length 10 (2¹⁰ = 1024 traces) is
//! driven through a breaker with a tight config, checking structural
//! invariants after every step. The bucket properties are driven by
//! the in-tree seeded [`bios_prng::cases`] driver.

use bios_gateway::{Admission, BreakerConfig, BreakerState, CircuitBreaker, TokenBucket};
use bios_prng::cases;

/// Drives one ok/fail trace through a breaker, interleaving admission
/// probes, and checks invariants at every step.
fn drive_trace(trace_bits: u32, len: u32, config: BreakerConfig) {
    let mut b = CircuitBreaker::new(config);
    let mut tick = 0u64;
    let mut probe_pending = 0u32;
    for step in 0..len {
        tick += 1;
        // Interleave an admission attempt before each outcome so the
        // Open → HalfOpen transition is exercised mid-trace.
        let admission = b.admit(tick);
        match admission {
            Admission::Probe => {
                probe_pending += 1;
                assert_ne!(
                    b.state(),
                    BreakerState::Closed,
                    "probes only issue from a half-open breaker"
                );
            }
            Admission::Admit => {
                assert_eq!(
                    b.state(),
                    BreakerState::Closed,
                    "plain admits only when closed"
                );
            }
            Admission::Reject => {
                assert_ne!(
                    b.state(),
                    BreakerState::Closed,
                    "a closed breaker never rejects"
                );
            }
        }
        let ok = (trace_bits >> step) & 1 == 1;
        let as_probe = probe_pending > 0;
        if as_probe {
            probe_pending -= 1;
        }
        let tripped = b.on_result(ok, as_probe, tick);
        if tripped {
            assert_eq!(b.state(), BreakerState::Open, "a trip always lands Open");
            assert!(!ok, "a success can never trip the breaker");
        }
        if ok && b.state() == BreakerState::Open {
            // The only way a success leaves the breaker open is as a
            // straggler that arrived while already open.
            assert!(!tripped);
        }
    }
}

#[test]
fn breaker_invariants_hold_on_every_length_10_trace() {
    let config = BreakerConfig {
        trip_after: 2,
        cooldown_ticks: 3,
        probe_quota: 2,
    };
    for trace in 0u32..(1 << 10) {
        drive_trace(trace, 10, config);
    }
}

#[test]
fn breaker_closed_to_open_needs_exactly_trip_after_consecutive_failures() {
    for trip_after in 1u32..=4 {
        let config = BreakerConfig {
            trip_after,
            cooldown_ticks: 100,
            probe_quota: 1,
        };
        let mut b = CircuitBreaker::new(config);
        for i in 0..trip_after - 1 {
            assert!(!b.on_result(false, false, u64::from(i)));
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // One success resets the whole streak…
        assert!(!b.on_result(true, false, 10));
        for i in 0..trip_after - 1 {
            assert!(!b.on_result(false, false, 11 + u64::from(i)));
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "streak reset by the success"
        );
        // …and only an unbroken streak of `trip_after` trips.
        assert!(b.on_result(false, false, 20));
        assert_eq!(b.state(), BreakerState::Open);
    }
}

#[test]
fn breaker_full_recovery_cycle_closed_open_half_open_closed() {
    let config = BreakerConfig {
        trip_after: 3,
        cooldown_ticks: 5,
        probe_quota: 2,
    };
    let mut b = CircuitBreaker::new(config);
    assert_eq!(b.state(), BreakerState::Closed);
    for t in 0..3 {
        b.on_result(false, false, t);
    }
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.admit(6), Admission::Reject, "cooldown not yet elapsed");
    assert_eq!(
        b.admit(7),
        Admission::Probe,
        "cooldown elapsed (5 ticks after trip at 2)"
    );
    assert_eq!(b.state(), BreakerState::HalfOpen);
    assert_eq!(b.admit(7), Admission::Probe, "quota of 2");
    assert_eq!(b.admit(7), Admission::Reject, "quota exhausted");
    assert!(!b.on_result(true, true, 8));
    assert_eq!(
        b.state(),
        BreakerState::HalfOpen,
        "one success is not enough"
    );
    assert!(!b.on_result(true, true, 9));
    assert_eq!(b.state(), BreakerState::Closed, "quota met closes the loop");
}

#[test]
fn bucket_refill_is_monotone_in_elapsed_ticks() {
    cases(0x0601, 128, |rng| {
        let capacity = 1 + (rng.next_u64() % 50_000);
        let rate = rng.next_u64() % 5_000;
        let spend = rng.next_u64() % (capacity + 1);
        let t1 = rng.next_u64() % 1_000;
        let t2 = t1 + rng.next_u64() % 1_000;
        let mut a = TokenBucket::new(capacity, rate);
        assert!(a.try_take(spend));
        let mut b = a.clone();
        a.advance_to(t1);
        b.advance_to(t2);
        assert!(
            b.level_milli() >= a.level_milli(),
            "waiting longer can never yield fewer tokens (t1={t1} t2={t2})"
        );
    });
}

#[test]
fn bucket_level_never_exceeds_capacity() {
    cases(0x0602, 128, |rng| {
        let capacity = 1 + (rng.next_u64() % 10_000);
        let rate = rng.next_u64() % u32::MAX as u64;
        let mut b = TokenBucket::new(capacity, rate);
        let mut tick = 0u64;
        for _ in 0..32 {
            tick += rng.next_u64() % 1_000;
            b.advance_to(tick);
            assert!(
                b.level_milli() <= b.capacity_milli(),
                "level {} above capacity {}",
                b.level_milli(),
                b.capacity_milli()
            );
            let cost = rng.next_u64() % (capacity * 2);
            let before = b.level_milli();
            let taken = b.try_take(cost);
            assert_eq!(taken, before >= cost, "take succeeds iff affordable");
            if taken {
                assert_eq!(b.level_milli(), before - cost, "take is exact");
            } else {
                assert_eq!(b.level_milli(), before, "a refused take never drains");
            }
        }
    });
}

#[test]
fn bucket_interleaved_advances_equal_one_big_advance() {
    cases(0x0603, 64, |rng| {
        let capacity = 1 + (rng.next_u64() % 100_000);
        let rate = rng.next_u64() % 100;
        let mut stepped = TokenBucket::new(capacity, rate);
        let mut jumped = TokenBucket::new(capacity, rate);
        assert!(stepped.try_take(capacity));
        assert!(jumped.try_take(capacity));
        let hops: Vec<u64> = (0..8).map(|_| rng.next_u64() % 100).collect();
        let mut tick = 0u64;
        for h in &hops {
            tick += h;
            stepped.advance_to(tick);
        }
        jumped.advance_to(tick);
        // Refill below capacity is linear, so path does not matter —
        // only when the clamp engages may the stepped path differ, and
        // then both must sit at the same clamped level.
        assert_eq!(
            stepped.level_milli(),
            jumped.level_milli(),
            "refill must be path-independent"
        );
    });
}

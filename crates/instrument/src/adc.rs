//! Analog-to-digital conversion.

use bios_units::Volts;

/// An ideal mid-tread ADC with `bits` resolution over `±full_scale`.
///
/// §2.5 of the paper notes that electrochemical signals are analog and
/// that integrating the converter on-chip is part of the platform; the
/// quantization step here is the last noise source in the simulated
/// chain.
///
/// # Examples
///
/// ```
/// use bios_instrument::Adc;
/// use bios_units::Volts;
///
/// let adc = Adc::new(12, Volts::from_volts(3.3));
/// let code = adc.quantize(Volts::from_volts(1.0));
/// let v = adc.reconstruct(code);
/// assert!((v.as_volts() - 1.0).abs() < adc.lsb().as_volts());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adc {
    bits: u8,
    full_scale_milli: i64,
}

impl Adc {
    /// Creates a converter.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 24` and the full scale is positive.
    #[must_use]
    pub fn new(bits: u8, full_scale: Volts) -> Adc {
        assert!((2..=24).contains(&bits), "resolution must be 2–24 bits");
        assert!(full_scale.as_volts() > 0.0, "full scale must be positive");
        Adc {
            bits,
            full_scale_milli: (full_scale.as_milli_volts()).round() as i64,
        }
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale voltage (codes span `±full_scale`).
    #[must_use]
    pub fn full_scale(&self) -> Volts {
        Volts::from_milli_volts(self.full_scale_milli as f64)
    }

    /// The voltage of one least-significant bit.
    #[must_use]
    pub fn lsb(&self) -> Volts {
        Volts::from_volts(2.0 * self.full_scale().as_volts() / self.levels() as f64)
    }

    /// Number of quantization levels, `2^bits`.
    #[must_use]
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Quantizes a voltage to a signed code, clamping out-of-range
    /// inputs.
    #[must_use]
    pub fn quantize(&self, v: Volts) -> i64 {
        let half = (self.levels() / 2) as i64;
        let code = (v.as_volts() / self.lsb().as_volts()).round() as i64;
        code.clamp(-half, half - 1)
    }

    /// Reconstructs the analog value of a code.
    #[must_use]
    pub fn reconstruct(&self, code: i64) -> Volts {
        Volts::from_volts(code as f64 * self.lsb().as_volts())
    }

    /// Quantize-then-reconstruct in one step — the effective measured
    /// voltage.
    #[must_use]
    pub fn digitize(&self, v: Volts) -> Volts {
        self.reconstruct(self.quantize(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc() -> Adc {
        Adc::new(12, Volts::from_volts(3.3))
    }

    #[test]
    fn lsb_for_12_bits() {
        // 6.6 V span / 4096 ≈ 1.61 mV.
        assert!((adc().lsb().as_milli_volts() - 1.611).abs() < 0.01);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let a = adc();
        for k in -50..50 {
            let v = Volts::from_milli_volts(k as f64 * 13.7);
            let err = (a.digitize(v).as_volts() - v.as_volts()).abs();
            assert!(err <= a.lsb().as_volts() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let a = adc();
        let hi = a.quantize(Volts::from_volts(10.0));
        assert_eq!(hi, (a.levels() / 2) as i64 - 1);
        let lo = a.quantize(Volts::from_volts(-10.0));
        assert_eq!(lo, -((a.levels() / 2) as i64));
    }

    #[test]
    fn more_bits_smaller_lsb() {
        let a = Adc::new(10, Volts::from_volts(3.3));
        let b = Adc::new(16, Volts::from_volts(3.3));
        assert!(b.lsb() < a.lsb());
        assert!((a.lsb().as_volts() / b.lsb().as_volts() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(adc().quantize(Volts::ZERO), 0);
        assert_eq!(adc().digitize(Volts::ZERO), Volts::ZERO);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn silly_resolution_rejected() {
        let _ = Adc::new(32, Volts::from_volts(3.3));
    }
}

//! Transimpedance amplification of the sensor current.

use bios_units::{Amperes, Ohms, Volts};

/// A transimpedance (current-to-voltage) amplifier stage.
///
/// The standard front end of every amperometric readout: the working
/// electrode current flows through a feedback resistor, producing
/// `V = −I·R_f` (we keep the sign positive for convenience).
///
/// # Examples
///
/// ```
/// use bios_instrument::TransimpedanceAmplifier;
/// use bios_units::{Amperes, Ohms, Volts};
///
/// let tia = TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3));
/// let v = tia.convert(Amperes::from_micro_amps(1.5));
/// assert!((v.as_volts() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransimpedanceAmplifier {
    gain: Ohms,
    rail: Volts,
}

impl TransimpedanceAmplifier {
    /// Creates an amplifier with feedback resistance `gain` and supply
    /// rail `rail` (output clips at ±rail).
    ///
    /// # Panics
    ///
    /// Panics if the gain or rail is not positive.
    #[must_use]
    pub fn new(gain: Ohms, rail: Volts) -> TransimpedanceAmplifier {
        assert!(gain.as_ohms() > 0.0, "gain must be positive");
        assert!(rail.as_volts() > 0.0, "supply rail must be positive");
        TransimpedanceAmplifier { gain, rail }
    }

    /// Feedback resistance.
    #[must_use]
    pub fn gain(&self) -> Ohms {
        self.gain
    }

    /// Supply rail (clipping level).
    #[must_use]
    pub fn rail(&self) -> Volts {
        self.rail
    }

    /// Converts a current to the output voltage, clipping at the rails.
    #[must_use]
    pub fn convert(&self, current: Amperes) -> Volts {
        let v = self.gain.as_ohms() * current.as_amps();
        Volts::from_volts(v.clamp(-self.rail.as_volts(), self.rail.as_volts()))
    }

    /// Inverse conversion for an *unclipped* output voltage.
    #[must_use]
    pub fn invert(&self, output: Volts) -> Amperes {
        Amperes::from_amps(output.as_volts() / self.gain.as_ohms())
    }

    /// The largest current representable before clipping.
    #[must_use]
    pub fn full_scale_current(&self) -> Amperes {
        Amperes::from_amps(self.rail.as_volts() / self.gain.as_ohms())
    }

    /// Whether `current` would clip.
    #[must_use]
    pub fn saturates_at(&self, current: Amperes) -> bool {
        current.as_amps().abs() > self.full_scale_current().as_amps()
    }

    /// Picks the largest decade gain (10ᵏ Ω) that keeps `expected_max`
    /// within 80 % of full scale — auto-ranging, as a real potentiostat
    /// front end does.
    #[must_use]
    pub fn auto_range(expected_max: Amperes, rail: Volts) -> TransimpedanceAmplifier {
        let target = 0.8 * rail.as_volts();
        let i = expected_max.as_amps().abs().max(1e-12);
        let r = target / i;
        let decade = 10f64.powf(r.log10().floor());
        TransimpedanceAmplifier::new(Ohms::from_ohms(decade), rail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tia() -> TransimpedanceAmplifier {
        TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3))
    }

    #[test]
    fn conversion_round_trips() {
        let i = Amperes::from_nano_amps(420.0);
        let v = tia().convert(i);
        let back = tia().invert(v);
        assert!((back.as_nano_amps() - 420.0).abs() < 1e-9);
    }

    #[test]
    fn clips_at_rail() {
        let v = tia().convert(Amperes::from_micro_amps(10.0));
        assert!((v.as_volts() - 3.3).abs() < 1e-12);
        let v = tia().convert(Amperes::from_micro_amps(-10.0));
        assert!((v.as_volts() + 3.3).abs() < 1e-12);
    }

    #[test]
    fn full_scale_and_saturation() {
        let fs = tia().full_scale_current();
        assert!((fs.as_micro_amps() - 3.3).abs() < 1e-9);
        assert!(tia().saturates_at(Amperes::from_micro_amps(4.0)));
        assert!(!tia().saturates_at(Amperes::from_micro_amps(3.0)));
    }

    #[test]
    fn auto_range_keeps_signal_in_band() {
        for max_na in [5.0, 50.0, 500.0, 5000.0] {
            let expected = Amperes::from_nano_amps(max_na);
            let tia = TransimpedanceAmplifier::auto_range(expected, Volts::from_volts(3.3));
            assert!(!tia.saturates_at(expected), "{max_na} nA saturates");
            // Signal uses at least a few percent of the range.
            let frac = expected.as_amps() / tia.full_scale_current().as_amps();
            assert!(frac > 0.05, "{max_na} nA uses only {frac} of range");
        }
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn zero_gain_rejected() {
        let _ = TransimpedanceAmplifier::new(Ohms::from_ohms(0.0), Volts::from_volts(3.3));
    }
}

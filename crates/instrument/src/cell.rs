//! The electrochemical cell seen from the electronics.

use bios_units::{Amperes, Ohms, Volts};

/// Electrical model of a three-electrode cell: the potentiostat drives
/// the counter electrode so that (working − reference) tracks the
/// programmed potential, but the uncompensated solution resistance `R_u`
/// between reference and working still drops `i·R_u`.
///
/// # Examples
///
/// ```
/// use bios_instrument::ThreeElectrodeCell;
/// use bios_units::{Amperes, Ohms, Volts};
///
/// let cell = ThreeElectrodeCell::new(Ohms::from_ohms(150.0), Volts::from_milli_volts(5.0));
/// let eff = cell.effective_potential(
///     Volts::from_milli_volts(650.0),
///     Amperes::from_micro_amps(10.0),
/// );
/// // 10 µA × 150 Ω = 1.5 mV of iR error, plus the 5 mV reference offset.
/// assert!((eff.as_milli_volts() - (650.0 - 1.5 + 5.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeElectrodeCell {
    uncompensated: Ohms,
    reference_offset: Volts,
}

impl ThreeElectrodeCell {
    /// Creates a cell model.
    ///
    /// # Panics
    ///
    /// Panics if the uncompensated resistance is negative.
    #[must_use]
    pub fn new(uncompensated: Ohms, reference_offset: Volts) -> ThreeElectrodeCell {
        assert!(
            uncompensated.as_ohms() >= 0.0,
            "uncompensated resistance cannot be negative"
        );
        ThreeElectrodeCell {
            uncompensated,
            reference_offset,
        }
    }

    /// An ideal cell: no iR drop, no reference drift.
    #[must_use]
    pub fn ideal() -> ThreeElectrodeCell {
        ThreeElectrodeCell::new(Ohms::from_ohms(0.0), Volts::ZERO)
    }

    /// Typical buffered-saline cell on a screen-printed electrode.
    #[must_use]
    pub fn typical_spe() -> ThreeElectrodeCell {
        ThreeElectrodeCell::new(Ohms::from_ohms(200.0), Volts::from_milli_volts(3.0))
    }

    /// Uncompensated solution resistance.
    #[must_use]
    pub fn uncompensated(&self) -> Ohms {
        self.uncompensated
    }

    /// Reference-electrode offset from its nominal potential.
    #[must_use]
    pub fn reference_offset(&self) -> Volts {
        self.reference_offset
    }

    /// The potential actually experienced by the working interface when
    /// the instrument programs `applied` and `current` flows.
    #[must_use]
    pub fn effective_potential(&self, applied: Volts, current: Amperes) -> Volts {
        let ir = self.uncompensated.as_ohms() * current.as_amps();
        Volts::from_volts(applied.as_volts() - ir + self.reference_offset.as_volts())
    }

    /// The iR error magnitude at a given current.
    #[must_use]
    pub fn ir_drop(&self, current: Amperes) -> Volts {
        Volts::from_volts(self.uncompensated.as_ohms() * current.as_amps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_cell_is_transparent() {
        let cell = ThreeElectrodeCell::ideal();
        let e = Volts::from_milli_volts(650.0);
        assert_eq!(
            cell.effective_potential(e, Amperes::from_micro_amps(100.0)),
            e
        );
    }

    #[test]
    fn ir_drop_scales_with_current() {
        let cell = ThreeElectrodeCell::typical_spe();
        let a = cell.ir_drop(Amperes::from_micro_amps(1.0));
        let b = cell.ir_drop(Amperes::from_micro_amps(5.0));
        assert!((b.as_volts() / a.as_volts() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn microelectrode_currents_make_negligible_ir() {
        // The integration argument: small electrodes → small currents →
        // tiny iR error even in resistive media.
        let cell = ThreeElectrodeCell::new(Ohms::from_kilo_ohms(1.0), Volts::ZERO);
        let drop = cell.ir_drop(Amperes::from_nano_amps(50.0));
        assert!(drop.as_milli_volts() < 0.1);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_resistance_rejected() {
        let _ = ThreeElectrodeCell::new(Ohms::from_ohms(-1.0), Volts::ZERO);
    }
}

//! The assembled readout chain: noise → amplifier → ADC → filter.

use bios_units::{Amperes, Ohms, Volts};

use crate::adc::Adc;
use crate::amplifier::TransimpedanceAmplifier;
use crate::filter::FilterSpec;
use crate::noise::NoiseGenerator;

/// A complete current-measurement chain with realistic imperfections.
///
/// Three presets reflect the §2.5 narrative:
///
/// * [`ReadoutChain::benchtop`] — a lab potentiostat (reference quality);
/// * [`ReadoutChain::integrated_cmos`] — the paper's integrated front end,
///   with the SNR benefit of placing the electronics next to the sensor;
/// * [`ReadoutChain::low_cost`] — a noisy disposable-reader baseline.
///
/// # Examples
///
/// ```
/// use bios_instrument::ReadoutChain;
/// use bios_units::Amperes;
///
/// let mut cmos = ReadoutChain::integrated_cmos(1);
/// let mut cheap = ReadoutChain::low_cost(1);
/// assert!(cmos.noise_rms().as_amps() < cheap.noise_rms().as_amps());
/// ```
#[derive(Debug, Clone)]
pub struct ReadoutChain {
    tia: TransimpedanceAmplifier,
    adc: Adc,
    noise: NoiseGenerator,
    filter: FilterSpec,
}

impl ReadoutChain {
    /// Builds a chain from explicit stages.
    #[must_use]
    pub fn new(
        tia: TransimpedanceAmplifier,
        adc: Adc,
        noise: NoiseGenerator,
        filter: FilterSpec,
    ) -> ReadoutChain {
        ReadoutChain {
            tia,
            adc,
            noise,
            filter,
        }
    }

    /// Laboratory benchtop potentiostat: 1 MΩ gain, 16-bit converter,
    /// ~60 pA input noise.
    #[must_use]
    pub fn benchtop(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3)),
            adc: Adc::new(16, Volts::from_volts(3.3)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(50.0))
                .with_flicker(Amperes::from_pico_amps(30.0)),
            filter: FilterSpec::MovingAverage(5),
        }
    }

    /// Integrated CMOS front end co-located with the sensor: shorter
    /// leads and on-chip conversion cut pickup and flicker.
    #[must_use]
    pub fn integrated_cmos(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(10.0), Volts::from_volts(1.8)),
            adc: Adc::new(14, Volts::from_volts(1.8)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(20.0))
                .with_flicker(Amperes::from_pico_amps(10.0)),
            filter: FilterSpec::MovingAverage(5),
        }
    }

    /// Cheap handheld reader: coarse converter, long leads, mains pickup.
    #[must_use]
    pub fn low_cost(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3)),
            adc: Adc::new(12, Volts::from_volts(3.3)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(2000.0))
                .with_flicker(Amperes::from_pico_amps(1500.0)),
            filter: FilterSpec::MovingAverage(3),
        }
    }

    /// Auto-ranges the amplifier of an existing chain so `expected_max`
    /// sits inside 80 % of full scale.
    #[must_use]
    pub fn auto_ranged_for(mut self, expected_max: Amperes) -> ReadoutChain {
        self.tia = TransimpedanceAmplifier::auto_range(expected_max, self.tia.rail());
        self
    }

    /// Replaces the noise generator (keeps amplifier/ADC).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseGenerator) -> ReadoutChain {
        self.noise = noise;
        self
    }

    /// Replaces the post-filter.
    #[must_use]
    pub fn with_filter(mut self, filter: FilterSpec) -> ReadoutChain {
        self.filter = filter;
        self
    }

    /// The amplifier stage.
    #[must_use]
    pub fn amplifier(&self) -> &TransimpedanceAmplifier {
        &self.tia
    }

    /// The converter stage.
    #[must_use]
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Input-referred RMS noise of the front end (excluding
    /// quantization).
    #[must_use]
    pub fn noise_rms(&self) -> Amperes {
        self.noise.total_rms()
    }

    /// Measures one current sample through the full chain: adds input
    /// noise, amplifies (with clipping), quantizes, and refers the result
    /// back to a current.
    pub fn digitize(&mut self, true_current: Amperes) -> Amperes {
        let noisy = Amperes::from_amps(true_current.as_amps() + self.noise.sample().as_amps());
        let v = self.tia.convert(noisy);
        let vq = self.adc.digitize(v);
        self.tia.invert(vq)
    }

    /// Measures a whole trace and applies the configured post-filter.
    pub fn digitize_trace(&mut self, trace: &[Amperes]) -> Vec<Amperes> {
        let raw: Vec<f64> = trace.iter().map(|&i| self.digitize(i).as_amps()).collect();
        self.filter
            .apply(&raw)
            .into_iter()
            .map(Amperes::from_amps)
            .collect()
    }

    /// Estimates the blank noise floor: digitizes `n` zero-current
    /// samples and returns their standard deviation. This is the σ in
    /// the 3σ detection-limit computation.
    pub fn blank_sigma(&mut self, n: usize) -> Amperes {
        assert!(n >= 2, "need at least 2 blank samples");
        let xs: Vec<f64> = (0..n)
            .map(|_| self.digitize(Amperes::ZERO).as_amps())
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Amperes::from_amps(var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digitize_preserves_signal_scale() {
        let mut chain = ReadoutChain::benchtop(5);
        let i = Amperes::from_nano_amps(500.0);
        let mean: f64 = (0..200)
            .map(|_| chain.digitize(i).as_nano_amps())
            .sum::<f64>()
            / 200.0;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn cmos_quieter_than_low_cost() {
        let mut cmos = ReadoutChain::integrated_cmos(9);
        let mut cheap = ReadoutChain::low_cost(9);
        let s1 = cmos.blank_sigma(2000);
        let s2 = cheap.blank_sigma(2000);
        assert!(s1.as_amps() * 3.0 < s2.as_amps(), "{s1} vs {s2}");
    }

    #[test]
    fn blank_sigma_close_to_generator_rms() {
        let mut chain = ReadoutChain::benchtop(13).with_filter(FilterSpec::None);
        let sigma = chain.blank_sigma(5000);
        let spec = chain.noise_rms();
        // Quantization adds a little; flicker correlations add scatter.
        assert!(sigma.as_amps() > 0.5 * spec.as_amps());
        assert!(sigma.as_amps() < 2.0 * spec.as_amps());
    }

    #[test]
    fn clipping_limits_large_signals() {
        let mut chain = ReadoutChain::benchtop(1);
        let reading = chain.digitize(Amperes::from_micro_amps(100.0));
        let fs = chain.amplifier().full_scale_current();
        assert!(reading.as_amps() <= fs.as_amps() * 1.001);
    }

    #[test]
    fn auto_range_prevents_clipping() {
        let expected = Amperes::from_micro_amps(50.0);
        let mut chain = ReadoutChain::benchtop(1).auto_ranged_for(expected);
        let reading = chain.digitize(expected);
        assert!((reading.as_micro_amps() - 50.0).abs() < 1.0);
    }

    #[test]
    fn trace_filtering_reduces_scatter() {
        let trace = vec![Amperes::from_nano_amps(100.0); 200];
        let mut raw_chain = ReadoutChain::benchtop(21).with_filter(FilterSpec::None);
        let mut filt_chain = ReadoutChain::benchtop(21).with_filter(FilterSpec::MovingAverage(9));
        let spread = |xs: &[Amperes]| {
            let m = xs.iter().map(|x| x.as_amps()).sum::<f64>() / xs.len() as f64;
            xs.iter()
                .map(|x| (x.as_amps() - m).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let raw = raw_chain.digitize_trace(&trace);
        let filt = filt_chain.digitize_trace(&trace);
        assert!(spread(&filt) < spread(&raw));
    }
}

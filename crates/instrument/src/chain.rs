//! The assembled readout chain: noise → amplifier → ADC → filter.

use bios_faults::{Faultable, RealizedFaults};
use bios_units::{Amperes, Ohms, Volts};

use crate::adc::Adc;
use crate::amplifier::TransimpedanceAmplifier;
use crate::fault::{FaultState, ReadoutFaults, SampleFate};
use crate::filter::FilterSpec;
use crate::noise::NoiseGenerator;

/// A complete current-measurement chain with realistic imperfections.
///
/// Three presets reflect the §2.5 narrative:
///
/// * [`ReadoutChain::benchtop`] — a lab potentiostat (reference quality);
/// * [`ReadoutChain::integrated_cmos`] — the paper's integrated front end,
///   with the SNR benefit of placing the electronics next to the sensor;
/// * [`ReadoutChain::low_cost`] — a noisy disposable-reader baseline.
///
/// # Examples
///
/// ```
/// use bios_instrument::ReadoutChain;
/// use bios_units::Amperes;
///
/// let mut cmos = ReadoutChain::integrated_cmos(1);
/// let mut cheap = ReadoutChain::low_cost(1);
/// assert!(cmos.noise_rms().as_amps() < cheap.noise_rms().as_amps());
/// ```
#[derive(Debug, Clone)]
pub struct ReadoutChain {
    tia: TransimpedanceAmplifier,
    adc: Adc,
    noise: NoiseGenerator,
    filter: FilterSpec,
    /// Injected-fault stage; `None` keeps the healthy path untouched.
    faults: Option<FaultState>,
}

impl ReadoutChain {
    /// Builds a chain from explicit stages.
    #[must_use]
    pub fn new(
        tia: TransimpedanceAmplifier,
        adc: Adc,
        noise: NoiseGenerator,
        filter: FilterSpec,
    ) -> ReadoutChain {
        ReadoutChain {
            tia,
            adc,
            noise,
            filter,
            faults: None,
        }
    }

    /// Laboratory benchtop potentiostat: 1 MΩ gain, 16-bit converter,
    /// ~60 pA input noise.
    #[must_use]
    pub fn benchtop(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3)),
            adc: Adc::new(16, Volts::from_volts(3.3)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(50.0))
                .with_flicker(Amperes::from_pico_amps(30.0)),
            filter: FilterSpec::MovingAverage(5),
            faults: None,
        }
    }

    /// Integrated CMOS front end co-located with the sensor: shorter
    /// leads and on-chip conversion cut pickup and flicker.
    #[must_use]
    pub fn integrated_cmos(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(10.0), Volts::from_volts(1.8)),
            adc: Adc::new(14, Volts::from_volts(1.8)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(20.0))
                .with_flicker(Amperes::from_pico_amps(10.0)),
            filter: FilterSpec::MovingAverage(5),
            faults: None,
        }
    }

    /// Cheap handheld reader: coarse converter, long leads, mains pickup.
    #[must_use]
    pub fn low_cost(seed: u64) -> ReadoutChain {
        ReadoutChain {
            tia: TransimpedanceAmplifier::new(Ohms::from_mega_ohms(1.0), Volts::from_volts(3.3)),
            adc: Adc::new(12, Volts::from_volts(3.3)),
            noise: NoiseGenerator::new(seed, Amperes::from_pico_amps(2000.0))
                .with_flicker(Amperes::from_pico_amps(1500.0)),
            filter: FilterSpec::MovingAverage(3),
            faults: None,
        }
    }

    /// Auto-ranges the amplifier of an existing chain so `expected_max`
    /// sits inside 80 % of full scale.
    #[must_use]
    pub fn auto_ranged_for(mut self, expected_max: Amperes) -> ReadoutChain {
        self.tia = TransimpedanceAmplifier::auto_range(expected_max, self.tia.rail());
        self
    }

    /// Replaces the noise generator (keeps amplifier/ADC).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseGenerator) -> ReadoutChain {
        self.noise = noise;
        self
    }

    /// Replaces the post-filter.
    #[must_use]
    pub fn with_filter(mut self, filter: FilterSpec) -> ReadoutChain {
        self.filter = filter;
        self
    }

    /// Installs an injected-fault stage. A passive configuration is
    /// ignored so the healthy sampling path stays bit-identical.
    #[must_use]
    pub fn with_readout_faults(mut self, config: ReadoutFaults) -> ReadoutChain {
        self.faults = if config.is_passive() {
            None
        } else {
            Some(FaultState::new(config))
        };
        self
    }

    /// The installed fault configuration, if any.
    #[must_use]
    pub fn fault_config(&self) -> Option<ReadoutFaults> {
        self.faults.as_ref().map(|state| *state.config())
    }

    /// The amplifier stage.
    #[must_use]
    pub fn amplifier(&self) -> &TransimpedanceAmplifier {
        &self.tia
    }

    /// The converter stage.
    #[must_use]
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Input-referred RMS noise of the front end (excluding
    /// quantization).
    #[must_use]
    pub fn noise_rms(&self) -> Amperes {
        self.noise.total_rms()
    }

    /// Measures one current sample through the full chain: adds input
    /// noise, amplifies (with clipping), quantizes, and refers the result
    /// back to a current. With a fault stage installed the sample may
    /// additionally be spiked, dropped, saturated early, or lose stuck
    /// ADC code bits.
    pub fn digitize(&mut self, true_current: Amperes) -> Amperes {
        let noisy = Amperes::from_amps(true_current.as_amps() + self.noise.sample().as_amps());
        let Some(state) = &mut self.faults else {
            let v = self.tia.convert(noisy);
            let vq = self.adc.digitize(v);
            return self.tia.invert(vq);
        };
        let full_scale = self.tia.full_scale_current().as_amps();
        match state.next_sample(full_scale) {
            SampleFate::Dropped { held_amps } => Amperes::from_amps(held_amps),
            SampleFate::Convert { spike_amps } => {
                let disturbed = Amperes::from_amps(noisy.as_amps() + spike_amps);
                let mut v = self.tia.convert(disturbed);
                let saturation = state.config().saturation;
                if saturation > 0.0 {
                    let limit = self.tia.rail().as_volts() * (1.0 - saturation);
                    v = Volts::from_volts(v.as_volts().clamp(-limit, limit));
                }
                let mut code = self.adc.quantize(v);
                let mask = i64::from(state.config().stuck_mask);
                if mask != 0 {
                    code &= !mask;
                }
                let reading = self.tia.invert(self.adc.reconstruct(code));
                state.record(reading.as_amps());
                reading
            }
        }
    }

    /// Measures a whole trace and applies the configured post-filter.
    pub fn digitize_trace(&mut self, trace: &[Amperes]) -> Vec<Amperes> {
        let raw: Vec<f64> = trace.iter().map(|&i| self.digitize(i).as_amps()).collect();
        self.filter
            .apply(&raw)
            .into_iter()
            .map(Amperes::from_amps)
            .collect()
    }

    /// Estimates the blank noise floor: digitizes `n` zero-current
    /// samples and returns their standard deviation. This is the σ in
    /// the 3σ detection-limit computation.
    pub fn blank_sigma(&mut self, n: usize) -> Amperes {
        assert!(n >= 2, "need at least 2 blank samples");
        let xs: Vec<f64> = (0..n)
            .map(|_| self.digitize(Amperes::ZERO).as_amps())
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Amperes::from_amps(var.sqrt())
    }
}

impl Faultable for ReadoutChain {
    /// Maps the instrument-layer fields of a realized fault set onto a
    /// fault stage. A realization with no instrument faults returns the
    /// chain unchanged (no stage installed).
    fn with_faults(self, faults: &RealizedFaults) -> Self {
        let config = ReadoutFaults {
            saturation: faults.adc_saturation,
            stuck_mask: faults.adc_stuck_mask,
            spike_probability: faults.spike_probability,
            spike_magnitude: faults.spike_magnitude,
            dropout_probability: faults.dropout_probability,
            seed: faults.noise_seed,
        };
        self.with_readout_faults(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digitize_preserves_signal_scale() {
        let mut chain = ReadoutChain::benchtop(5);
        let i = Amperes::from_nano_amps(500.0);
        let mean: f64 = (0..200)
            .map(|_| chain.digitize(i).as_nano_amps())
            .sum::<f64>()
            / 200.0;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn cmos_quieter_than_low_cost() {
        let mut cmos = ReadoutChain::integrated_cmos(9);
        let mut cheap = ReadoutChain::low_cost(9);
        let s1 = cmos.blank_sigma(2000);
        let s2 = cheap.blank_sigma(2000);
        assert!(s1.as_amps() * 3.0 < s2.as_amps(), "{s1} vs {s2}");
    }

    #[test]
    fn blank_sigma_close_to_generator_rms() {
        let mut chain = ReadoutChain::benchtop(13).with_filter(FilterSpec::None);
        let sigma = chain.blank_sigma(5000);
        let spec = chain.noise_rms();
        // Quantization adds a little; flicker correlations add scatter.
        assert!(sigma.as_amps() > 0.5 * spec.as_amps());
        assert!(sigma.as_amps() < 2.0 * spec.as_amps());
    }

    #[test]
    fn clipping_limits_large_signals() {
        let mut chain = ReadoutChain::benchtop(1);
        let reading = chain.digitize(Amperes::from_micro_amps(100.0));
        let fs = chain.amplifier().full_scale_current();
        assert!(reading.as_amps() <= fs.as_amps() * 1.001);
    }

    #[test]
    fn auto_range_prevents_clipping() {
        let expected = Amperes::from_micro_amps(50.0);
        let mut chain = ReadoutChain::benchtop(1).auto_ranged_for(expected);
        let reading = chain.digitize(expected);
        assert!((reading.as_micro_amps() - 50.0).abs() < 1.0);
    }

    #[test]
    fn healthy_realization_installs_no_stage() {
        let chain = ReadoutChain::benchtop(3).with_faults(&RealizedFaults::healthy());
        assert!(chain.fault_config().is_none());
    }

    #[test]
    fn stuck_code_biases_readings_toward_zero_codes() {
        let i = Amperes::from_nano_amps(400.0);
        let mut healthy = ReadoutChain::benchtop(11).with_filter(FilterSpec::None);
        let mut faults = RealizedFaults::healthy();
        faults.adc_stuck_mask = 0b1_1111;
        let mut stuck = ReadoutChain::benchtop(11)
            .with_filter(FilterSpec::None)
            .with_faults(&faults);
        let mean = |chain: &mut ReadoutChain| {
            (0..500).map(|_| chain.digitize(i).as_amps()).sum::<f64>() / 500.0
        };
        // Forcing low bits to zero truncates codes toward zero: the
        // faulted mean must sit below the healthy mean.
        assert!(mean(&mut stuck) < mean(&mut healthy));
    }

    #[test]
    fn saturation_caps_readings_below_full_scale() {
        let mut faults = RealizedFaults::healthy();
        faults.adc_saturation = 0.5;
        let mut chain = ReadoutChain::benchtop(1).with_faults(&faults);
        let reading = chain.digitize(Amperes::from_micro_amps(100.0));
        let fs = chain.amplifier().full_scale_current();
        assert!(reading.as_amps() <= fs.as_amps() * 0.5 * 1.001);
    }

    #[test]
    fn spikes_inflate_blank_sigma() {
        let mut faults = RealizedFaults::healthy();
        faults.spike_probability = 0.2;
        faults.spike_magnitude = 0.3;
        faults.noise_seed = 77;
        let sigma = |chain: &mut ReadoutChain| chain.blank_sigma(2000).as_amps();
        let mut healthy = ReadoutChain::benchtop(5).with_filter(FilterSpec::None);
        let mut spiky = ReadoutChain::benchtop(5)
            .with_filter(FilterSpec::None)
            .with_faults(&faults);
        assert!(sigma(&mut spiky) > 10.0 * sigma(&mut healthy));
    }

    #[test]
    fn dropout_repeats_held_readings() {
        let mut faults = RealizedFaults::healthy();
        faults.dropout_probability = 0.5;
        faults.noise_seed = 9;
        let mut chain = ReadoutChain::benchtop(5)
            .with_filter(FilterSpec::None)
            .with_faults(&faults);
        let readings: Vec<f64> = (0..200)
            .map(|_| chain.digitize(Amperes::from_nano_amps(300.0)).as_amps())
            .collect();
        let repeats = readings.windows(2).filter(|w| w[0] == w[1]).count();
        // Consecutive identical analog readings are (measure-)zero
        // probability without dropout holds.
        assert!(repeats > 20, "only {repeats} held samples");
    }

    #[test]
    fn faulted_chain_is_deterministic() {
        let mut faults = RealizedFaults::healthy();
        faults.spike_probability = 0.1;
        faults.spike_magnitude = 0.5;
        faults.dropout_probability = 0.1;
        faults.noise_seed = 1234;
        let run = || {
            let mut chain = ReadoutChain::benchtop(8).with_faults(&faults);
            (0..256)
                .map(|_| chain.digitize(Amperes::from_nano_amps(100.0)).as_amps())
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_filtering_reduces_scatter() {
        let trace = vec![Amperes::from_nano_amps(100.0); 200];
        let mut raw_chain = ReadoutChain::benchtop(21).with_filter(FilterSpec::None);
        let mut filt_chain = ReadoutChain::benchtop(21).with_filter(FilterSpec::MovingAverage(9));
        let spread = |xs: &[Amperes]| {
            let m = xs.iter().map(|x| x.as_amps()).sum::<f64>() / xs.len() as f64;
            xs.iter()
                .map(|x| (x.as_amps() - m).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let raw = raw_chain.digitize_trace(&trace);
        let filt = filt_chain.digitize_trace(&trace);
        assert!(spread(&filt) < spread(&raw));
    }
}

//! Injected readout faults: spikes, dropouts, saturation, stuck codes.
//!
//! Real front ends glitch — ESD spikes couple into the input, samples
//! get dropped on a contended bus, an over-stressed input stage
//! saturates early, and ADC bits stick. [`ReadoutFaults`] describes the
//! fault mix for one chain; the chain owns a private fault state that
//! applies it per sample from its own seeded stream, independent of the
//! measurement-noise stream, so fault timing is reproducible without
//! perturbing the healthy noise sequence.

use bios_prng::Rng;

/// Configured fault mix for a readout chain.
///
/// All-zero fields are a passive (healthy) configuration; the chain
/// skips the fault stage entirely when no configuration is installed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutFaults {
    /// Fraction of amplifier full scale lost to early saturation, `[0, 1)`.
    pub saturation: f64,
    /// ADC code bits forced to zero (low-order mask).
    pub stuck_mask: u16,
    /// Per-sample probability of an additive spike.
    pub spike_probability: f64,
    /// Spike amplitude as a fraction of amplifier full-scale current.
    pub spike_magnitude: f64,
    /// Per-sample probability the sample is dropped (hold last value).
    pub dropout_probability: f64,
    /// Seed for the fault-timing stream.
    pub seed: u64,
}

impl ReadoutFaults {
    /// A configuration that injects nothing.
    #[must_use]
    pub fn passive() -> ReadoutFaults {
        ReadoutFaults {
            saturation: 0.0,
            stuck_mask: 0,
            spike_probability: 0.0,
            spike_magnitude: 0.0,
            dropout_probability: 0.0,
            seed: 0,
        }
    }

    /// True when this configuration cannot change any sample.
    #[must_use]
    pub fn is_passive(&self) -> bool {
        self.saturation <= 0.0
            && self.stuck_mask == 0
            && self.spike_probability <= 0.0
            && self.dropout_probability <= 0.0
    }
}

impl Default for ReadoutFaults {
    fn default() -> Self {
        Self::passive()
    }
}

/// Per-chain fault state: the configuration plus the seeded timing
/// stream and the held value used by dropout.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    config: ReadoutFaults,
    rng: Rng,
    /// Last successfully converted reading, in amps (dropout hold).
    held_amps: Option<f64>,
}

/// What the fault stage decided for one sample.
pub(crate) enum SampleFate {
    /// Sample proceeds through the chain, with this additive current
    /// disturbance (amps; zero when no spike fired).
    Convert { spike_amps: f64 },
    /// Sample was dropped: report this held current instead.
    Dropped { held_amps: f64 },
}

impl FaultState {
    pub(crate) fn new(config: ReadoutFaults) -> FaultState {
        FaultState {
            config,
            rng: Rng::seed_from_u64(config.seed),
            held_amps: None,
        }
    }

    pub(crate) fn config(&self) -> &ReadoutFaults {
        &self.config
    }

    /// Decide this sample's fate. Draws exactly two uniforms per call so
    /// the timing stream stays aligned regardless of which faults fire.
    pub(crate) fn next_sample(&mut self, full_scale_amps: f64) -> SampleFate {
        let drop_draw = self.rng.uniform();
        let spike_draw = self.rng.uniform();
        if drop_draw < self.config.dropout_probability {
            return SampleFate::Dropped {
                held_amps: self.held_amps.unwrap_or(0.0),
            };
        }
        let spike_amps = if spike_draw < self.config.spike_probability {
            let sign = if self.rng.uniform() < 0.5 { -1.0 } else { 1.0 };
            sign * self.config.spike_magnitude * full_scale_amps
        } else {
            0.0
        };
        SampleFate::Convert { spike_amps }
    }

    /// Record the reading that made it through the chain (the value a
    /// later dropout will hold).
    pub(crate) fn record(&mut self, reading_amps: f64) {
        self.held_amps = Some(reading_amps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_config_is_passive() {
        assert!(ReadoutFaults::passive().is_passive());
        assert!(ReadoutFaults::default().is_passive());
        let mut active = ReadoutFaults::passive();
        active.stuck_mask = 0b11;
        assert!(!active.is_passive());
    }

    #[test]
    fn fault_timing_is_seed_deterministic() {
        let config = ReadoutFaults {
            spike_probability: 0.5,
            spike_magnitude: 0.3,
            dropout_probability: 0.2,
            seed: 99,
            ..ReadoutFaults::passive()
        };
        let fates = |mut state: FaultState| -> Vec<f64> {
            (0..64)
                .map(|_| match state.next_sample(1.0) {
                    SampleFate::Convert { spike_amps } => spike_amps,
                    SampleFate::Dropped { .. } => f64::NAN,
                })
                .collect()
        };
        let a = fates(FaultState::new(config));
        let b = fates(FaultState::new(config));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn dropout_holds_last_recorded_value() {
        let config = ReadoutFaults {
            dropout_probability: 1.0,
            seed: 7,
            ..ReadoutFaults::passive()
        };
        let mut state = FaultState::new(config);
        // No sample recorded yet: holds zero.
        match state.next_sample(1.0) {
            SampleFate::Dropped { held_amps } => assert_eq!(held_amps, 0.0),
            SampleFate::Convert { .. } => panic!("p=1 dropout must drop"),
        }
        state.record(4.2e-6);
        match state.next_sample(1.0) {
            SampleFate::Dropped { held_amps } => assert_eq!(held_amps, 4.2e-6),
            SampleFate::Convert { .. } => panic!("p=1 dropout must drop"),
        }
    }
}

//! Digital post-filters for sampled current traces.

/// Centered moving-average smoother.
///
/// # Examples
///
/// ```
/// use bios_instrument::filter::moving_average;
///
/// let noisy = vec![1.0, 3.0, 1.0, 3.0, 1.0];
/// let smooth = moving_average(&noisy, 3);
/// assert!((smooth[2] - 7.0 / 3.0).abs() < 1e-12);
/// assert_eq!(smooth.len(), noisy.len());
/// ```
///
/// # Panics
///
/// Panics if `window` is even or zero.
#[must_use]
pub fn moving_average(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1, "window must be odd");
    let half = window / 2;
    let n = samples.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            samples[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Single-pole exponential (IIR) smoother with coefficient `alpha` ∈ (0, 1]:
/// `y[k] = α·x[k] + (1−α)·y[k−1]`.
///
/// # Panics
///
/// Panics unless `0 < alpha ≤ 1`.
#[must_use]
pub fn exponential(samples: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
    let mut out = Vec::with_capacity(samples.len());
    let mut y = match samples.first() {
        Some(&x) => x,
        None => return out,
    };
    for &x in samples {
        y = alpha * x + (1.0 - alpha) * y;
        out.push(y);
    }
    out
}

/// Savitzky–Golay quadratic smoothing, window of 5, 7, or 9 points.
///
/// Preserves peak heights far better than a plain moving average — the
/// property that matters when the voltammetric peak *is* the measurement.
///
/// # Panics
///
/// Panics unless `window ∈ {5, 7, 9}`.
#[must_use]
pub fn savitzky_golay(samples: &[f64], window: usize) -> Vec<f64> {
    // Classic quadratic/cubic SG convolution coefficients.
    let (coeffs, norm): (&[f64], f64) = match window {
        5 => (&[-3.0, 12.0, 17.0, 12.0, -3.0], 35.0),
        7 => (&[-2.0, 3.0, 6.0, 7.0, 6.0, 3.0, -2.0], 21.0),
        9 => (
            &[-21.0, 14.0, 39.0, 54.0, 59.0, 54.0, 39.0, 14.0, -21.0],
            231.0,
        ),
        // bios-audit: allow(P-panic) — documented contract: window ∈ {5, 7, 9}
        _ => panic!("window must be 5, 7, or 9"),
    };
    let half = window / 2;
    let n = samples.len();
    (0..n)
        .map(|i| {
            if i < half || i + half >= n {
                samples[i] // passthrough at the edges
            } else {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c * samples[i + j - half])
                    .sum::<f64>()
                    / norm
            }
        })
        .collect()
}

/// Estimates and subtracts a linear baseline through the first and last
/// `margin` points — the standard pre-processing before peak readout on a
/// voltammogram.
///
/// Returns `(corrected, baseline)`.
///
/// # Panics
///
/// Panics if `margin` is zero or `2·margin > samples.len()`.
#[must_use]
pub fn subtract_linear_baseline(samples: &[f64], margin: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(margin > 0, "margin must be positive");
    assert!(
        2 * margin <= samples.len(),
        "margins overlap: need at least 2*margin samples"
    );
    let n = samples.len();
    let head: f64 = samples[..margin].iter().sum::<f64>() / margin as f64;
    let tail: f64 = samples[n - margin..].iter().sum::<f64>() / margin as f64;
    let x0 = (margin as f64 - 1.0) / 2.0;
    let x1 = n as f64 - 1.0 - x0;
    let slope = (tail - head) / (x1 - x0);
    let baseline: Vec<f64> = (0..n).map(|i| head + slope * (i as f64 - x0)).collect();
    let corrected = samples.iter().zip(&baseline).map(|(s, b)| s - b).collect();
    (corrected, baseline)
}

/// Configuration of the post-filter applied by a readout chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterSpec {
    /// No filtering.
    None,
    /// Centered moving average of the given odd window.
    MovingAverage(usize),
    /// Savitzky–Golay quadratic of window 5, 7, or 9.
    SavitzkyGolay(usize),
    /// Exponential smoothing with coefficient α.
    Exponential(f64),
}

impl FilterSpec {
    /// Applies the filter to a sample slice.
    #[must_use]
    pub fn apply(&self, samples: &[f64]) -> Vec<f64> {
        match *self {
            FilterSpec::None => samples.to_vec(),
            FilterSpec::MovingAverage(w) => moving_average(samples, w),
            FilterSpec::SavitzkyGolay(w) => savitzky_golay(samples, w),
            FilterSpec::Exponential(a) => exponential(samples, a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flattens_alternation() {
        let x = vec![0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0];
        let y = moving_average(&x, 3);
        for v in &y[1..6] {
            assert!((v - y[2]).abs() < 0.7);
        }
    }

    #[test]
    fn moving_average_preserves_constant() {
        let x = vec![5.0; 20];
        for v in moving_average(&x, 5) {
            assert!((v - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_converges_to_step() {
        let mut x = vec![0.0; 5];
        x.extend(vec![1.0; 100]);
        let y = exponential(&x, 0.2);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn savitzky_golay_preserves_quadratic_exactly() {
        // SG of quadratic order reproduces quadratics exactly away from
        // the edges.
        let x: Vec<f64> = (0..30).map(|i| (i as f64 - 15.0).powi(2)).collect();
        for w in [5, 7, 9] {
            let y = savitzky_golay(&x, w);
            for i in w / 2..30 - w / 2 {
                assert!((y[i] - x[i]).abs() < 1e-9, "window {w}, index {i}");
            }
        }
    }

    #[test]
    fn savitzky_golay_beats_moving_average_on_peaks() {
        // A Gaussian peak: SG should preserve the apex better.
        let x: Vec<f64> = (0..61)
            .map(|i| (-((i as f64 - 30.0) / 4.0).powi(2)).exp())
            .collect();
        let sg = savitzky_golay(&x, 7);
        let ma = moving_average(&x, 7);
        let apex = 30;
        assert!((sg[apex] - 1.0).abs() < (ma[apex] - 1.0).abs());
    }

    #[test]
    fn baseline_subtraction_levels_a_ramp() {
        let x: Vec<f64> = (0..50).map(|i| 2.0 + 0.1 * i as f64).collect();
        let (corrected, baseline) = subtract_linear_baseline(&x, 5);
        for v in corrected {
            assert!(v.abs() < 1e-9);
        }
        assert!((baseline[0] - 2.0).abs() < 0.3);
    }

    #[test]
    fn baseline_preserves_peak_height_on_slope() {
        let n = 101;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let ramp = 0.05 * i as f64;
                let peak = 3.0 * (-((i as f64 - 50.0) / 5.0).powi(2)).exp();
                ramp + peak
            })
            .collect();
        let (corrected, _) = subtract_linear_baseline(&x, 10);
        let apex = corrected.iter().cloned().fold(f64::MIN, f64::max);
        assert!((apex - 3.0).abs() < 0.1);
    }

    #[test]
    fn filter_spec_dispatch() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(FilterSpec::None.apply(&x), x);
        assert_eq!(FilterSpec::MovingAverage(3).apply(&x).len(), x.len());
        assert_eq!(FilterSpec::SavitzkyGolay(5).apply(&x).len(), x.len());
        assert_eq!(FilterSpec::Exponential(0.5).apply(&x).len(), x.len());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        let _ = moving_average(&[1.0, 2.0], 2);
    }
}

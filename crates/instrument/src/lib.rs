//! # bios-instrument
//!
//! The electrical half of the paper's platform: a virtual potentiostat
//! readout chain. §2.5 of the paper argues that integrating CMOS readout
//! next to the transducer improves SNR for the weak, noisy biological
//! signals; this crate supplies the noise floor and signal chain that
//! make detection limits *emerge* in simulation rather than being quoted.
//!
//! Signal path: true faradaic current → [`noise::NoiseGenerator`] →
//! [`amplifier::TransimpedanceAmplifier`] → [`adc::Adc`] →
//! [`filter`] smoothing → [`peak`] feature extraction. The whole chain is
//! bundled in [`chain::ReadoutChain`].
//!
//! # Examples
//!
//! ```
//! use bios_instrument::chain::ReadoutChain;
//! use bios_units::Amperes;
//!
//! let mut chain = ReadoutChain::benchtop(42);
//! let reading = chain.digitize(Amperes::from_nano_amps(250.0));
//! // The chain adds noise and quantization but preserves the signal scale.
//! assert!((reading.as_nano_amps() - 250.0).abs() < 25.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod amplifier;
pub mod cell;
pub mod chain;
pub mod fault;
pub mod filter;
pub mod noise;
pub mod peak;
pub mod potentiostat;
pub mod sequencer;

pub use adc::Adc;
pub use amplifier::TransimpedanceAmplifier;
pub use cell::ThreeElectrodeCell;
pub use chain::ReadoutChain;
pub use fault::ReadoutFaults;
pub use noise::NoiseGenerator;
pub use potentiostat::Potentiostat;

//! Current-noise models for the readout front end.
//!
//! Electrochemical measurements at sub-µA levels fight three noise
//! sources: white noise (thermal/shot, flat spectrum), flicker noise
//! (1/f, dominating at the slow sampling rates of amperometric sensing),
//! and quantization (handled by [`crate::adc`]). The generator here is
//! deterministic under a seed so every simulated table is reproducible.

use bios_prng::Rng;
use bios_units::Amperes;

/// Deterministic current-noise source: white Gaussian noise plus a
/// leaky-random-walk low-frequency ("flicker-like") component.
///
/// # Examples
///
/// ```
/// use bios_instrument::NoiseGenerator;
///
/// let mut gen = NoiseGenerator::new(7, bios_units::Amperes::from_pico_amps(100.0));
/// let a = gen.sample();
/// let mut gen2 = NoiseGenerator::new(7, bios_units::Amperes::from_pico_amps(100.0));
/// let b = gen2.sample();
/// // Same seed, same sequence.
/// assert_eq!(a.as_amps(), b.as_amps());
/// ```
#[derive(Debug, Clone)]
pub struct NoiseGenerator {
    rng: Rng,
    white_rms: f64,
    flicker_rms: f64,
    /// Leak factor for the low-frequency walk, in (0, 1).
    leak: f64,
    walk: f64,
}

impl NoiseGenerator {
    /// Creates a white-only generator with the given RMS amplitude.
    #[must_use]
    pub fn new(seed: u64, white_rms: Amperes) -> NoiseGenerator {
        NoiseGenerator {
            rng: Rng::seed_from_u64(seed),
            white_rms: white_rms.as_amps().abs(),
            flicker_rms: 0.0,
            leak: 0.98,
            walk: 0.0,
        }
    }

    /// Adds a flicker (low-frequency drift) component of the given RMS.
    #[must_use]
    pub fn with_flicker(mut self, flicker_rms: Amperes) -> NoiseGenerator {
        self.flicker_rms = flicker_rms.as_amps().abs();
        self
    }

    /// White-noise RMS.
    #[must_use]
    pub fn white_rms(&self) -> Amperes {
        Amperes::from_amps(self.white_rms)
    }

    /// Flicker RMS.
    #[must_use]
    pub fn flicker_rms(&self) -> Amperes {
        Amperes::from_amps(self.flicker_rms)
    }

    /// Total RMS assuming independent components.
    #[must_use]
    pub fn total_rms(&self) -> Amperes {
        Amperes::from_amps((self.white_rms.powi(2) + self.flicker_rms.powi(2)).sqrt())
    }

    /// Draws the next noise sample.
    pub fn sample(&mut self) -> Amperes {
        let white = self.white_rms * self.gaussian();
        // Leaky random walk whose stationary RMS equals flicker_rms:
        // innovation σ_w = σ_f·√(1−λ²).
        let flicker = if self.flicker_rms > 0.0 {
            let sigma_w = self.flicker_rms * (1.0 - self.leak * self.leak).sqrt();
            self.walk = self.leak * self.walk + sigma_w * self.gaussian();
            self.walk
        } else {
            0.0
        };
        Amperes::from_amps(white + flicker)
    }

    /// Draws `n` consecutive samples.
    pub fn sample_n(&mut self, n: usize) -> Vec<Amperes> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Standard normal variate via Box–Muller.
    fn gaussian(&mut self) -> f64 {
        self.rng.gaussian()
    }
}

/// Johnson–Nyquist current noise RMS of a resistor `r_ohms` over
/// bandwidth `bandwidth_hz` at temperature `t_kelvin`:
/// `i_n = √(4·k_B·T·Δf/R)`.
///
/// # Examples
///
/// ```
/// use bios_instrument::noise::thermal_current_noise;
///
/// // 1 MΩ feedback resistor, 10 Hz bandwidth, room temperature:
/// let i = thermal_current_noise(1e6, 10.0, 298.15);
/// assert!(i.as_amps() < 1.0e-12); // deeply sub-pA — not the bottleneck
/// ```
#[must_use]
pub fn thermal_current_noise(r_ohms: f64, bandwidth_hz: f64, t_kelvin: f64) -> Amperes {
    const BOLTZMANN: f64 = 1.380_649e-23;
    Amperes::from_amps((4.0 * BOLTZMANN * t_kelvin * bandwidth_hz / r_ohms).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = NoiseGenerator::new(123, Amperes::from_nano_amps(1.0));
        let mut b = NoiseGenerator::new(123, Amperes::from_nano_amps(1.0));
        for _ in 0..100 {
            assert_eq!(a.sample().as_amps(), b.sample().as_amps());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseGenerator::new(1, Amperes::from_nano_amps(1.0));
        let mut b = NoiseGenerator::new(2, Amperes::from_nano_amps(1.0));
        let same = (0..50)
            .filter(|_| a.sample().as_amps() == b.sample().as_amps())
            .count();
        assert!(same < 5);
    }

    #[test]
    fn empirical_rms_matches_specification() {
        let rms = 0.5e-9;
        let mut g = NoiseGenerator::new(7, Amperes::from_amps(rms));
        let n = 20_000;
        let sum_sq: f64 = (0..n).map(|_| g.sample().as_amps().powi(2)).sum();
        let measured = (sum_sq / n as f64).sqrt();
        assert!((measured - rms).abs() / rms < 0.05, "measured {measured}");
    }

    #[test]
    fn empirical_mean_is_zero() {
        let mut g = NoiseGenerator::new(11, Amperes::from_nano_amps(1.0));
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.sample().as_amps()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05e-9);
    }

    #[test]
    fn flicker_adds_low_frequency_correlation() {
        let mut white = NoiseGenerator::new(3, Amperes::from_nano_amps(1.0));
        let mut pink = NoiseGenerator::new(3, Amperes::from_nano_amps(1.0))
            .with_flicker(Amperes::from_nano_amps(3.0));
        let lag_corr = |g: &mut NoiseGenerator| {
            let xs: Vec<f64> = (0..5000).map(|_| g.sample().as_amps()).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
            let cov: f64 = xs
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>();
            cov / var
        };
        assert!(lag_corr(&mut pink) > lag_corr(&mut white) + 0.2);
    }

    #[test]
    fn total_rms_combines_quadratically() {
        let g = NoiseGenerator::new(0, Amperes::from_nano_amps(3.0))
            .with_flicker(Amperes::from_nano_amps(4.0));
        assert!((g.total_rms().as_nano_amps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_noise_scales_inverse_sqrt_r() {
        let a = thermal_current_noise(1e6, 10.0, 298.15);
        let b = thermal_current_noise(4e6, 10.0, 298.15);
        assert!((a.as_amps() / b.as_amps() - 2.0).abs() < 1e-9);
    }
}

//! Peak detection on sampled traces.
//!
//! The CYP450 sensors are quantified by voltammetric peak height
//! ("the peak height is proportional to drug concentration", §3.1);
//! this module extracts peaks robustly from noisy, baseline-tilted
//! traces.

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the apex.
    pub index: usize,
    /// Apex value (after any baseline correction performed by the caller).
    pub height: f64,
    /// Prominence: apex minus the higher of the two flanking minima.
    pub prominence: f64,
}

/// Finds local maxima with at least `min_prominence`, ordered by
/// descending prominence.
///
/// # Examples
///
/// ```
/// use bios_instrument::peak::find_peaks;
///
/// let trace = vec![0.0, 1.0, 0.2, 5.0, 0.1, 2.0, 0.0];
/// let peaks = find_peaks(&trace, 0.5);
/// assert_eq!(peaks[0].index, 3);
/// assert_eq!(peaks.len(), 3);
/// ```
#[must_use]
pub fn find_peaks(samples: &[f64], min_prominence: f64) -> Vec<Peak> {
    let n = samples.len();
    if n < 3 {
        return Vec::new();
    }
    let mut peaks = Vec::new();
    for i in 1..n - 1 {
        if samples[i] > samples[i - 1] && samples[i] >= samples[i + 1] {
            // Walk left and right to the bracketing minima.
            let mut left_min = samples[i];
            for j in (0..i).rev() {
                if samples[j] > samples[i] {
                    break;
                }
                left_min = left_min.min(samples[j]);
            }
            let mut right_min = samples[i];
            for &s in &samples[i + 1..] {
                if s > samples[i] {
                    break;
                }
                right_min = right_min.min(s);
            }
            let prominence = samples[i] - left_min.max(right_min);
            if prominence >= min_prominence {
                peaks.push(Peak {
                    index: i,
                    height: samples[i],
                    prominence,
                });
            }
        }
    }
    peaks.sort_by(|a, b| b.prominence.total_cmp(&a.prominence));
    peaks
}

/// The single most prominent peak, if any clears `min_prominence`.
#[must_use]
pub fn dominant_peak(samples: &[f64], min_prominence: f64) -> Option<Peak> {
    find_peaks(samples, min_prominence).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_gaussian_apex() {
        let x: Vec<f64> = (0..101)
            .map(|i| (-((i as f64 - 40.0) / 6.0).powi(2)).exp())
            .collect();
        let p = dominant_peak(&x, 0.1).unwrap();
        assert_eq!(p.index, 40);
        assert!((p.height - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prominence_filters_ripples() {
        let mut x: Vec<f64> = (0..200).map(|i| 0.05 * ((i as f64) * 0.7).sin()).collect();
        for (i, v) in x.iter_mut().enumerate() {
            *v += 4.0 * (-((i as f64 - 100.0) / 8.0).powi(2)).exp();
        }
        let peaks = find_peaks(&x, 1.0);
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].index as i64 - 100).abs() <= 2);
    }

    #[test]
    fn two_peaks_ordered_by_prominence() {
        let mut x = vec![0.0; 120];
        for (i, v) in x.iter_mut().enumerate() {
            *v = 2.0 * (-((i as f64 - 30.0) / 5.0).powi(2)).exp()
                + 5.0 * (-((i as f64 - 80.0) / 5.0).powi(2)).exp();
        }
        let peaks = find_peaks(&x, 0.5);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 80);
        assert_eq!(peaks[1].index, 30);
    }

    #[test]
    fn flat_or_short_traces_yield_nothing() {
        assert!(find_peaks(&[1.0, 1.0], 0.1).is_empty());
        assert!(find_peaks(&[2.0; 50], 0.1).is_empty());
        assert!(find_peaks(&[], 0.1).is_empty());
    }

    #[test]
    fn monotone_trace_has_no_interior_peak() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(find_peaks(&x, 0.0).is_empty());
    }

    #[test]
    fn plateau_peak_detected_once() {
        let x = vec![0.0, 1.0, 3.0, 3.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 2);
    }
}

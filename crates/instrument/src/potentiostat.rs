//! The potentiostat: waveform execution against a cell and a device
//! model.
//!
//! Ties the pieces of this crate together: a potential program is
//! applied through the [`crate::cell::ThreeElectrodeCell`] (which
//! distorts it by iR drop and reference offset), the device under test
//! responds through a caller-supplied current model, and the
//! [`crate::chain::ReadoutChain`] digitizes what flows.

use bios_units::{Amperes, Seconds, Volts};

use crate::cell::ThreeElectrodeCell;
use crate::chain::ReadoutChain;

/// One sample of an executed experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentiostatSample {
    /// Time from program start.
    pub time: Seconds,
    /// The potential the instrument *programmed*.
    pub programmed: Volts,
    /// The potential the interface actually saw (iR-corrected).
    pub effective: Volts,
    /// The digitized current.
    pub current: Amperes,
}

/// A potentiostat: cell model + readout chain + sampling rate.
///
/// # Examples
///
/// ```
/// use bios_instrument::potentiostat::Potentiostat;
/// use bios_instrument::{ReadoutChain, ThreeElectrodeCell};
/// use bios_units::{Amperes, Seconds, Volts};
///
/// let mut p = Potentiostat::new(
///     ThreeElectrodeCell::ideal(),
///     ReadoutChain::benchtop(7).auto_ranged_for(Amperes::from_micro_amps(8.0)),
///     Seconds::from_millis(10.0),
/// );
/// // A resistor as the "device": i = E / 100 kΩ.
/// let trace = p.run(
///     |t| if t.as_seconds() < 0.5 { Volts::ZERO } else { Volts::from_milli_volts(650.0) },
///     Seconds::from_seconds(1.0),
///     |e, _t| Amperes::from_amps(e.as_volts() / 1e5),
/// );
/// assert!(!trace.is_empty());
/// let last = trace.last().unwrap();
/// assert!((last.current.as_micro_amps() - 6.5).abs() < 0.5);
/// ```
#[derive(Debug)]
pub struct Potentiostat {
    cell: ThreeElectrodeCell,
    chain: ReadoutChain,
    sample_interval: Seconds,
}

impl Potentiostat {
    /// Creates a potentiostat.
    ///
    /// # Panics
    ///
    /// Panics if the sample interval is not positive.
    #[must_use]
    pub fn new(
        cell: ThreeElectrodeCell,
        chain: ReadoutChain,
        sample_interval: Seconds,
    ) -> Potentiostat {
        assert!(
            sample_interval.as_seconds() > 0.0,
            "sample interval must be positive"
        );
        Potentiostat {
            cell,
            chain,
            sample_interval,
        }
    }

    /// The cell model.
    #[must_use]
    pub fn cell(&self) -> &ThreeElectrodeCell {
        &self.cell
    }

    /// Sampling interval.
    #[must_use]
    pub fn sample_interval(&self) -> Seconds {
        self.sample_interval
    }

    /// Executes `program` for `duration`, evaluating the device through
    /// `device` (true current as a function of the *effective* interface
    /// potential and time) and digitizing each sample.
    ///
    /// The iR feedback is solved by one fixed-point pass per sample: the
    /// previous sample's current sets this sample's iR drop — accurate
    /// for the slowly varying currents of biosensing.
    pub fn run(
        &mut self,
        program: impl Fn(Seconds) -> Volts,
        duration: Seconds,
        device: impl Fn(Volts, Seconds) -> Amperes,
    ) -> Vec<PotentiostatSample> {
        let n = (duration.as_seconds() / self.sample_interval.as_seconds()).floor() as usize;
        let mut out = Vec::with_capacity(n + 1);
        let mut last_current = Amperes::ZERO;
        for k in 0..=n {
            let t = Seconds::from_seconds(k as f64 * self.sample_interval.as_seconds());
            let programmed = program(t);
            let effective = self.cell.effective_potential(programmed, last_current);
            let true_current = device(effective, t);
            let current = self.chain.digitize(true_current);
            last_current = true_current;
            out.push(PotentiostatSample {
                time: t,
                programmed,
                effective,
                current,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::Ohms;

    fn resistor(r_ohms: f64) -> impl Fn(Volts, Seconds) -> Amperes {
        move |e, _| Amperes::from_amps(e.as_volts() / r_ohms)
    }

    #[test]
    fn executes_full_program() {
        let mut p = Potentiostat::new(
            ThreeElectrodeCell::ideal(),
            ReadoutChain::benchtop(3),
            Seconds::from_millis(100.0),
        );
        let trace = p.run(
            |_| Volts::from_milli_volts(650.0),
            Seconds::from_seconds(2.0),
            resistor(1e6),
        );
        assert_eq!(trace.len(), 21);
        assert!((trace[0].time.as_seconds()).abs() < 1e-12);
        assert!((trace[20].time.as_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_cell_passes_program_through() {
        let mut p = Potentiostat::new(
            ThreeElectrodeCell::ideal(),
            ReadoutChain::benchtop(3),
            Seconds::from_millis(50.0),
        );
        let trace = p.run(
            |_| Volts::from_milli_volts(400.0),
            Seconds::from_seconds(0.5),
            resistor(1e6),
        );
        for s in &trace {
            assert_eq!(s.programmed, s.effective);
        }
    }

    #[test]
    fn ir_drop_reduces_effective_potential() {
        // 10 kΩ uncompensated with a 100 kΩ device: ~10 % potential loss.
        let mut p = Potentiostat::new(
            ThreeElectrodeCell::new(Ohms::from_kilo_ohms(10.0), Volts::ZERO),
            ReadoutChain::benchtop(3),
            Seconds::from_millis(50.0),
        );
        let trace = p.run(
            |_| Volts::from_milli_volts(1000.0),
            Seconds::from_seconds(0.5),
            resistor(1e5),
        );
        let last = trace.last().unwrap();
        assert!(last.effective.as_milli_volts() < 950.0);
        assert!(last.effective.as_milli_volts() > 850.0);
    }

    #[test]
    fn measured_current_tracks_device_scale() {
        let mut p = Potentiostat::new(
            ThreeElectrodeCell::ideal(),
            ReadoutChain::benchtop(9).auto_ranged_for(Amperes::from_micro_amps(1.0)),
            Seconds::from_millis(20.0),
        );
        let trace = p.run(
            |_| Volts::from_milli_volts(650.0),
            Seconds::from_seconds(0.4),
            resistor(1e6),
        );
        let mean: f64 =
            trace.iter().map(|s| s.current.as_micro_amps()).sum::<f64>() / trace.len() as f64;
        assert!((mean - 0.65).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn zero_interval_rejected() {
        let _ = Potentiostat::new(
            ThreeElectrodeCell::ideal(),
            ReadoutChain::benchtop(1),
            Seconds::ZERO,
        );
    }
}

//! Time-division multiplexing of one readout chain across channels.
//!
//! A cost-optimized platform shares one potentiostat front end among the
//! chip's five working electrodes through an analog multiplexer (§2.5's
//! integration trade-offs). Switching channels disturbs the double layer,
//! so each visit pays a settling delay before its samples count.

use bios_units::Seconds;

/// A scan schedule over `channels`, visiting each for `dwell` after a
/// `settling` blanking interval.
///
/// # Examples
///
/// ```
/// use bios_instrument::sequencer::ScanSchedule;
/// use bios_units::Seconds;
///
/// let s = ScanSchedule::new(5, Seconds::from_millis(50.0), Seconds::from_millis(200.0));
/// // One full frame visits all five channels.
/// assert_eq!(s.frame_time().as_millis(), 5.0 * 250.0);
/// assert!(s.duty_cycle() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanSchedule {
    channels: usize,
    settling: Seconds,
    dwell: Seconds,
}

impl ScanSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or the dwell is not positive.
    #[must_use]
    pub fn new(channels: usize, settling: Seconds, dwell: Seconds) -> ScanSchedule {
        assert!(channels > 0, "schedule needs at least one channel");
        assert!(dwell.as_seconds() > 0.0, "dwell must be positive");
        ScanSchedule {
            channels,
            settling,
            dwell,
        }
    }

    /// Number of channels in the frame.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Settling (blanked) time per visit.
    #[must_use]
    pub fn settling(&self) -> Seconds {
        self.settling
    }

    /// Useful sampling time per visit.
    #[must_use]
    pub fn dwell(&self) -> Seconds {
        self.dwell
    }

    /// Time for one complete pass over all channels.
    #[must_use]
    pub fn frame_time(&self) -> Seconds {
        Seconds::from_seconds(
            self.channels as f64 * (self.settling.as_seconds() + self.dwell.as_seconds()),
        )
    }

    /// Fraction of wall time spent usefully sampling.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.dwell.as_seconds() / (self.settling.as_seconds() + self.dwell.as_seconds())
    }

    /// Effective per-channel sample rate given an ADC rate `hz`: samples
    /// gathered per channel per second of wall time.
    #[must_use]
    pub fn effective_rate_hz(&self, adc_hz: f64) -> f64 {
        adc_hz * self.dwell.as_seconds() / self.frame_time().as_seconds()
    }

    /// The SNR penalty (in linear amplitude ratio) of multiplexing vs a
    /// dedicated chain, from reduced averaging: `√(1/channels · duty)`.
    #[must_use]
    pub fn snr_penalty(&self) -> f64 {
        (self.duty_cycle() / self.channels as f64).sqrt()
    }

    /// When channel `k` is visited within each frame (start of its
    /// useful dwell).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn visit_offset(&self, k: usize) -> Seconds {
        assert!(k < self.channels, "channel out of range");
        let slot = self.settling.as_seconds() + self.dwell.as_seconds();
        Seconds::from_seconds(k as f64 * slot + self.settling.as_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> ScanSchedule {
        ScanSchedule::new(5, Seconds::from_millis(50.0), Seconds::from_millis(200.0))
    }

    #[test]
    fn frame_accounting() {
        let s = schedule();
        assert!((s.frame_time().as_seconds() - 1.25).abs() < 1e-12);
        assert!((s.duty_cycle() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn effective_rate_divides_among_channels() {
        let s = schedule();
        // 1 kHz ADC → per channel: 1000·0.2/1.25 = 160 Hz.
        assert!((s.effective_rate_hz(1000.0) - 160.0).abs() < 1e-9);
    }

    #[test]
    fn more_channels_lower_rate_and_snr() {
        let two = ScanSchedule::new(2, Seconds::from_millis(50.0), Seconds::from_millis(200.0));
        let five = schedule();
        assert!(two.effective_rate_hz(1000.0) > five.effective_rate_hz(1000.0));
        assert!(two.snr_penalty() > five.snr_penalty());
    }

    #[test]
    fn longer_settling_hurts_duty_cycle() {
        let slow = ScanSchedule::new(5, Seconds::from_millis(200.0), Seconds::from_millis(200.0));
        assert!(slow.duty_cycle() < schedule().duty_cycle());
    }

    #[test]
    fn visit_offsets_are_ordered_and_skip_settling() {
        let s = schedule();
        assert!((s.visit_offset(0).as_millis() - 50.0).abs() < 1e-9);
        assert!((s.visit_offset(1).as_millis() - 300.0).abs() < 1e-9);
        let mut prev = Seconds::ZERO;
        for k in 0..s.channels() {
            let t = s.visit_offset(k);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_channel_rejected() {
        let _ = schedule().visit_offset(5);
    }
}

//! Property tests for the instrument chain: quantization bounds,
//! amplifier linearity, filter invariants, and noise statistics.
//! Sampled deterministically via `bios_prng::cases`.

use bios_instrument::filter::{
    exponential, moving_average, savitzky_golay, subtract_linear_baseline,
};
use bios_instrument::noise::NoiseGenerator;
use bios_instrument::peak::find_peaks;
use bios_instrument::{Adc, ReadoutChain, TransimpedanceAmplifier};
use bios_prng::cases;
use bios_units::{Amperes, Ohms, Volts};

/// Quantization error never exceeds half an LSB in range.
#[test]
fn adc_error_bounded() {
    cases(0x0401, 64, |rng| {
        let bits = rng.index_in(4, 20) as u8;
        let v_mv = rng.uniform_in(-3000.0, 3000.0);
        let adc = Adc::new(bits, Volts::from_volts(3.3));
        let v = Volts::from_milli_volts(v_mv);
        let q = adc.digitize(v);
        let err = (q.as_volts() - v.as_volts()).abs();
        assert!(err <= adc.lsb().as_volts() / 2.0 + 1e-12);
    });
}

/// ADC codes are monotone in the input voltage.
#[test]
fn adc_monotone() {
    cases(0x0402, 64, |rng| {
        let bits = rng.index_in(4, 20) as u8;
        let a = rng.uniform_in(-3.0, 3.0);
        let d = rng.uniform_in(0.0, 1.0);
        let adc = Adc::new(bits, Volts::from_volts(3.3));
        let c1 = adc.quantize(Volts::from_volts(a));
        let c2 = adc.quantize(Volts::from_volts(a + d));
        assert!(c2 >= c1);
    });
}

/// The amplifier is exactly linear inside its rails and clips hard
/// outside.
#[test]
fn amplifier_linearity_and_clipping() {
    cases(0x0403, 64, |rng| {
        let gain_k = rng.uniform_in(1.0, 10_000.0);
        let i_na = rng.uniform_in(-1e6, 1e6);
        let tia =
            TransimpedanceAmplifier::new(Ohms::from_kilo_ohms(gain_k), Volts::from_volts(3.3));
        let i = Amperes::from_nano_amps(i_na);
        let v = tia.convert(i);
        assert!(v.as_volts().abs() <= 3.3 + 1e-12);
        if !tia.saturates_at(i) {
            let back = tia.invert(v);
            assert!((back.as_nano_amps() - i_na).abs() <= i_na.abs() * 1e-9 + 1e-9);
        }
    });
}

/// Auto-ranging never saturates at the expected maximum.
#[test]
fn auto_range_never_clips() {
    cases(0x0404, 64, |rng| {
        let max_na = rng.log_uniform_in(0.1, 1e6);
        let expected = Amperes::from_nano_amps(max_na);
        let tia = TransimpedanceAmplifier::auto_range(expected, Volts::from_volts(3.3));
        assert!(!tia.saturates_at(expected));
    });
}

/// Filters preserve the mean of a constant signal exactly and never
/// extend the value range of the input.
#[test]
fn filters_respect_constant_signals() {
    cases(0x0405, 64, |rng| {
        let level = rng.uniform_in(-100.0, 100.0);
        let n = rng.index_in(10, 100);
        let x = vec![level; n];
        for y in [
            moving_average(&x, 5),
            savitzky_golay(&x, 7),
            exponential(&x, 0.3),
        ] {
            assert_eq!(y.len(), n);
            for v in y {
                assert!((v - level).abs() < 1e-9);
            }
        }
    });
}

/// Moving average output stays within [min, max] of the input.
#[test]
fn moving_average_no_overshoot() {
    cases(0x0406, 64, |rng| {
        let n = rng.index_in(10, 80);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_in(-10.0, 10.0)).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&xs, 5) {
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    });
}

/// Baseline subtraction exactly annihilates any affine signal.
#[test]
fn baseline_kills_affine() {
    cases(0x0407, 64, |rng| {
        let slope = rng.uniform_in(-5.0, 5.0);
        let offset = rng.uniform_in(-50.0, 50.0);
        let n = rng.index_in(20, 100);
        let x: Vec<f64> = (0..n).map(|i| offset + slope * i as f64).collect();
        let (corrected, _) = subtract_linear_baseline(&x, 4);
        for v in corrected {
            assert!(v.abs() < 1e-9);
        }
    });
}

/// Noise generator: identical seeds give identical streams.
#[test]
fn noise_reproducibility() {
    cases(0x0408, 64, |rng| {
        let seed = rng.next_u64() % 10_000;
        let rms_pa = rng.uniform_in(1.0, 1e4);
        let mut a = NoiseGenerator::new(seed, Amperes::from_amps(rms_pa * 1e-12));
        let mut b = NoiseGenerator::new(seed, Amperes::from_amps(rms_pa * 1e-12));
        for _ in 0..32 {
            assert_eq!(a.sample().as_amps(), b.sample().as_amps());
        }
    });
}

/// The full chain is unbiased for in-range signals: the mean of many
/// digitized readings approaches the true current.
#[test]
fn chain_is_unbiased() {
    cases(0x0409, 64, |rng| {
        let seed = rng.next_u64() % 1000;
        let i_na = rng.uniform_in(10.0, 2000.0);
        let mut chain =
            ReadoutChain::benchtop(seed).auto_ranged_for(Amperes::from_nano_amps(i_na * 2.0));
        let i = Amperes::from_nano_amps(i_na);
        let n = 300;
        let mean: f64 = (0..n)
            .map(|_| chain.digitize(i).as_nano_amps())
            .sum::<f64>()
            / f64::from(n);
        // Bias below 2 % of signal (noise ~0.06 nA, quantization ≲ LSB).
        assert!(
            (mean - i_na).abs() < 0.02 * i_na + 1.0,
            "mean {mean} vs {i_na}"
        );
    });
}

/// Peak finding: the returned indices are valid, heights match the
/// samples, and prominences are non-negative and ≤ height span.
#[test]
fn peaks_are_well_formed() {
    cases(0x040A, 64, |rng| {
        let n = rng.index_in(8, 120);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.0, 10.0)).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in find_peaks(&xs, 0.1) {
            assert!(p.index > 0 && p.index < xs.len() - 1);
            assert_eq!(p.height, xs[p.index]);
            assert!(p.prominence >= 0.1);
            assert!(p.prominence <= (hi - lo) + 1e-12);
        }
    });
}

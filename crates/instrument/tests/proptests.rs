//! Property tests for the instrument chain: quantization bounds,
//! amplifier linearity, filter invariants, and noise statistics.

use proptest::prelude::*;

use bios_instrument::filter::{exponential, moving_average, savitzky_golay, subtract_linear_baseline};
use bios_instrument::noise::NoiseGenerator;
use bios_instrument::peak::find_peaks;
use bios_instrument::{Adc, ReadoutChain, TransimpedanceAmplifier};
use bios_units::{Amperes, Ohms, Volts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization error never exceeds half an LSB in range.
    #[test]
    fn adc_error_bounded(bits in 4u8..20, v_mv in -3000.0f64..3000.0) {
        let adc = Adc::new(bits, Volts::from_volts(3.3));
        let v = Volts::from_milli_volts(v_mv);
        let q = adc.digitize(v);
        let err = (q.as_volts() - v.as_volts()).abs();
        prop_assert!(err <= adc.lsb().as_volts() / 2.0 + 1e-12);
    }

    /// ADC codes are monotone in the input voltage.
    #[test]
    fn adc_monotone(bits in 4u8..20, a in -3.0f64..3.0, d in 0.0f64..1.0) {
        let adc = Adc::new(bits, Volts::from_volts(3.3));
        let c1 = adc.quantize(Volts::from_volts(a));
        let c2 = adc.quantize(Volts::from_volts(a + d));
        prop_assert!(c2 >= c1);
    }

    /// The amplifier is exactly linear inside its rails and clips hard
    /// outside.
    #[test]
    fn amplifier_linearity_and_clipping(
        gain_k in 1.0f64..10_000.0,
        i_na in -1e6f64..1e6,
    ) {
        let tia = TransimpedanceAmplifier::new(
            Ohms::from_kilo_ohms(gain_k),
            Volts::from_volts(3.3),
        );
        let i = Amperes::from_nano_amps(i_na);
        let v = tia.convert(i);
        prop_assert!(v.as_volts().abs() <= 3.3 + 1e-12);
        if !tia.saturates_at(i) {
            let back = tia.invert(v);
            prop_assert!((back.as_nano_amps() - i_na).abs() <= i_na.abs() * 1e-9 + 1e-9);
        }
    }

    /// Auto-ranging never saturates at the expected maximum.
    #[test]
    fn auto_range_never_clips(max_na in 0.1f64..1e6) {
        let expected = Amperes::from_nano_amps(max_na);
        let tia = TransimpedanceAmplifier::auto_range(expected, Volts::from_volts(3.3));
        prop_assert!(!tia.saturates_at(expected));
    }

    /// Filters preserve the mean of a constant signal exactly and never
    /// extend the value range of the input.
    #[test]
    fn filters_respect_constant_signals(
        level in -100.0f64..100.0,
        n in 10usize..100,
    ) {
        let x = vec![level; n];
        for y in [
            moving_average(&x, 5),
            savitzky_golay(&x, 7),
            exponential(&x, 0.3),
        ] {
            prop_assert_eq!(y.len(), n);
            for v in y {
                prop_assert!((v - level).abs() < 1e-9);
            }
        }
    }

    /// Moving average output stays within [min, max] of the input.
    #[test]
    fn moving_average_no_overshoot(xs in prop::collection::vec(-10.0f64..10.0, 10..80)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&xs, 5) {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// Baseline subtraction exactly annihilates any affine signal.
    #[test]
    fn baseline_kills_affine(
        slope in -5.0f64..5.0,
        offset in -50.0f64..50.0,
        n in 20usize..100,
    ) {
        let x: Vec<f64> = (0..n).map(|i| offset + slope * i as f64).collect();
        let (corrected, _) = subtract_linear_baseline(&x, 4);
        for v in corrected {
            prop_assert!(v.abs() < 1e-9);
        }
    }

    /// Noise generator: identical seeds give identical streams;
    /// the sample mean of n draws shrinks like 1/√n.
    #[test]
    fn noise_reproducibility(seed in 0u64..10_000, rms_pa in 1.0f64..1e4) {
        let mut a = NoiseGenerator::new(seed, Amperes::from_amps(rms_pa * 1e-12));
        let mut b = NoiseGenerator::new(seed, Amperes::from_amps(rms_pa * 1e-12));
        for _ in 0..32 {
            prop_assert_eq!(a.sample().as_amps(), b.sample().as_amps());
        }
    }

    /// The full chain is unbiased for in-range signals: the mean of many
    /// digitized readings approaches the true current.
    #[test]
    fn chain_is_unbiased(seed in 0u64..1000, i_na in 10.0f64..2000.0) {
        let mut chain = ReadoutChain::benchtop(seed)
            .auto_ranged_for(Amperes::from_nano_amps(i_na * 2.0));
        let i = Amperes::from_nano_amps(i_na);
        let n = 300;
        let mean: f64 = (0..n)
            .map(|_| chain.digitize(i).as_nano_amps())
            .sum::<f64>() / n as f64;
        // Bias below 2 % of signal (noise ~0.06 nA, quantization ≲ LSB).
        prop_assert!((mean - i_na).abs() < 0.02 * i_na + 1.0, "mean {mean} vs {i_na}");
    }

    /// Peak finding: the returned indices are valid, heights match the
    /// samples, and prominences are non-negative and ≤ height span.
    #[test]
    fn peaks_are_well_formed(xs in prop::collection::vec(0.0f64..10.0, 8..120)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in find_peaks(&xs, 0.1) {
            prop_assert!(p.index > 0 && p.index < xs.len() - 1);
            prop_assert_eq!(p.height, xs[p.index]);
            prop_assert!(p.prominence >= 0.1);
            prop_assert!(p.prominence <= (hi - lo) + 1e-12);
        }
    }
}

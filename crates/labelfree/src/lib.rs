//! # bios-labelfree
//!
//! The two label-free, non-electrochemical transduction families the
//! paper surveys in §2.3, as working models:
//!
//! * [`spr`] — surface plasmon resonance: binding changes the refractive
//!   index at a metal/dielectric interface and shifts the resonance.
//! * [`qcm`] — quartz crystal microbalance: bound mass shifts the
//!   resonance frequency of a shear-mode quartz oscillator (Sauerbrey).
//!
//! Together with `bios-electrochem`'s amperometric, potentiometric,
//! impedimetric, and field-effect models, every transduction row of the
//! paper's classification is executable.
//!
//! # Examples
//!
//! ```
//! use bios_labelfree::spr::SprSensor;
//! use bios_units::Molar;
//!
//! let spr = SprSensor::biacore_like();
//! let blank = spr.response_units(Molar::ZERO);
//! let bound = spr.response_units(Molar::from_nano_molar(50.0));
//! assert!(bound > blank);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod qcm;
pub mod spr;

pub use qcm::QuartzCrystalMicrobalance;
pub use spr::SprSensor;

//! Quartz crystal microbalance (piezoelectric) sensing.
//!
//! §2.3: "Piezoelectric biosensors typically detect mass variation …
//! once the sensing element binds the target, the mass of the system
//! varies and shifts the resonance frequency." The classic relation is
//! the Sauerbrey equation:
//!
//! `Δf = −2·f₀²·Δm / (A·√(ρ_q·µ_q))`
//!
//! with quartz density ρ_q = 2.648 g/cm³ and shear modulus
//! µ_q = 2.947×10¹¹ g·cm⁻¹·s⁻².

use bios_units::SquareCm;

/// Quartz density, g/cm³.
const RHO_QUARTZ: f64 = 2.648;
/// Quartz shear modulus, g·cm⁻¹·s⁻².
const MU_QUARTZ: f64 = 2.947e11;

/// An AT-cut quartz resonator with a functionalized electrode.
///
/// # Examples
///
/// ```
/// use bios_labelfree::QuartzCrystalMicrobalance;
/// use bios_units::SquareCm;
///
/// // The canonical 5 MHz crystal: ~56.6 Hz per µg/cm².
/// let qcm = QuartzCrystalMicrobalance::new(5e6, SquareCm::from_square_cm(1.0));
/// let shift = qcm.frequency_shift_hz(1.0e-6); // 1 µg bound on 1 cm²
/// assert!((shift + 56.6).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartzCrystalMicrobalance {
    fundamental_hz: f64,
    active_area: SquareCm,
    /// Frequency-counter resolution, Hz.
    resolution_hz: f64,
}

impl QuartzCrystalMicrobalance {
    /// Creates a crystal with the given fundamental frequency and active
    /// electrode area.
    ///
    /// # Panics
    ///
    /// Panics if the frequency or area is not positive.
    #[must_use]
    pub fn new(fundamental_hz: f64, active_area: SquareCm) -> QuartzCrystalMicrobalance {
        assert!(
            fundamental_hz > 0.0,
            "fundamental frequency must be positive"
        );
        assert!(
            active_area.as_square_cm() > 0.0,
            "active area must be positive"
        );
        QuartzCrystalMicrobalance {
            fundamental_hz,
            active_area,
            resolution_hz: 0.1,
        }
    }

    /// Sets the frequency-counter resolution (default 0.1 Hz).
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not positive.
    #[must_use]
    pub fn with_resolution(mut self, hz: f64) -> QuartzCrystalMicrobalance {
        assert!(hz > 0.0, "resolution must be positive");
        self.resolution_hz = hz;
        self
    }

    /// The crystal's fundamental frequency, Hz.
    #[must_use]
    pub fn fundamental_hz(&self) -> f64 {
        self.fundamental_hz
    }

    /// Sauerbrey mass sensitivity, Hz per (g/cm²).
    #[must_use]
    pub fn sensitivity_hz_per_gram_per_cm2(&self) -> f64 {
        2.0 * self.fundamental_hz * self.fundamental_hz / (RHO_QUARTZ * MU_QUARTZ).sqrt()
    }

    /// Frequency shift for `mass_grams` of rigidly coupled deposit.
    /// Negative shifts mean added mass.
    #[must_use]
    pub fn frequency_shift_hz(&self, mass_grams: f64) -> f64 {
        -self.sensitivity_hz_per_gram_per_cm2() * mass_grams / self.active_area.as_square_cm()
    }

    /// The smallest detectable areal mass (g/cm²) given the counter
    /// resolution — 3 counts as the detection criterion.
    #[must_use]
    pub fn mass_detection_limit_grams_per_cm2(&self) -> f64 {
        3.0 * self.resolution_hz / self.sensitivity_hz_per_gram_per_cm2()
    }

    /// Whether a deposited protein monolayer (~200 ng/cm²) is
    /// detectable on this crystal.
    #[must_use]
    pub fn detects_protein_monolayer(&self) -> bool {
        self.mass_detection_limit_grams_per_cm2() < 200e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qcm() -> QuartzCrystalMicrobalance {
        QuartzCrystalMicrobalance::new(5e6, SquareCm::from_square_cm(1.0))
    }

    #[test]
    fn sauerbrey_constant_for_5_mhz() {
        // Textbook: 56.6 Hz·µg⁻¹·cm² for 5 MHz AT-cut quartz.
        let s = qcm().sensitivity_hz_per_gram_per_cm2() * 1e-6;
        assert!((s - 56.6).abs() < 0.5, "sensitivity {s}");
    }

    #[test]
    fn added_mass_lowers_frequency() {
        let shift = qcm().frequency_shift_hz(0.5e-6);
        assert!(shift < 0.0);
    }

    #[test]
    fn shift_linear_in_mass_and_inverse_in_area() {
        let q = qcm();
        assert!((q.frequency_shift_hz(2e-6) / q.frequency_shift_hz(1e-6) - 2.0).abs() < 1e-12);
        let small = QuartzCrystalMicrobalance::new(5e6, SquareCm::from_square_cm(0.5));
        assert!((small.frequency_shift_hz(1e-6) / q.frequency_shift_hz(1e-6) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn higher_fundamental_is_more_sensitive() {
        let f5 = qcm();
        let f10 = QuartzCrystalMicrobalance::new(10e6, SquareCm::from_square_cm(1.0));
        // Sauerbrey ∝ f².
        let ratio = f10.sensitivity_hz_per_gram_per_cm2() / f5.sensitivity_hz_per_gram_per_cm2();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn monolayer_detection() {
        // A 5 MHz crystal at 0.1 Hz resolution resolves ~5 ng/cm² —
        // comfortably below a protein monolayer.
        assert!(qcm().detects_protein_monolayer());
        // A sloppy 100 Hz counter cannot.
        assert!(!qcm().with_resolution(100.0).detects_protein_monolayer());
    }
}

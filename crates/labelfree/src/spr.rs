//! Surface plasmon resonance sensing.
//!
//! §2.3: "If the excitation frequency matches the oscillation frequency
//! of surface charge density, electromagnetic waves propagate along the
//! interface… as soon as the dielectric changes (because the target
//! molecules bind the receptor), there is also a change in the
//! refractive index."
//!
//! The model is the standard biosensing chain: Langmuir binding →
//! adsorbed protein mass → refractive-index increment (de Feijter) →
//! resonance shift in response units (1 RU = 10⁻⁶ refractive-index
//! units ≈ 1 pg/mm² of protein).

use bios_units::Molar;

/// An SPR channel functionalized with a receptor layer.
///
/// # Examples
///
/// ```
/// use bios_labelfree::SprSensor;
/// use bios_units::Molar;
///
/// let spr = SprSensor::biacore_like();
/// // Half-saturation response exactly at K_D.
/// let half = spr.response_units(spr.kd());
/// let max = spr.saturation_response_units();
/// assert!((half / max - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprSensor {
    /// Receptor surface density, pg-equivalent capacity per mm² at full
    /// occupancy (R_max in instrument terms, in RU).
    r_max_ru: f64,
    /// Receptor–analyte dissociation constant.
    kd: Molar,
    /// Baseline instrument noise, RU (RMS).
    noise_ru: f64,
    /// Angular sensitivity: millidegrees of resonance shift per 1000 RU.
    millideg_per_kilo_ru: f64,
}

impl SprSensor {
    /// A typical research-grade instrument channel: R_max 1200 RU,
    /// nanomolar antibody affinity, 0.3 RU noise.
    #[must_use]
    pub fn biacore_like() -> SprSensor {
        SprSensor {
            r_max_ru: 1200.0,
            kd: Molar::from_nano_molar(10.0),
            noise_ru: 0.3,
            millideg_per_kilo_ru: 100.0,
        }
    }

    /// Builds a custom channel.
    ///
    /// # Panics
    ///
    /// Panics if `r_max_ru` or `noise_ru` is not positive.
    #[must_use]
    pub fn new(r_max_ru: f64, kd: Molar, noise_ru: f64) -> SprSensor {
        assert!(r_max_ru > 0.0, "R_max must be positive");
        assert!(noise_ru > 0.0, "noise must be positive");
        SprSensor {
            r_max_ru,
            kd,
            noise_ru,
            millideg_per_kilo_ru: 100.0,
        }
    }

    /// The receptor–analyte dissociation constant.
    #[must_use]
    pub fn kd(&self) -> Molar {
        self.kd
    }

    /// Response at full receptor occupancy.
    #[must_use]
    pub fn saturation_response_units(&self) -> f64 {
        self.r_max_ru
    }

    /// Equilibrium response at analyte concentration `c`, in RU.
    #[must_use]
    pub fn response_units(&self, c: Molar) -> f64 {
        let x = c.as_molar().max(0.0);
        self.r_max_ru * x / (self.kd.as_molar() + x)
    }

    /// The resonance-angle shift corresponding to a response, in
    /// millidegrees.
    #[must_use]
    pub fn angle_shift_millideg(&self, response_ru: f64) -> f64 {
        response_ru / 1000.0 * self.millideg_per_kilo_ru
    }

    /// 3σ detection limit in concentration units: the analyte level
    /// whose equilibrium response equals three noise RMS.
    #[must_use]
    pub fn detection_limit(&self) -> Molar {
        let r_min = 3.0 * self.noise_ru;
        // Invert the Langmuir response: c = K_D·r/(R_max − r).
        Molar::from_molar(self.kd.as_molar() * r_min / (self.r_max_ru - r_min))
    }

    /// Association-phase transient toward equilibrium with observed rate
    /// `k_obs = k_on·c + k_off`: `R(t) = R_eq·(1 − e^(−k_obs·t))`.
    ///
    /// `k_on` in M⁻¹s⁻¹; `k_off` is derived from `K_D = k_off/k_on`.
    ///
    /// # Panics
    ///
    /// Panics if `k_on` or `t_seconds` is not positive.
    #[must_use]
    pub fn association_transient(
        &self,
        c: Molar,
        k_on_per_molar_second: f64,
        t_seconds: f64,
    ) -> f64 {
        assert!(k_on_per_molar_second > 0.0, "k_on must be positive");
        assert!(t_seconds >= 0.0, "time cannot be negative");
        let k_off = k_on_per_molar_second * self.kd.as_molar();
        let k_obs = k_on_per_molar_second * c.as_molar().max(0.0) + k_off;
        self.response_units(c) * (1.0 - (-k_obs * t_seconds).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn langmuir_shape() {
        let s = SprSensor::biacore_like();
        assert_eq!(s.response_units(Molar::ZERO), 0.0);
        let r = s.response_units(Molar::from_micro_molar(10.0));
        assert!(r > 0.99 * s.saturation_response_units());
        assert!(r <= s.saturation_response_units());
    }

    #[test]
    fn detection_limit_in_sub_nanomolar_band() {
        // 0.3 RU noise on a 1200 RU channel with 10 nM K_D →
        // 3σ ≈ 0.9/1199 · 10 nM ≈ 7.5 pM.
        let lod = SprSensor::biacore_like().detection_limit();
        assert!(
            lod.as_nano_molar() > 0.001 && lod.as_nano_molar() < 0.1,
            "LOD {} nM",
            lod.as_nano_molar()
        );
    }

    #[test]
    fn quieter_instrument_detects_less() {
        let loud = SprSensor::new(1200.0, Molar::from_nano_molar(10.0), 1.0);
        let quiet = SprSensor::new(1200.0, Molar::from_nano_molar(10.0), 0.1);
        assert!(quiet.detection_limit() < loud.detection_limit());
    }

    #[test]
    fn angle_shift_is_linear_in_response() {
        let s = SprSensor::biacore_like();
        let a1 = s.angle_shift_millideg(100.0);
        let a2 = s.angle_shift_millideg(200.0);
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn association_approaches_equilibrium() {
        let s = SprSensor::biacore_like();
        let c = Molar::from_nano_molar(20.0);
        let k_on = 1e5; // M⁻¹s⁻¹
        let early = s.association_transient(c, k_on, 10.0);
        let late = s.association_transient(c, k_on, 10_000.0);
        let eq = s.response_units(c);
        assert!(early < late);
        assert!((late - eq).abs() / eq < 1e-6);
    }

    #[test]
    fn higher_concentration_binds_faster() {
        let s = SprSensor::biacore_like();
        let k_on = 1e5;
        let t = 30.0;
        // Fractional completion at t is higher for the higher
        // concentration (larger k_obs).
        let frac = |c: Molar| s.association_transient(c, k_on, t) / s.response_units(c);
        assert!(frac(Molar::from_nano_molar(100.0)) > frac(Molar::from_nano_molar(5.0)));
    }
}

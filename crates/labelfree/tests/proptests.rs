//! Property tests for the label-free transduction models.

use proptest::prelude::*;

use bios_labelfree::{QuartzCrystalMicrobalance, SprSensor};
use bios_units::{Molar, SquareCm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SPR response is bounded by R_max and monotone in concentration.
    #[test]
    fn spr_response_bounded_and_monotone(
        r_max in 100.0f64..5000.0,
        kd_nano in 0.1f64..1000.0,
        c1 in 0.0f64..1e4,
        dc in 0.0f64..1e4,
    ) {
        let s = SprSensor::new(r_max, Molar::from_nano_molar(kd_nano), 0.3);
        let lo = s.response_units(Molar::from_nano_molar(c1));
        let hi = s.response_units(Molar::from_nano_molar(c1 + dc));
        prop_assert!(lo >= 0.0);
        prop_assert!(hi >= lo);
        prop_assert!(hi <= r_max);
    }

    /// SPR detection limit is monotone in instrument noise and in K_D.
    #[test]
    fn spr_lod_monotonicities(
        kd_nano in 1.0f64..100.0,
        noise in 0.05f64..2.0,
        factor in 1.5f64..5.0,
    ) {
        let base = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano), noise);
        let noisier = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano), noise * factor);
        prop_assert!(noisier.detection_limit() > base.detection_limit());
        let weaker = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano * factor), noise);
        prop_assert!(weaker.detection_limit() > base.detection_limit());
    }

    /// The association transient never exceeds its equilibrium value and
    /// is monotone in time.
    #[test]
    fn spr_transient_bounded(
        c_nano in 0.1f64..1000.0,
        k_on in 1e3f64..1e7,
        t1 in 0.0f64..1e3,
        dt in 0.0f64..1e3,
    ) {
        let s = SprSensor::biacore_like();
        let c = Molar::from_nano_molar(c_nano);
        let r1 = s.association_transient(c, k_on, t1);
        let r2 = s.association_transient(c, k_on, t1 + dt);
        let eq = s.response_units(c);
        prop_assert!(r1 >= 0.0);
        prop_assert!(r2 + 1e-12 >= r1);
        prop_assert!(r2 <= eq * (1.0 + 1e-12));
    }

    /// Sauerbrey: frequency shift is exactly linear in mass and the
    /// sensitivity scales as f².
    #[test]
    fn qcm_scalings(
        f_mhz in 1.0f64..30.0,
        mass_ng in 1.0f64..10_000.0,
        k in 1.5f64..4.0,
    ) {
        let q = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0));
        let s1 = q.frequency_shift_hz(mass_ng * 1e-9);
        let s2 = q.frequency_shift_hz(mass_ng * 1e-9 * k);
        prop_assert!(s1 < 0.0);
        prop_assert!((s2 / s1 - k).abs() < 1e-9);
        let q2 = QuartzCrystalMicrobalance::new(f_mhz * 1e6 * k, SquareCm::from_square_cm(1.0));
        let ratio = q2.sensitivity_hz_per_gram_per_cm2() / q.sensitivity_hz_per_gram_per_cm2();
        prop_assert!((ratio - k * k).abs() / (k * k) < 1e-9);
    }

    /// QCM detection limit improves with finer counters and higher
    /// fundamentals.
    #[test]
    fn qcm_lod_monotonicities(f_mhz in 1.0f64..30.0, res in 0.01f64..10.0) {
        let q = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0))
            .with_resolution(res);
        let finer = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0))
            .with_resolution(res / 2.0);
        prop_assert!(
            finer.mass_detection_limit_grams_per_cm2() < q.mass_detection_limit_grams_per_cm2()
        );
    }
}

//! Property tests for the label-free transduction models.
//! Sampled deterministically via `bios_prng::cases`.

use bios_labelfree::{QuartzCrystalMicrobalance, SprSensor};
use bios_prng::cases;
use bios_units::{Molar, SquareCm};

/// SPR response is bounded by R_max and monotone in concentration.
#[test]
fn spr_response_bounded_and_monotone() {
    cases(0x0601, 64, |rng| {
        let r_max = rng.uniform_in(100.0, 5000.0);
        let kd_nano = rng.log_uniform_in(0.1, 1000.0);
        let c1 = rng.uniform_in(0.0, 1e4);
        let dc = rng.uniform_in(0.0, 1e4);
        let s = SprSensor::new(r_max, Molar::from_nano_molar(kd_nano), 0.3);
        let lo = s.response_units(Molar::from_nano_molar(c1));
        let hi = s.response_units(Molar::from_nano_molar(c1 + dc));
        assert!(lo >= 0.0);
        assert!(hi >= lo);
        assert!(hi <= r_max);
    });
}

/// SPR detection limit is monotone in instrument noise and in K_D.
#[test]
fn spr_lod_monotonicities() {
    cases(0x0602, 64, |rng| {
        let kd_nano = rng.uniform_in(1.0, 100.0);
        let noise = rng.uniform_in(0.05, 2.0);
        let factor = rng.uniform_in(1.5, 5.0);
        let base = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano), noise);
        let noisier = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano), noise * factor);
        assert!(noisier.detection_limit() > base.detection_limit());
        let weaker = SprSensor::new(1200.0, Molar::from_nano_molar(kd_nano * factor), noise);
        assert!(weaker.detection_limit() > base.detection_limit());
    });
}

/// The association transient never exceeds its equilibrium value and
/// is monotone in time.
#[test]
fn spr_transient_bounded() {
    cases(0x0603, 64, |rng| {
        let c_nano = rng.log_uniform_in(0.1, 1000.0);
        let k_on = rng.log_uniform_in(1e3, 1e7);
        let t1 = rng.uniform_in(0.0, 1e3);
        let dt = rng.uniform_in(0.0, 1e3);
        let s = SprSensor::biacore_like();
        let c = Molar::from_nano_molar(c_nano);
        let r1 = s.association_transient(c, k_on, t1);
        let r2 = s.association_transient(c, k_on, t1 + dt);
        let eq = s.response_units(c);
        assert!(r1 >= 0.0);
        assert!(r2 + 1e-12 >= r1);
        assert!(r2 <= eq * (1.0 + 1e-12));
    });
}

/// Sauerbrey: frequency shift is exactly linear in mass and the
/// sensitivity scales as f².
#[test]
fn qcm_scalings() {
    cases(0x0604, 64, |rng| {
        let f_mhz = rng.uniform_in(1.0, 30.0);
        let mass_ng = rng.log_uniform_in(1.0, 10_000.0);
        let k = rng.uniform_in(1.5, 4.0);
        let q = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0));
        let s1 = q.frequency_shift_hz(mass_ng * 1e-9);
        let s2 = q.frequency_shift_hz(mass_ng * 1e-9 * k);
        assert!(s1 < 0.0);
        assert!((s2 / s1 - k).abs() < 1e-9);
        let q2 = QuartzCrystalMicrobalance::new(f_mhz * 1e6 * k, SquareCm::from_square_cm(1.0));
        let ratio = q2.sensitivity_hz_per_gram_per_cm2() / q.sensitivity_hz_per_gram_per_cm2();
        assert!((ratio - k * k).abs() / (k * k) < 1e-9);
    });
}

/// QCM detection limit improves with finer counters.
#[test]
fn qcm_lod_monotonicities() {
    cases(0x0605, 64, |rng| {
        let f_mhz = rng.uniform_in(1.0, 30.0);
        let res = rng.log_uniform_in(0.01, 10.0);
        let q = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0))
            .with_resolution(res);
        let finer = QuartzCrystalMicrobalance::new(f_mhz * 1e6, SquareCm::from_square_cm(1.0))
            .with_resolution(res / 2.0);
        assert!(
            finer.mass_detection_limit_grams_per_cm2() < q.mass_detection_limit_grams_per_cm2()
        );
    });
}

//! Carbon-nanotube dispersion media.
//!
//! Pristine MWCNT are hydrophobic and bundle badly; the paper (§2.4)
//! highlights Wang et al.'s finding that Nafion solubilizes nanotubes
//! into well-dispersed films. The dispersant determines how uniform the
//! cast film is — and through that the electron-transfer benefit that
//! actually materializes.

/// The solvent/matrix MWCNT are dispersed in before drop-casting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispersant {
    /// 0.5 % Nafion in ethanol — the paper's oxidase-sensor recipe and
    /// the best dispersion quality \[54\].
    Nafion,
    /// Chloroform — the paper's CYP450-sensor recipe; evaporates fast,
    /// decent dispersion.
    Chloroform,
    /// Mineral oil (carbon-paste composites, \[41\]); poor electronic pathways.
    MineralOil,
    /// Silica sol-gel matrix (\[19\]); entraps enzyme, moderate quality.
    SolGel,
    /// Plain aqueous suspension (sonicated only); bundles re-aggregate.
    Water,
}

impl Dispersant {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Dispersant::Nafion => "Nafion 0.5%",
            Dispersant::Chloroform => "chloroform",
            Dispersant::MineralOil => "mineral oil",
            Dispersant::SolGel => "sol-gel",
            Dispersant::Water => "water",
        }
    }

    /// Film-quality factor in (0, 1]: the fraction of the nanotube
    /// network that ends up electrically wired to the electrode.
    #[must_use]
    pub fn film_quality(&self) -> f64 {
        match self {
            Dispersant::Nafion => 0.95,
            Dispersant::Chloroform => 0.85,
            Dispersant::SolGel => 0.6,
            Dispersant::Water => 0.4,
            Dispersant::MineralOil => 0.25,
        }
    }

    /// Whether the matrix also acts as a permselective barrier against
    /// anionic interferents (Nafion famously rejects ascorbate/urate).
    #[must_use]
    pub fn rejects_anionic_interferents(&self) -> bool {
        matches!(self, Dispersant::Nafion)
    }
}

impl std::fmt::Display for Dispersant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nafion_is_best_dispersant() {
        // The Wang et al. [54] result the paper leans on.
        for other in [
            Dispersant::Chloroform,
            Dispersant::MineralOil,
            Dispersant::SolGel,
            Dispersant::Water,
        ] {
            assert!(Dispersant::Nafion.film_quality() > other.film_quality());
        }
    }

    #[test]
    fn mineral_oil_is_worst() {
        for other in [
            Dispersant::Nafion,
            Dispersant::Chloroform,
            Dispersant::SolGel,
            Dispersant::Water,
        ] {
            assert!(Dispersant::MineralOil.film_quality() < other.film_quality());
        }
    }

    #[test]
    fn quality_is_a_fraction() {
        for d in [
            Dispersant::Nafion,
            Dispersant::Chloroform,
            Dispersant::MineralOil,
            Dispersant::SolGel,
            Dispersant::Water,
        ] {
            let q = d.film_quality();
            assert!(q > 0.0 && q <= 1.0);
        }
    }

    #[test]
    fn only_nafion_blocks_anions() {
        assert!(Dispersant::Nafion.rejects_anionic_interferents());
        assert!(!Dispersant::Chloroform.rejects_anionic_interferents());
    }
}

//! Electrode geometries and the paper's stock devices.

use bios_units::SquareCm;

use crate::material::ElectrodeMaterial;

/// The role an electrode plays in a three-electrode cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectrodeRole {
    /// Where the sensing chemistry happens and the current is measured.
    Working,
    /// Closes the current loop.
    Counter,
    /// Potential reference; passes (ideally) no current.
    Reference,
}

/// A physical electrode: material + geometric area + role.
///
/// # Examples
///
/// ```
/// use bios_nanomaterial::{Electrode, ElectrodeMaterial, ElectrodeRole};
/// use bios_units::SquareCm;
///
/// let we = Electrode::new(
///     ElectrodeMaterial::Gold,
///     SquareCm::from_square_mm(0.25),
///     ElectrodeRole::Working,
/// );
/// assert_eq!(we.area().as_square_mm(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Electrode {
    material: ElectrodeMaterial,
    area: SquareCm,
    role: ElectrodeRole,
}

impl Electrode {
    /// Creates an electrode.
    ///
    /// # Panics
    ///
    /// Panics if the area is not positive.
    #[must_use]
    pub fn new(material: ElectrodeMaterial, area: SquareCm, role: ElectrodeRole) -> Electrode {
        assert!(area.as_square_cm() > 0.0, "electrode area must be positive");
        Electrode {
            material,
            area,
            role,
        }
    }

    /// Bulk material.
    #[must_use]
    pub fn material(&self) -> ElectrodeMaterial {
        self.material
    }

    /// Geometric area.
    #[must_use]
    pub fn area(&self) -> SquareCm {
        self.area
    }

    /// Cell role.
    #[must_use]
    pub fn role(&self) -> ElectrodeRole {
        self.role
    }
}

/// The stock electrode systems used in the paper (§3.1) and the cited
/// literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectrodeStock {
    /// DropSens carbon-paste screen-printed electrode: 13 mm² graphite
    /// working electrode, graphite counter, Ag reference. Used for the
    /// paper's CYP450 drug sensors.
    DropSensSpe,
    /// EPFL microfabricated chip: five 0.25 mm² Au working electrodes,
    /// Au counter, Pt reference. Used for the paper's oxidase sensors.
    EpflMicroChip,
    /// A conventional 3 mm-diameter glassy-carbon disc (≈ 7.1 mm²) — the
    /// default electrode of the cited literature sensors.
    GlassyCarbonDisc,
    /// Platinum disc microelectrode (1 mm diameter ≈ 0.79 mm²), used by
    /// the glutamate literature baselines.
    PlatinumDisc,
}

impl ElectrodeStock {
    /// The working electrode of this stock system.
    #[must_use]
    pub fn working_electrode(&self) -> Electrode {
        match self {
            ElectrodeStock::DropSensSpe => Electrode::new(
                ElectrodeMaterial::Graphite,
                SquareCm::from_square_mm(13.0),
                ElectrodeRole::Working,
            ),
            ElectrodeStock::EpflMicroChip => Electrode::new(
                ElectrodeMaterial::Gold,
                SquareCm::from_square_mm(0.25),
                ElectrodeRole::Working,
            ),
            ElectrodeStock::GlassyCarbonDisc => Electrode::new(
                ElectrodeMaterial::GlassyCarbon,
                SquareCm::from_square_mm(7.07),
                ElectrodeRole::Working,
            ),
            ElectrodeStock::PlatinumDisc => Electrode::new(
                ElectrodeMaterial::Platinum,
                SquareCm::from_square_mm(0.785),
                ElectrodeRole::Working,
            ),
        }
    }

    /// The counter electrode.
    #[must_use]
    pub fn counter_electrode(&self) -> Electrode {
        let (material, area_mm2) = match self {
            ElectrodeStock::DropSensSpe => (ElectrodeMaterial::Graphite, 30.0),
            ElectrodeStock::EpflMicroChip => (ElectrodeMaterial::Gold, 2.0),
            ElectrodeStock::GlassyCarbonDisc | ElectrodeStock::PlatinumDisc => {
                (ElectrodeMaterial::Platinum, 50.0)
            }
        };
        Electrode::new(
            material,
            SquareCm::from_square_mm(area_mm2),
            ElectrodeRole::Counter,
        )
    }

    /// The reference electrode.
    #[must_use]
    pub fn reference_electrode(&self) -> Electrode {
        let material = match self {
            ElectrodeStock::DropSensSpe => ElectrodeMaterial::SilverChloride,
            ElectrodeStock::EpflMicroChip => ElectrodeMaterial::Platinum,
            ElectrodeStock::GlassyCarbonDisc | ElectrodeStock::PlatinumDisc => {
                ElectrodeMaterial::SilverChloride
            }
        };
        Electrode::new(
            material,
            SquareCm::from_square_mm(5.0),
            ElectrodeRole::Reference,
        )
    }

    /// Number of independently addressable working electrodes (the EPFL
    /// chip is a 5-channel array — the basis of the multi-target
    /// platform).
    #[must_use]
    pub fn working_channels(&self) -> usize {
        match self {
            ElectrodeStock::EpflMicroChip => 5,
            _ => 1,
        }
    }

    /// Whether the device is disposable (vs permanently integrated) —
    /// the §2.5 axis of the classification.
    #[must_use]
    pub fn is_disposable(&self) -> bool {
        matches!(self, ElectrodeStock::DropSensSpe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_areas_are_exact() {
        let spe = ElectrodeStock::DropSensSpe.working_electrode();
        assert!((spe.area().as_square_mm() - 13.0).abs() < 1e-12);
        let chip = ElectrodeStock::EpflMicroChip.working_electrode();
        assert!((chip.area().as_square_mm() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_materials_are_exact() {
        assert_eq!(
            ElectrodeStock::DropSensSpe.working_electrode().material(),
            ElectrodeMaterial::Graphite
        );
        assert_eq!(
            ElectrodeStock::DropSensSpe.reference_electrode().material(),
            ElectrodeMaterial::SilverChloride
        );
        assert_eq!(
            ElectrodeStock::EpflMicroChip.working_electrode().material(),
            ElectrodeMaterial::Gold
        );
        assert_eq!(
            ElectrodeStock::EpflMicroChip
                .reference_electrode()
                .material(),
            ElectrodeMaterial::Platinum
        );
    }

    #[test]
    fn chip_has_five_channels() {
        assert_eq!(ElectrodeStock::EpflMicroChip.working_channels(), 5);
        assert_eq!(ElectrodeStock::DropSensSpe.working_channels(), 1);
    }

    #[test]
    fn roles_are_assigned() {
        let s = ElectrodeStock::GlassyCarbonDisc;
        assert_eq!(s.working_electrode().role(), ElectrodeRole::Working);
        assert_eq!(s.counter_electrode().role(), ElectrodeRole::Counter);
        assert_eq!(s.reference_electrode().role(), ElectrodeRole::Reference);
    }

    #[test]
    fn counter_is_larger_than_working_for_spe() {
        let s = ElectrodeStock::DropSensSpe;
        assert!(s.counter_electrode().area() > s.working_electrode().area());
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn zero_area_rejected() {
        let _ = Electrode::new(
            ElectrodeMaterial::Gold,
            SquareCm::from_square_cm(0.0),
            ElectrodeRole::Working,
        );
    }
}

//! # bios-nanomaterial
//!
//! Electrode substrates and nanomaterial surface modifications — the
//! "chemical component" of the paper's modular platform (§3).
//!
//! * [`material`] — bulk electrode materials (graphite, Au, Pt, glassy
//!   carbon, carbon paste) and their electrocatalytic baselines.
//! * [`geometry`] — electrode geometries, including the paper's two stock
//!   devices: the DropSens screen-printed electrode (13 mm² working
//!   electrode) and the EPFL microfabricated chip (five 0.25 mm² Au
//!   working electrodes).
//! * [`dispersion`] — how MWCNT are suspended before casting (Nafion,
//!   chloroform, mineral oil, sol-gel), which controls film quality.
//! * [`modification`] — the surface-modification catalog: every
//!   nanomaterial recipe appearing in the paper's Table 2, each described
//!   by area enhancement, electron-transfer enhancement, enzyme hosting
//!   capacity, and product-collection efficiency.
//!
//! # Examples
//!
//! ```
//! use bios_nanomaterial::modification::SurfaceModification;
//!
//! let cnt = SurfaceModification::mwcnt_nafion();
//! let bare = SurfaceModification::bare();
//! // The whole point of the paper: CNT modification accelerates
//! // electron transfer and hosts far more enzyme.
//! assert!(cnt.electron_transfer_gain() > bare.electron_transfer_gain());
//! assert!(cnt.enzyme_capacity_gain() > bare.enzyme_capacity_gain());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dispersion;
pub mod geometry;
pub mod material;
pub mod modification;

pub use dispersion::Dispersant;
pub use geometry::{Electrode, ElectrodeRole, ElectrodeStock};
pub use material::ElectrodeMaterial;
pub use modification::SurfaceModification;

//! Bulk electrode materials.

/// The conductor an electrode is made of.
///
/// Each material carries an intrinsic electrocatalytic activity toward
/// H₂O₂ oxidation (the oxidase-sensor detection reaction) and a specific
/// double-layer capacitance. The paper notes (§3.2.2) that carbon
/// electrodes outperform metallic ones for H₂O₂ — encoded here in
/// [`ElectrodeMaterial::peroxide_activity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectrodeMaterial {
    /// Screen-printed graphite (DropSens SPE working/counter electrodes).
    Graphite,
    /// Evaporated/microfabricated gold (the EPFL chip).
    Gold,
    /// Platinum (reference on the chip; classic H₂O₂ anode).
    Platinum,
    /// Glassy carbon (the workhorse of the cited literature sensors).
    GlassyCarbon,
    /// Carbon paste (CNT/mineral-oil composite electrodes, \[41\]).
    CarbonPaste,
    /// Silver / silver-chloride (reference electrode of the SPE).
    SilverChloride,
}

impl ElectrodeMaterial {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ElectrodeMaterial::Graphite => "graphite",
            ElectrodeMaterial::Gold => "Au",
            ElectrodeMaterial::Platinum => "Pt",
            ElectrodeMaterial::GlassyCarbon => "glassy carbon",
            ElectrodeMaterial::CarbonPaste => "carbon paste",
            ElectrodeMaterial::SilverChloride => "Ag/AgCl",
        }
    }

    /// Relative electrocatalytic activity toward H₂O₂ oxidation
    /// (platinum ≡ 1.0).
    #[must_use]
    pub fn peroxide_activity(&self) -> f64 {
        match self {
            ElectrodeMaterial::Platinum => 1.0,
            ElectrodeMaterial::GlassyCarbon => 0.85,
            ElectrodeMaterial::Graphite => 0.8,
            ElectrodeMaterial::CarbonPaste => 0.6,
            ElectrodeMaterial::Gold => 0.5,
            ElectrodeMaterial::SilverChloride => 0.1,
        }
    }

    /// Specific double-layer capacitance of the clean surface, F/cm².
    #[must_use]
    pub fn specific_capacitance(&self) -> f64 {
        match self {
            ElectrodeMaterial::Graphite => 25e-6,
            ElectrodeMaterial::Gold => 20e-6,
            ElectrodeMaterial::Platinum => 22e-6,
            ElectrodeMaterial::GlassyCarbon => 24e-6,
            ElectrodeMaterial::CarbonPaste => 30e-6,
            ElectrodeMaterial::SilverChloride => 40e-6,
        }
    }

    /// Whether this material is suitable as a reference electrode.
    #[must_use]
    pub fn is_reference_grade(&self) -> bool {
        matches!(
            self,
            ElectrodeMaterial::SilverChloride | ElectrodeMaterial::Platinum
        )
    }

    /// Whether the material is a carbon allotrope (the paper's §3.2.2
    /// observation: carbon beats metals for H₂O₂ detection).
    #[must_use]
    pub fn is_carbon(&self) -> bool {
        matches!(
            self,
            ElectrodeMaterial::Graphite
                | ElectrodeMaterial::GlassyCarbon
                | ElectrodeMaterial::CarbonPaste
        )
    }
}

impl std::fmt::Display for ElectrodeMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_beats_gold_for_peroxide() {
        // §3.2.2: "carbon electrode has better performance than metallic
        // electrodes for the detection of H2O2".
        assert!(
            ElectrodeMaterial::Graphite.peroxide_activity()
                > ElectrodeMaterial::Gold.peroxide_activity()
        );
        assert!(
            ElectrodeMaterial::GlassyCarbon.peroxide_activity()
                > ElectrodeMaterial::Gold.peroxide_activity()
        );
    }

    #[test]
    fn reference_grades() {
        assert!(ElectrodeMaterial::SilverChloride.is_reference_grade());
        assert!(ElectrodeMaterial::Platinum.is_reference_grade());
        assert!(!ElectrodeMaterial::Graphite.is_reference_grade());
    }

    #[test]
    fn carbon_classification() {
        assert!(ElectrodeMaterial::Graphite.is_carbon());
        assert!(ElectrodeMaterial::CarbonPaste.is_carbon());
        assert!(!ElectrodeMaterial::Gold.is_carbon());
    }

    #[test]
    fn capacitances_in_physical_band() {
        for m in [
            ElectrodeMaterial::Graphite,
            ElectrodeMaterial::Gold,
            ElectrodeMaterial::Platinum,
            ElectrodeMaterial::GlassyCarbon,
            ElectrodeMaterial::CarbonPaste,
            ElectrodeMaterial::SilverChloride,
        ] {
            let c = m.specific_capacitance();
            assert!((10e-6..=50e-6).contains(&c), "{m}: {c}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ElectrodeMaterial::Gold.to_string(), "Au");
        assert_eq!(ElectrodeMaterial::SilverChloride.to_string(), "Ag/AgCl");
    }
}

//! The surface-modification catalog.
//!
//! Every sensor row in the paper's Table 2 differs in how the electrode
//! surface was nanostructured before the enzyme went on. A modification
//! is summarized by four engineering gains relative to the bare surface:
//!
//! * **roughness** — real/geometric area ratio (drives capacitance and
//!   hosting sites);
//! * **electron-transfer gain** — multiplier on the redox couple's `k⁰`
//!   (the ballistic-conduction benefit of §2.4);
//! * **enzyme-capacity gain** — how much more protein the 3-D film hosts
//!   than a flat monolayer;
//! * **collection efficiency** — the fraction of enzyme-generated product
//!   that is captured electrochemically before escaping to bulk.

use crate::dispersion::Dispersant;

use bios_electrochem::RedoxCouple;
use bios_units::Centimeters;

/// Nominal MWCNT dimensions used in the paper (§3.1): 10 nm diameter,
/// 1–2 µm length (DropSens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CntDimensions {
    /// Tube outer diameter.
    pub diameter: Centimeters,
    /// Tube length.
    pub length: Centimeters,
}

impl Default for CntDimensions {
    fn default() -> CntDimensions {
        CntDimensions {
            diameter: Centimeters::from_nano_meters(10.0),
            length: Centimeters::from_micro_meters(1.5),
        }
    }
}

/// A named electrode surface modification with its engineering gains.
///
/// Constructors cover every recipe in the paper's Table 2; custom
/// recipes can be assembled with [`SurfaceModification::custom`].
///
/// # Examples
///
/// ```
/// use bios_nanomaterial::SurfaceModification;
///
/// let ours = SurfaceModification::mwcnt_nafion();
/// assert!(ours.collection_efficiency() > 0.5);
/// assert_eq!(ours.name(), "MWCNT/Nafion");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceModification {
    name: String,
    dispersant: Option<Dispersant>,
    roughness: f64,
    electron_transfer_gain: f64,
    enzyme_capacity_gain: f64,
    collection_efficiency: f64,
    cnt: Option<CntDimensions>,
}

impl SurfaceModification {
    /// An unmodified electrode surface.
    #[must_use]
    pub fn bare() -> SurfaceModification {
        SurfaceModification {
            name: "bare".to_owned(),
            dispersant: None,
            roughness: 1.0,
            electron_transfer_gain: 1.0,
            enzyme_capacity_gain: 1.0,
            collection_efficiency: 0.2,
            cnt: None,
        }
    }

    /// The paper's oxidase recipe: MWCNT drop-cast from 0.5 % Nafion.
    /// Best dispersion → highest wired fraction and collection.
    #[must_use]
    pub fn mwcnt_nafion() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT/Nafion".to_owned(),
            dispersant: Some(Dispersant::Nafion),
            roughness: 120.0,
            electron_transfer_gain: 60.0,
            enzyme_capacity_gain: 40.0,
            collection_efficiency: 0.85,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// The paper's CYP450 recipe: MWCNT drop-cast from chloroform onto
    /// carbon-paste SPE.
    #[must_use]
    pub fn mwcnt_chloroform() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT (chloroform)".to_owned(),
            dispersant: Some(Dispersant::Chloroform),
            roughness: 100.0,
            electron_transfer_gain: 45.0,
            enzyme_capacity_gain: 35.0,
            collection_efficiency: 0.8,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Wang et al. \[55\]: Au film evaporated onto grown MWCNT, GOD drop
    /// cast on top.
    #[must_use]
    pub fn mwcnt_au_film() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT + Au film".to_owned(),
            dispersant: None,
            roughness: 80.0,
            electron_transfer_gain: 30.0,
            enzyme_capacity_gain: 20.0,
            collection_efficiency: 0.55,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Tsai et al. \[49\]: CNT + GOD co-cast in Nafion on glassy carbon.
    #[must_use]
    pub fn mwcnt_nafion_codeposit() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT/Nafion co-cast".to_owned(),
            dispersant: Some(Dispersant::Nafion),
            roughness: 60.0,
            electron_transfer_gain: 20.0,
            enzyme_capacity_gain: 15.0,
            collection_efficiency: 0.4,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Ryu et al. \[42\]: free-standing CNT mat with covalently bound GOD.
    #[must_use]
    pub fn cnt_mat() -> SurfaceModification {
        SurfaceModification {
            name: "CNT mat".to_owned(),
            dispersant: None,
            roughness: 70.0,
            electron_transfer_gain: 18.0,
            enzyme_capacity_gain: 12.0,
            collection_efficiency: 0.35,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Hua et al. \[18\]: butyric-acid functionalized MWCNT.
    #[must_use]
    pub fn mwcnt_butyric_acid() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT-BA".to_owned(),
            dispersant: Some(Dispersant::Water),
            roughness: 90.0,
            electron_transfer_gain: 35.0,
            enzyme_capacity_gain: 25.0,
            collection_efficiency: 0.6,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Goran et al. \[16\]: nitrogen-doped CNT with Nafion overlayer —
    /// N-doping makes carbon exceptionally active for H₂O₂.
    #[must_use]
    pub fn n_doped_cnt_nafion() -> SurfaceModification {
        SurfaceModification {
            name: "N-doped CNT/Nafion".to_owned(),
            dispersant: Some(Dispersant::Nafion),
            roughness: 110.0,
            electron_transfer_gain: 80.0,
            enzyme_capacity_gain: 30.0,
            collection_efficiency: 0.9,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Rubianes & Rivas \[41\]: CNT kneaded into mineral-oil paste.
    #[must_use]
    pub fn cnt_paste() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT/mineral oil paste".to_owned(),
            dispersant: Some(Dispersant::MineralOil),
            roughness: 20.0,
            electron_transfer_gain: 3.0,
            enzyme_capacity_gain: 5.0,
            collection_efficiency: 0.15,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Yang et al. \[57\]: titanate (not carbon) nanotubes — shows the
    /// material itself matters, not just the nanoscale shape (§3.2.2).
    #[must_use]
    pub fn titanate_nanotube() -> SurfaceModification {
        SurfaceModification {
            name: "Titanate NT".to_owned(),
            dispersant: Some(Dispersant::Water),
            roughness: 50.0,
            electron_transfer_gain: 2.0,
            enzyme_capacity_gain: 8.0,
            collection_efficiency: 0.2,
            cnt: None,
        }
    }

    /// Huang et al. \[19\]: MWCNT embedded in a silica sol-gel film.
    #[must_use]
    pub fn mwcnt_sol_gel() -> SurfaceModification {
        SurfaceModification {
            name: "MWCNT + sol-gel".to_owned(),
            dispersant: Some(Dispersant::SolGel),
            roughness: 40.0,
            electron_transfer_gain: 10.0,
            enzyme_capacity_gain: 10.0,
            collection_efficiency: 0.3,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Pan & Arnold \[33\]: plain Nafion film on Pt (no nanomaterial).
    #[must_use]
    pub fn nafion_film() -> SurfaceModification {
        SurfaceModification {
            name: "Nafion film".to_owned(),
            dispersant: Some(Dispersant::Nafion),
            roughness: 2.0,
            electron_transfer_gain: 1.0,
            enzyme_capacity_gain: 3.0,
            collection_efficiency: 0.5,
            cnt: None,
        }
    }

    /// Zhang et al. \[59\]: chitosan entrapment film.
    #[must_use]
    pub fn chitosan_film() -> SurfaceModification {
        SurfaceModification {
            name: "Chitosan film".to_owned(),
            dispersant: None,
            roughness: 3.0,
            electron_transfer_gain: 1.5,
            enzyme_capacity_gain: 6.0,
            collection_efficiency: 0.6,
            cnt: None,
        }
    }

    /// Ammam & Fransaer \[1\]: polyurethane/MWCNT with GlOD in
    /// polypyrrole on Pt — the record-sensitivity glutamate electrode.
    #[must_use]
    pub fn pu_mwcnt_polypyrrole() -> SurfaceModification {
        SurfaceModification {
            name: "PU/MWCNT + PP".to_owned(),
            dispersant: Some(Dispersant::Water),
            roughness: 150.0,
            electron_transfer_gain: 70.0,
            enzyme_capacity_gain: 60.0,
            collection_efficiency: 0.9,
            cnt: Some(CntDimensions::default()),
        }
    }

    /// Fully custom recipe.
    ///
    /// # Panics
    ///
    /// Panics if `roughness < 1`, any gain is not positive, or the
    /// collection efficiency is outside `(0, 1]`.
    #[must_use]
    pub fn custom(
        name: &str,
        dispersant: Option<Dispersant>,
        roughness: f64,
        electron_transfer_gain: f64,
        enzyme_capacity_gain: f64,
        collection_efficiency: f64,
    ) -> SurfaceModification {
        assert!(roughness >= 1.0, "roughness factor cannot be below 1");
        assert!(electron_transfer_gain > 0.0, "ET gain must be positive");
        assert!(enzyme_capacity_gain > 0.0, "capacity gain must be positive");
        assert!(
            collection_efficiency > 0.0 && collection_efficiency <= 1.0,
            "collection efficiency must lie in (0, 1]"
        );
        SurfaceModification {
            name: name.to_owned(),
            dispersant,
            roughness,
            electron_transfer_gain,
            enzyme_capacity_gain,
            collection_efficiency,
            cnt: None,
        }
    }

    /// Display name (matches the Table 2 "Modification" column style).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dispersion medium, if a cast film.
    #[must_use]
    pub fn dispersant(&self) -> Option<Dispersant> {
        self.dispersant
    }

    /// Real/geometric area ratio.
    #[must_use]
    pub fn roughness(&self) -> f64 {
        self.roughness
    }

    /// Multiplier on the redox couple's standard rate constant.
    #[must_use]
    pub fn electron_transfer_gain(&self) -> f64 {
        self.electron_transfer_gain
    }

    /// Multiplier on monolayer enzyme loading.
    #[must_use]
    pub fn enzyme_capacity_gain(&self) -> f64 {
        self.enzyme_capacity_gain
    }

    /// Fraction of enzyme product captured by the electrode.
    #[must_use]
    pub fn collection_efficiency(&self) -> f64 {
        self.collection_efficiency
    }

    /// CNT dimensions if the film is nanotube-based.
    #[must_use]
    pub fn cnt_dimensions(&self) -> Option<CntDimensions> {
        self.cnt
    }

    /// Whether any nanomaterial is present (vs a plain polymer film).
    #[must_use]
    pub fn is_nanostructured(&self) -> bool {
        self.roughness > 10.0
    }

    /// Applies the modification to a redox couple, returning the couple
    /// as seen on the modified surface (accelerated `k⁰`, weighted by the
    /// dispersant's film quality).
    #[must_use]
    pub fn modify_couple(&self, couple: &RedoxCouple) -> RedoxCouple {
        let quality = self.dispersant.map_or(1.0, |d| d.film_quality());
        couple.with_rate_enhanced(1.0 + (self.electron_transfer_gain - 1.0) * quality)
    }
}

impl std::fmt::Display for SurfaceModification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modifications() -> Vec<SurfaceModification> {
        vec![
            SurfaceModification::bare(),
            SurfaceModification::mwcnt_nafion(),
            SurfaceModification::mwcnt_chloroform(),
            SurfaceModification::mwcnt_au_film(),
            SurfaceModification::mwcnt_nafion_codeposit(),
            SurfaceModification::cnt_mat(),
            SurfaceModification::mwcnt_butyric_acid(),
            SurfaceModification::n_doped_cnt_nafion(),
            SurfaceModification::cnt_paste(),
            SurfaceModification::titanate_nanotube(),
            SurfaceModification::mwcnt_sol_gel(),
            SurfaceModification::nafion_film(),
            SurfaceModification::chitosan_film(),
            SurfaceModification::pu_mwcnt_polypyrrole(),
        ]
    }

    #[test]
    fn all_gains_are_physical() {
        for m in all_modifications() {
            assert!(m.roughness() >= 1.0, "{m}");
            assert!(m.electron_transfer_gain() >= 1.0, "{m}");
            assert!(m.enzyme_capacity_gain() >= 1.0, "{m}");
            let ce = m.collection_efficiency();
            assert!(ce > 0.0 && ce <= 1.0, "{m}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mods = all_modifications();
        for (i, a) in mods.iter().enumerate() {
            for b in mods.iter().skip(i + 1) {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn paper_recipe_beats_literature_glucose_recipes() {
        // The comparative claim of §3.2.1 in engineering-gain terms.
        let ours = SurfaceModification::mwcnt_nafion();
        for other in [
            SurfaceModification::mwcnt_au_film(),
            SurfaceModification::mwcnt_nafion_codeposit(),
            SurfaceModification::cnt_mat(),
            SurfaceModification::mwcnt_butyric_acid(),
        ] {
            let ours_score = ours.enzyme_capacity_gain() * ours.collection_efficiency();
            let other_score = other.enzyme_capacity_gain() * other.collection_efficiency();
            assert!(ours_score > other_score, "vs {other}");
        }
    }

    #[test]
    fn titanate_transfers_worse_than_carbon() {
        // §3.2.2: "carbon gives better performance… also for the material
        // itself".
        assert!(
            SurfaceModification::titanate_nanotube().electron_transfer_gain()
                < SurfaceModification::mwcnt_sol_gel().electron_transfer_gain()
        );
    }

    #[test]
    fn cnt_dimensions_match_datasheet() {
        let dims = SurfaceModification::mwcnt_nafion()
            .cnt_dimensions()
            .unwrap();
        assert!((dims.diameter.as_nano_meters() - 10.0).abs() < 1e-9);
        let len_um = dims.length.as_micro_meters();
        assert!((1.0..=2.0).contains(&len_um));
    }

    #[test]
    fn modify_couple_accelerates_k0() {
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let on_cnt = SurfaceModification::mwcnt_nafion().modify_couple(&base);
        assert!(on_cnt.rate_constant() > 30.0 * base.rate_constant());
    }

    #[test]
    fn bare_surface_is_identity_on_couples() {
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let same = SurfaceModification::bare().modify_couple(&base);
        assert!((same.rate_constant() - base.rate_constant()).abs() < 1e-15);
    }

    #[test]
    fn nanostructure_flag() {
        assert!(SurfaceModification::mwcnt_nafion().is_nanostructured());
        assert!(!SurfaceModification::nafion_film().is_nanostructured());
        assert!(!SurfaceModification::bare().is_nanostructured());
    }

    #[test]
    #[should_panic(expected = "collection efficiency")]
    fn custom_validates_collection() {
        let _ = SurfaceModification::custom("bad", None, 10.0, 5.0, 5.0, 1.5);
    }
}

//! Property tests for electrode and surface-modification models.
//! Sampled deterministically via `bios_prng::cases`.

use bios_electrochem::RedoxCouple;
use bios_nanomaterial::{
    Dispersant, Electrode, ElectrodeMaterial, ElectrodeRole, SurfaceModification,
};
use bios_prng::{cases, Rng};
use bios_units::SquareCm;

const MATERIALS: [ElectrodeMaterial; 6] = [
    ElectrodeMaterial::Graphite,
    ElectrodeMaterial::Gold,
    ElectrodeMaterial::Platinum,
    ElectrodeMaterial::GlassyCarbon,
    ElectrodeMaterial::CarbonPaste,
    ElectrodeMaterial::SilverChloride,
];

const DISPERSANTS: [Dispersant; 5] = [
    Dispersant::Nafion,
    Dispersant::Chloroform,
    Dispersant::MineralOil,
    Dispersant::SolGel,
    Dispersant::Water,
];

fn any_material(rng: &mut Rng) -> ElectrodeMaterial {
    MATERIALS[rng.index(MATERIALS.len())]
}

fn any_dispersant(rng: &mut Rng) -> Dispersant {
    DISPERSANTS[rng.index(DISPERSANTS.len())]
}

/// Electrodes accept any positive area, and the stored values round
/// trip exactly.
#[test]
fn electrode_round_trips() {
    cases(0x0301, 64, |rng| {
        let material = any_material(rng);
        let area_mm2 = rng.log_uniform_in(1e-3, 100.0);
        let e = Electrode::new(
            material,
            SquareCm::from_square_mm(area_mm2),
            ElectrodeRole::Working,
        );
        assert_eq!(e.material(), material);
        assert!((e.area().as_square_mm() - area_mm2).abs() <= area_mm2 * 1e-12);
    });
}

/// Material property tables stay in their physical bands for every
/// variant.
#[test]
fn material_properties_bounded() {
    for material in MATERIALS {
        let act = material.peroxide_activity();
        assert!(act > 0.0 && act <= 1.0);
        let cap = material.specific_capacitance();
        assert!((5e-6..=100e-6).contains(&cap));
    }
}

/// Custom modifications accept any valid gain combination and echo
/// it back.
#[test]
fn custom_modification_round_trips() {
    cases(0x0302, 64, |rng| {
        let roughness = rng.uniform_in(1.0, 500.0);
        let et = rng.uniform_in(0.1, 200.0);
        let cap = rng.uniform_in(0.1, 200.0);
        let coll = rng.uniform_in(0.01, 1.0);
        let dispersant = if rng.uniform() < 0.5 {
            Some(any_dispersant(rng))
        } else {
            None
        };
        let m = SurfaceModification::custom("prop", dispersant, roughness, et, cap, coll);
        assert_eq!(m.roughness(), roughness);
        assert_eq!(m.electron_transfer_gain(), et);
        assert_eq!(m.enzyme_capacity_gain(), cap);
        assert_eq!(m.collection_efficiency(), coll);
        assert_eq!(m.dispersant(), dispersant);
    });
}

/// Couple modification multiplies k⁰ by at least 1 (never slows a
/// couple down) and scales with the ET gain.
#[test]
fn couple_modification_never_decelerates() {
    cases(0x0303, 64, |rng| {
        let et = rng.uniform_in(1.0, 200.0);
        let coll = rng.uniform_in(0.01, 1.0);
        let dispersant = any_dispersant(rng);
        let m = SurfaceModification::custom("prop", Some(dispersant), 50.0, et, 10.0, coll);
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let modified = m.modify_couple(&base);
        assert!(modified.rate_constant() >= base.rate_constant() * (1.0 - 1e-12));
        // Bounded by the nominal gain.
        assert!(modified.rate_constant() <= base.rate_constant() * et * (1.0 + 1e-12));
    });
}

/// Dispersant film quality weights the realized ET enhancement:
/// better dispersion, faster couple.
#[test]
fn better_dispersion_faster_couple() {
    cases(0x0304, 64, |rng| {
        let et = rng.uniform_in(2.0, 100.0);
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let nafion =
            SurfaceModification::custom("a", Some(Dispersant::Nafion), 50.0, et, 10.0, 0.8);
        let oil =
            SurfaceModification::custom("b", Some(Dispersant::MineralOil), 50.0, et, 10.0, 0.8);
        assert!(
            nafion.modify_couple(&base).rate_constant() > oil.modify_couple(&base).rate_constant()
        );
    });
}

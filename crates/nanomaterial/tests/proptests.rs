//! Property tests for electrode and surface-modification models.

use proptest::prelude::*;

use bios_electrochem::RedoxCouple;
use bios_nanomaterial::{
    Dispersant, Electrode, ElectrodeMaterial, ElectrodeRole, SurfaceModification,
};
use bios_units::SquareCm;

fn any_material() -> impl Strategy<Value = ElectrodeMaterial> {
    prop_oneof![
        Just(ElectrodeMaterial::Graphite),
        Just(ElectrodeMaterial::Gold),
        Just(ElectrodeMaterial::Platinum),
        Just(ElectrodeMaterial::GlassyCarbon),
        Just(ElectrodeMaterial::CarbonPaste),
        Just(ElectrodeMaterial::SilverChloride),
    ]
}

fn any_dispersant() -> impl Strategy<Value = Dispersant> {
    prop_oneof![
        Just(Dispersant::Nafion),
        Just(Dispersant::Chloroform),
        Just(Dispersant::MineralOil),
        Just(Dispersant::SolGel),
        Just(Dispersant::Water),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Electrodes accept any positive area, and the stored values round
    /// trip exactly.
    #[test]
    fn electrode_round_trips(material in any_material(), area_mm2 in 1e-3f64..100.0) {
        let e = Electrode::new(
            material,
            SquareCm::from_square_mm(area_mm2),
            ElectrodeRole::Working,
        );
        prop_assert_eq!(e.material(), material);
        prop_assert!((e.area().as_square_mm() - area_mm2).abs() <= area_mm2 * 1e-12);
    }

    /// Material property tables stay in their physical bands for every
    /// variant.
    #[test]
    fn material_properties_bounded(material in any_material()) {
        let act = material.peroxide_activity();
        prop_assert!(act > 0.0 && act <= 1.0);
        let cap = material.specific_capacitance();
        prop_assert!((5e-6..=100e-6).contains(&cap));
    }

    /// Custom modifications accept any valid gain combination and echo
    /// it back.
    #[test]
    fn custom_modification_round_trips(
        roughness in 1.0f64..500.0,
        et in 0.1f64..200.0,
        cap in 0.1f64..200.0,
        coll in 0.01f64..1.0,
        dispersant in prop::option::of(any_dispersant()),
    ) {
        let m = SurfaceModification::custom("prop", dispersant, roughness, et, cap, coll);
        prop_assert_eq!(m.roughness(), roughness);
        prop_assert_eq!(m.electron_transfer_gain(), et);
        prop_assert_eq!(m.enzyme_capacity_gain(), cap);
        prop_assert_eq!(m.collection_efficiency(), coll);
        prop_assert_eq!(m.dispersant(), dispersant);
    }

    /// Couple modification multiplies k⁰ by at least 1 (never slows a
    /// couple down) and scales with the ET gain.
    #[test]
    fn couple_modification_never_decelerates(
        et in 1.0f64..200.0,
        coll in 0.01f64..1.0,
        dispersant in any_dispersant(),
    ) {
        let m = SurfaceModification::custom("prop", Some(dispersant), 50.0, et, 10.0, coll);
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let modified = m.modify_couple(&base);
        prop_assert!(modified.rate_constant() >= base.rate_constant() * (1.0 - 1e-12));
        // Bounded by the nominal gain.
        prop_assert!(modified.rate_constant() <= base.rate_constant() * et * (1.0 + 1e-12));
    }

    /// Dispersant film quality weights the realized ET enhancement:
    /// better dispersion, faster couple.
    #[test]
    fn better_dispersion_faster_couple(et in 2.0f64..100.0) {
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let nafion = SurfaceModification::custom(
            "a", Some(Dispersant::Nafion), 50.0, et, 10.0, 0.8,
        );
        let oil = SurfaceModification::custom(
            "b", Some(Dispersant::MineralOil), 50.0, et, 10.0, 0.8,
        );
        prop_assert!(
            nafion.modify_couple(&base).rate_constant()
                > oil.modify_couple(&base).rate_constant()
        );
    }
}

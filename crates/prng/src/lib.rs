//! # bios-prng
//!
//! A small, dependency-free pseudo-random number generator for the
//! simulation platform. Every stochastic element of the pipeline —
//! readout noise, surface-coverage scatter, property-test sampling —
//! must be *exactly* reproducible from a `u64` seed so that simulated
//! tables, fleet runs, and CI are deterministic on every machine. The
//! build environment is offline, so this crate replaces `rand` with the
//! two small, well-studied generators that are easy to carry in-tree:
//!
//! * [`SplitMix64`] — seed expander (Steele, Lea & Flood 2014); also
//!   used to derive independent per-job streams from a fleet seed.
//! * [`Rng`] — xoshiro256\*\* 1.0 (Blackman & Vigna 2018), the
//!   general-purpose generator, seeded via `SplitMix64`.
//!
//! # Examples
//!
//! ```
//! use bios_prng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.uniform(); // in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! let g = a.gaussian(); // standard normal
//! assert!(g.is_finite());
//! ```

#![warn(missing_docs)]

/// The splitmix64 seed expander: a tiny generator with a 64-bit state
/// whose single purpose is turning one `u64` into a stream of
/// well-mixed words for seeding larger-state generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mixes `value` into the stream and returns a derived seed —
    /// used to give every (job, seed) pair its own independent
    /// sub-stream without correlation between neighbouring seeds.
    #[must_use]
    pub fn derive(mut self, value: u64) -> u64 {
        self.state ^= value.wrapping_mul(0xA24B_AED4_963E_E407);
        self.next_u64()
    }
}

/// xoshiro256\*\* 1.0: the platform's general-purpose generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; equidistributed
/// in all output bits that the simulation consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via splitmix64, the
    /// construction the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        // Top 53 bits scaled by 2⁻⁵³ — the standard double conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform `f64` in `(0, 1]` — safe to take `ln()` of.
    pub fn uniform_open(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Log-uniform `f64` in `[lo, hi)`, for sampling scale parameters
    /// that span decades (loadings, concentrations, resistances).
    ///
    /// # Panics
    ///
    /// Panics when the bounds are not both positive and ordered.
    pub fn log_uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && lo < hi, "bad log range [{lo}, {hi})");
        (self.uniform_in(lo.ln(), hi.ln())).exp()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping is fine here: n is tiny
        // relative to 2⁶⁴, so the bias is < n/2⁶⁴ ≈ 0.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn index_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.index(hi - lo)
    }

    /// Standard normal variate via Box–Muller (matching the seed
    /// repo's noise-generator construction).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Runs `n` independently seeded cases of a deterministic property
/// check — the platform's offline replacement for a property-testing
/// framework. Case `k` always sees the same generator state for a given
/// `seed`, so failures reproduce exactly and CI is stable.
///
/// # Examples
///
/// ```
/// bios_prng::cases(0xB10_5EED, 64, |rng| {
///     let x = rng.uniform_in(0.1, 100.0);
///     assert!((x.sqrt().powi(2) - x).abs() < x * 1e-12);
/// });
/// ```
pub fn cases(seed: u64, n: usize, mut property: impl FnMut(&mut Rng)) {
    for case in 0..n {
        let mut rng = Rng::seed_from_u64(SplitMix64::new(seed).derive(case as u64));
        property(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the splitmix64.c
        // public-domain reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next_u64(), first);
        assert_eq!(again.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = rng.uniform_open();
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::seed_from_u64(99);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.uniform()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn index_covers_range_without_out_of_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn log_uniform_spans_decades() {
        let mut rng = Rng::seed_from_u64(5);
        let mut low = 0usize;
        let mut high = 0usize;
        for _ in 0..10_000 {
            let x = rng.log_uniform_in(1e-3, 1e3);
            assert!((1e-3..1e3).contains(&x));
            if x < 1e-1 {
                low += 1;
            }
            if x > 1e1 {
                high += 1;
            }
        }
        // Each two-decade tail holds a third of the mass.
        assert!(low > 2500 && high > 2500, "low {low} high {high}");
    }

    #[test]
    fn derive_decorrelates_neighbouring_seeds() {
        let a = SplitMix64::new(0).derive(1);
        let b = SplitMix64::new(0).derive(2);
        assert_ne!(a, b);
        assert_ne!(a ^ b, 3); // not a trivial xor relationship
    }
}

//! bios-quorum: N-modular redundancy for the calibration fleet —
//! redundant replica lanes, deterministic field-wise voting, silent-
//! corruption detection, and a suspect scoreboard that quarantines
//! repeat offenders.
//!
//! # Threat model
//!
//! The fault layers below this one produce failures that *announce
//! themselves*: a panicked worker, a non-finite solver output, a torn
//! journal tail. [`bios_faults::FaultKind::SilentCorruption`] models
//! the failure that does not — a finite, plausible, *wrong* value
//! produced by a flaky worker (bit-flipped register, miscompiled hot
//! loop, cosmic-ray DRAM upset). `NonFinite` quarantine is blind to it
//! by construction: the corrupted sensitivity is a perfectly ordinary
//! `f64`, just not the one the physics produced.
//!
//! The only defense that works without trusting any single executor is
//! redundancy: run the job on multiple *replica lanes*, compare the
//! observations field-wise, and let the majority commit. This crate is
//! that layer, sitting between the gateway (which decides *what* runs)
//! and the runtime (which runs it).
//!
//! # Determinism
//!
//! Lanes are logical identities (0, 1, 2, …), not physical workers.
//! Corruption realization is keyed to `(plan seed, sensor, job seed,
//! lane)` via [`bios_faults::FaultPlan::silent_corruption`], the
//! roster is a pure function of the vote history
//! ([`suspect::SuspectBoard`]), and clustering visits ballots in poll
//! order ([`vote::cluster`]) — so the entire screen is a pure function
//! of `(config, plan, job stream)` and produces byte-identical
//! verdicts at 1, 2, or 8 workers and on any shard layout.
//!
//! Honest lanes observe the committed result's actual bytes, so they
//! agree *exactly*; each corrupt lane draws an independent delta of
//! relative magnitude ≥ `1e-4` — orders of magnitude outside the
//! default 4-ulp tolerance — so corrupt lanes land in singleton
//! clusters. The majority cluster is therefore the truth whenever at
//! least two honest lanes were polled, the vote's accepted value
//! equals the value already committed, and the report digest is
//! untouched by arming the screen. Corrupt observations are ephemeral
//! ballots: they are never written to the memo cache or the journal.
//!
//! ```
//! use bios_faults::{FaultKind, FaultPlan, FaultSpec};
//! use bios_quorum::{QuorumConfig, QuorumScreen};
//!
//! let plan = FaultPlan::builder("corruption drill", 7)
//!     .spec(FaultKind::SilentCorruption, 0.35, 0.75)
//!     .build();
//! let mut screen = QuorumScreen::new(QuorumConfig::default());
//! assert!(QuorumScreen::armed(Some(&plan)));
//! assert_eq!(screen.summary().votes, 0);
//! ```

pub mod suspect;
pub mod vote;

use bios_analytics::CalibrationSummary;
use bios_faults::{FaultKind, FaultPlan};
use bios_recover::fnv1a;
use bios_runtime::{JobResult, RuntimeMetrics};

pub use suspect::SuspectBoard;
pub use vote::{Ballot, Tolerance};

/// Knobs of the redundancy layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumConfig {
    /// Replica lanes polled per covered job (count; clamped to ≥ 1).
    /// Three is the smallest count that outvotes a single corrupt lane
    /// without escalation.
    pub replicas: usize,
    /// Fraction of non-critical jobs sampled into coverage, in
    /// `[0, 1]`. Critical jobs (recalibrations) are always covered.
    pub sampling: f64,
    /// Field-agreement tolerance for the vote.
    pub tolerance: Tolerance,
    /// Lost votes before a lane is quarantined (count; clamped ≥ 1).
    pub strike_threshold: u32,
    /// Tie-breaker lanes a tied vote may escalate to before the
    /// deterministic forced decision (count).
    pub max_escalations: u32,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            replicas: 3,
            sampling: 0.25,
            tolerance: Tolerance::default(),
            strike_threshold: 3,
            max_escalations: 3,
        }
    }
}

impl QuorumConfig {
    /// Is the job `(sensor, seed)` covered by the screen? Critical
    /// jobs always are; the rest are sampled by a pure hash of the
    /// job identity against [`QuorumConfig::sampling`], so coverage is
    /// a property of the job, not of scheduling (flag).
    #[must_use]
    pub fn covers(&self, sensor: &str, seed: u64, critical: bool) -> bool {
        if critical {
            return true;
        }
        if self.sampling >= 1.0 {
            return true;
        }
        if self.sampling <= 0.0 {
            return false;
        }
        let h = fnv1a(format!("quorum {sensor} {seed:016x}").as_bytes());
        // Top 53 bits → uniform in [0, 1): the same idiom as the fault
        // realizer's occurrence gate, reproducible on any platform.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.sampling
    }
}

/// Running totals of the screen's work (all counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuorumSummary {
    /// Jobs covered by the screen (critical + sampled).
    pub covered: u64,
    /// Votes held (one per covered job with a successful outcome).
    pub votes: u64,
    /// Tie-breaker lanes polled beyond the base roster.
    pub escalations: u64,
    /// Votes that were not unanimous.
    pub disagreements: u64,
    /// Corruption deltas realized on polled lanes.
    pub injected: u64,
    /// Corrupt ballots that lost their vote (detected corruption).
    pub caught: u64,
    /// Corrupt ballots that ended in the winning cluster (escaped
    /// detection; possible only with `replicas == 1` or a forced
    /// decision after exhausted escalation).
    pub escaped: u64,
    /// Honest ballots that lost a vote (false suspicion; same residual
    /// cases as `escaped`).
    pub false_suspects: u64,
    /// Lanes quarantined by the suspect scoreboard.
    pub quarantined: u64,
}

impl QuorumSummary {
    /// Folds another summary into this one (element-wise sum).
    pub fn merge(&mut self, other: &QuorumSummary) {
        self.covered += other.covered;
        self.votes += other.votes;
        self.escalations += other.escalations;
        self.disagreements += other.disagreements;
        self.injected += other.injected;
        self.caught += other.caught;
        self.escaped += other.escaped;
        self.false_suspects += other.false_suspects;
        self.quarantined += other.quarantined;
    }

    /// Fraction of realized corruptions that lost their vote, in
    /// `[0, 1]`; `1.0` when nothing was injected.
    #[must_use]
    pub fn catch_rate(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.caught as f64 / self.injected as f64
        }
    }
}

/// The outcome of screening one covered job.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenVerdict {
    /// Replica lanes polled, in poll order (identifiers).
    pub lanes: Vec<u64>,
    /// Tie-breaker lanes added beyond the base roster (count).
    pub escalations: u32,
    /// Whether any lane disagreed with the winning cluster (flag).
    pub disagreement: bool,
    /// Lanes whose ballots lost the vote (identifiers).
    pub losers: Vec<u64>,
    /// Corruption deltas realized across polled lanes (count).
    pub injected: u32,
    /// Corrupt ballots among the losers (count).
    pub caught: u32,
    /// Corrupt ballots inside the winning cluster (count).
    pub escaped: u32,
    /// Lanes newly quarantined by this vote's strikes (identifiers).
    pub quarantined: Vec<u64>,
    /// Whether the winning cluster's observation agrees with the
    /// committed value under the configured tolerance — the vote
    /// *accepting* the commit. False only in the residual escape cases
    /// counted by [`QuorumSummary::escaped`] (flag).
    pub accepted: bool,
}

/// The redundancy screen: polls replica lanes for covered jobs, votes,
/// strikes losers, and accumulates a [`QuorumSummary`].
///
/// The screen validates an already-committed result — the runtime's
/// value is the ballot honest lanes observe — so the committed bytes,
/// and with them every digest, are independent of whether the screen
/// is armed. What arming changes is *observability*: disagreements,
/// catches, and quarantines are metered and surfaced.
#[derive(Debug, Clone)]
pub struct QuorumScreen {
    config: QuorumConfig,
    board: SuspectBoard,
    summary: QuorumSummary,
}

impl QuorumScreen {
    /// A fresh screen with an empty scoreboard.
    #[must_use]
    pub fn new(config: QuorumConfig) -> QuorumScreen {
        let board = SuspectBoard::new(config.strike_threshold);
        QuorumScreen {
            config,
            board,
            summary: QuorumSummary::default(),
        }
    }

    /// Does `plan` arm silent corruption (a `SilentCorruption` spec
    /// with non-zero probability)? Screens are useful unarmed — they
    /// still vote and would catch a *real* flaky host — but benches
    /// and gates use this to pick the drill mode (flag).
    #[must_use]
    pub fn armed(plan: Option<&FaultPlan>) -> bool {
        plan.is_some_and(|p| {
            p.specs()
                .iter()
                .any(|s| s.kind == FaultKind::SilentCorruption && s.probability > 0.0)
        })
    }

    /// The screen's configuration.
    #[must_use]
    pub fn config(&self) -> &QuorumConfig {
        &self.config
    }

    /// The suspect scoreboard (strikes and quarantined lanes).
    #[must_use]
    pub fn board(&self) -> &SuspectBoard {
        &self.board
    }

    /// Accumulated totals.
    #[must_use]
    pub fn summary(&self) -> QuorumSummary {
        self.summary
    }

    /// Screens one committed result. Convenience over
    /// [`QuorumScreen::screen`]: errors carry no comparable fields, so
    /// only successful outcomes are voted on.
    pub fn screen_result(
        &mut self,
        plan: Option<&FaultPlan>,
        result: &JobResult,
        critical: bool,
    ) -> Option<ScreenVerdict> {
        let outcome = result.outcome.as_ref().ok()?;
        self.screen(
            plan,
            &result.sensor,
            result.seed,
            &outcome.summary,
            critical,
        )
    }

    /// Screens one committed `(sensor, seed, summary)` job: polls the
    /// replica roster, votes, escalates ties, strikes losers. Returns
    /// `None` when the job is not covered.
    pub fn screen(
        &mut self,
        plan: Option<&FaultPlan>,
        sensor: &str,
        seed: u64,
        summary: &CalibrationSummary,
        critical: bool,
    ) -> Option<ScreenVerdict> {
        if !self.config.covers(sensor, seed, critical) {
            return None;
        }
        self.summary.covered += 1;
        let truth = vote::summary_fields(summary);
        let poll = |lane: u64| -> Ballot {
            let delta = plan.and_then(|p| p.silent_corruption(sensor, seed, lane));
            Ballot {
                lane,
                fields: vote::observe(&truth, delta.as_ref()),
                corrupted: delta.is_some(),
            }
        };

        let mut lanes = self.board.roster(self.config.replicas.max(1));
        let mut ballots: Vec<Ballot> = lanes.iter().map(|&lane| poll(lane)).collect();
        self.summary.votes += 1;

        let mut escalations = 0u32;
        let (clusters, winner) = loop {
            let clusters = vote::cluster(&ballots, &self.config.tolerance);
            if let Some(winner) = vote::decide(&clusters, false) {
                break (clusters, winner);
            }
            if escalations >= self.config.max_escalations {
                // Deterministic last resort: among tied clusters take
                // the one polled first. Any mistake this makes is
                // counted (`escaped` / `false_suspects`), not hidden.
                let clusters = vote::cluster(&ballots, &self.config.tolerance);
                let winner = vote::decide(&clusters, true).unwrap_or(0);
                break (clusters, winner);
            }
            escalations += 1;
            self.summary.escalations += 1;
            let extra = self.board.tie_breaker(&lanes);
            lanes.push(extra);
            ballots.push(poll(extra));
        };

        let winning: Vec<usize> = clusters.get(winner).cloned().unwrap_or_default();
        let mut verdict = ScreenVerdict {
            lanes,
            escalations,
            disagreement: clusters.len() > 1,
            losers: Vec::new(),
            injected: 0,
            caught: 0,
            escaped: 0,
            quarantined: Vec::new(),
            accepted: winning
                .first()
                .and_then(|&idx| ballots.get(idx))
                .is_some_and(|b| self.config.tolerance.agrees_all(&b.fields, &truth)),
        };
        for (idx, ballot) in ballots.iter().enumerate() {
            if ballot.corrupted {
                verdict.injected += 1;
            }
            if winning.contains(&idx) {
                if ballot.corrupted {
                    verdict.escaped += 1;
                }
                continue;
            }
            verdict.losers.push(ballot.lane);
            if ballot.corrupted {
                verdict.caught += 1;
            } else {
                self.summary.false_suspects += 1;
            }
            if self.board.strike(ballot.lane) {
                verdict.quarantined.push(ballot.lane);
            }
        }

        if verdict.disagreement {
            self.summary.disagreements += 1;
        }
        self.summary.injected += u64::from(verdict.injected);
        self.summary.caught += u64::from(verdict.caught);
        self.summary.escaped += u64::from(verdict.escaped);
        self.summary.quarantined += verdict.quarantined.len() as u64;
        Some(verdict)
    }
}

/// Folds one verdict into the runtime's metrics registry — the same
/// counters `RuntimeMetrics::to_json` exports for scrapes.
pub fn meter(verdict: &ScreenVerdict, metrics: &RuntimeMetrics) {
    metrics.record_quorum_vote();
    if verdict.disagreement {
        metrics.record_disagreement();
    }
    metrics.record_corruption_caught(u64::from(verdict.caught));
    for _ in &verdict.quarantined {
        metrics.record_suspect_quarantined();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_faults::FaultSpec;
    use bios_units::{ConcentrationRange, Molar, Sensitivity};

    fn summary() -> CalibrationSummary {
        CalibrationSummary {
            sensitivity: Sensitivity::new(42.5),
            linear_range: ConcentrationRange::new(
                Molar::from_molar(1.0e-6),
                Molar::from_molar(2.0e-3),
            )
            .unwrap(),
            detection_limit: Molar::from_molar(3.0e-7),
            r_squared: 0.9991,
        }
    }

    fn corruption_plan(seed: u64, probability: f64) -> FaultPlan {
        FaultPlan::builder("corruption drill", seed)
            .spec(FaultKind::SilentCorruption, probability, 0.75)
            .build()
    }

    #[test]
    fn sampling_is_a_pure_job_property() {
        let config = QuorumConfig {
            sampling: 0.25,
            ..QuorumConfig::default()
        };
        let mut covered = 0u32;
        for seed in 0..400u64 {
            let a = config.covers("glucose/gox", seed, false);
            assert_eq!(a, config.covers("glucose/gox", seed, false));
            covered += u32::from(a);
        }
        // Rough quarter, by hash not by scheduling.
        assert!((50..200).contains(&covered), "covered {covered} of 400");
        // Critical jobs are always covered.
        assert!(config.covers("glucose/gox", 9999, true));
        let off = QuorumConfig {
            sampling: 0.0,
            ..config
        };
        assert!(!off.covers("glucose/gox", 1, false));
        assert!(off.covers("glucose/gox", 1, true));
    }

    #[test]
    fn unarmed_screen_is_unanimous_and_accepts() {
        let mut screen = QuorumScreen::new(QuorumConfig::default());
        let s = summary();
        let verdict = screen
            .screen(None, "glucose/gox", 7, &s, true)
            .expect("critical jobs are covered");
        assert_eq!(verdict.lanes, vec![0, 1, 2]);
        assert!(!verdict.disagreement);
        assert!(verdict.losers.is_empty());
        assert!(verdict.accepted);
        assert_eq!(screen.summary().votes, 1);
        assert_eq!(screen.summary().disagreements, 0);
    }

    #[test]
    fn armed_screen_catches_every_injection_and_accepts_truth() {
        let plan = corruption_plan(0xC0FFEE, 0.5);
        let mut screen = QuorumScreen::new(QuorumConfig::default());
        let s = summary();
        for seed in 0..600u64 {
            if let Some(v) = screen.screen(Some(&plan), "glucose/gox", seed, &s, true) {
                assert!(v.accepted, "seed {seed}: vote must accept the commit");
                assert_eq!(v.escaped, 0, "seed {seed}: no corruption may escape");
            }
        }
        let total = screen.summary();
        assert!(total.injected > 0, "drill never fired");
        assert_eq!(total.caught, total.injected, "catch rate must be 100%");
        assert_eq!(total.escaped, 0);
        assert_eq!(total.false_suspects, 0);
        assert!(total.disagreements > 0);
        assert!((total.catch_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn repeat_offender_is_quarantined_and_never_polled_again() {
        let plan = corruption_plan(0xBAD5EED, 0.9);
        let mut screen = QuorumScreen::new(QuorumConfig::default());
        let s = summary();
        let mut banned: Vec<u64> = Vec::new();
        let mut served_after_ban = false;
        for seed in 0..800u64 {
            if let Some(v) = screen.screen(Some(&plan), "lactate/lox", seed, &s, true) {
                for lane in &v.lanes {
                    if banned.contains(lane) {
                        served_after_ban = true;
                    }
                }
                banned.extend(v.quarantined.iter().copied());
            }
        }
        assert!(
            !banned.is_empty(),
            "a 90%-probability corrupter must be quarantined"
        );
        assert!(
            !served_after_ban,
            "a quarantined lane must never serve another voted job"
        );
        assert_eq!(screen.summary().quarantined, banned.len() as u64);
        for lane in banned {
            assert!(screen.board().is_quarantined(lane));
        }
    }

    #[test]
    fn screen_is_deterministic_in_inputs() {
        let plan = corruption_plan(0xFEED, 0.6);
        let run = || {
            let mut screen = QuorumScreen::new(QuorumConfig::default());
            let s = summary();
            let mut verdicts = Vec::new();
            for seed in 0..200u64 {
                verdicts.push(screen.screen(Some(&plan), "glucose/gox", seed, &s, seed % 3 == 0));
            }
            (verdicts, screen.summary())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn armed_detects_the_spec() {
        assert!(!QuorumScreen::armed(None));
        assert!(!QuorumScreen::armed(Some(&FaultPlan::chaos(1, 0.5))));
        assert!(!QuorumScreen::armed(Some(
            &FaultPlan::builder("off", 1)
                .spec(FaultKind::SilentCorruption, 0.0, 1.0)
                .build()
        )));
        assert!(QuorumScreen::armed(Some(&corruption_plan(1, 0.2))));
        let spec = FaultSpec::new(FaultKind::SilentCorruption, 0.3, 0.5);
        assert!(spec.probability > 0.0);
    }

    #[test]
    fn single_replica_lets_corruption_escape_and_counts_it() {
        let plan = corruption_plan(0xD1CE, 0.8);
        let config = QuorumConfig {
            replicas: 1,
            max_escalations: 0,
            ..QuorumConfig::default()
        };
        let mut screen = QuorumScreen::new(config);
        let s = summary();
        for seed in 0..300u64 {
            screen.screen(Some(&plan), "glucose/gox", seed, &s, true);
        }
        let total = screen.summary();
        assert!(total.injected > 0);
        assert_eq!(
            total.escaped, total.injected,
            "a lone corrupt lane always wins its own vote"
        );
        assert_eq!(total.caught, 0);
        assert!(total.catch_rate() < 1.0);
    }
}

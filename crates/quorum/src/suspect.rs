//! The suspect scoreboard: strikes and quarantine for replica lanes.
//!
//! Lanes are *logical* replica identities (0, 1, 2, …), not physical
//! workers: the roster is a pure function of the scoreboard state, so
//! the same vote history yields the same lane assignments at any
//! worker or shard count. A lane that loses a vote earns a strike;
//! at the configured threshold it is quarantined and never appears in
//! a roster or as a tie-breaker again. Strikes are cumulative for the
//! life of the board — a silent corrupter's identity is keyed into
//! the fault plan, so it *will* reoffend, and forgetting strikes would
//! only let it oscillate below the threshold.
//!
//! All state lives in ordered collections ([`BTreeMap`]/[`BTreeSet`])
//! and every query walks lane ids in ascending order, keeping the
//! board deterministic on every layout.

use std::collections::{BTreeMap, BTreeSet};

/// Strike ledger and quarantine set for replica lanes.
#[derive(Debug, Clone)]
pub struct SuspectBoard {
    /// Strikes at which a lane is quarantined (count, minimum 1).
    threshold: u32,
    /// Accumulated strikes per lane (count). Never decays.
    strikes: BTreeMap<u64, u32>,
    /// Lanes removed from service, in quarantine order not kept —
    /// membership only (identifiers).
    quarantined: BTreeSet<u64>,
}

impl SuspectBoard {
    /// A fresh board that quarantines a lane after `threshold` lost
    /// votes (count; clamped to at least 1).
    #[must_use]
    pub fn new(threshold: u32) -> SuspectBoard {
        SuspectBoard {
            threshold: threshold.max(1),
            strikes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// The first `n` serviceable lane ids, ascending — lane ids are
    /// dense from 0, skipping quarantined lanes. This is the replica
    /// roster polled for a vote.
    #[must_use]
    pub fn roster(&self, n: usize) -> Vec<u64> {
        let mut lanes = Vec::with_capacity(n);
        let mut candidate = 0u64;
        while lanes.len() < n {
            if !self.quarantined.contains(&candidate) {
                lanes.push(candidate);
            }
            candidate += 1;
        }
        lanes
    }

    /// The smallest serviceable lane id not already polled — the lane
    /// a tied vote escalates to (identifier).
    #[must_use]
    pub fn tie_breaker(&self, polled: &[u64]) -> u64 {
        let mut candidate = 0u64;
        loop {
            if !self.quarantined.contains(&candidate) && !polled.contains(&candidate) {
                return candidate;
            }
            candidate += 1;
        }
    }

    /// Records a lost vote against `lane`. Returns `true` when this
    /// strike crosses the threshold and the lane is *newly*
    /// quarantined (flag).
    pub fn strike(&mut self, lane: u64) -> bool {
        if self.quarantined.contains(&lane) {
            return false;
        }
        let tally = self.strikes.entry(lane).or_insert(0);
        *tally += 1;
        if *tally >= self.threshold {
            self.quarantined.insert(lane);
            true
        } else {
            false
        }
    }

    /// Whether `lane` has been removed from service (flag).
    #[must_use]
    pub fn is_quarantined(&self, lane: u64) -> bool {
        self.quarantined.contains(&lane)
    }

    /// Quarantined lane ids, ascending (identifiers).
    #[must_use]
    pub fn quarantined(&self) -> Vec<u64> {
        self.quarantined.iter().copied().collect()
    }

    /// Accumulated strikes against `lane` (count).
    #[must_use]
    pub fn strikes(&self, lane: u64) -> u32 {
        self.strikes.get(&lane).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_dense_from_zero() {
        let board = SuspectBoard::new(3);
        assert_eq!(board.roster(3), vec![0, 1, 2]);
        assert_eq!(board.roster(1), vec![0]);
        assert!(board.roster(0).is_empty());
    }

    #[test]
    fn strikes_accumulate_to_quarantine_and_roster_skips() {
        let mut board = SuspectBoard::new(3);
        assert!(!board.strike(1));
        assert!(!board.strike(1));
        assert!(board.strike(1), "third strike quarantines");
        assert!(board.is_quarantined(1));
        assert_eq!(board.roster(3), vec![0, 2, 3], "lane 1 skipped");
        assert_eq!(board.quarantined(), vec![1]);
        // Further strikes against a quarantined lane are inert.
        assert!(!board.strike(1));
        assert_eq!(board.strikes(1), 3);
    }

    #[test]
    fn tie_breaker_skips_polled_and_quarantined() {
        let mut board = SuspectBoard::new(1);
        assert_eq!(board.tie_breaker(&[0, 1, 2]), 3);
        assert!(board.strike(3), "threshold 1 quarantines immediately");
        assert_eq!(board.tie_breaker(&[0, 1, 2]), 4);
        assert_eq!(board.tie_breaker(&[]), 0);
    }

    #[test]
    fn threshold_zero_clamps_to_one() {
        let mut board = SuspectBoard::new(0);
        assert!(board.strike(7), "first strike quarantines at clamp");
    }
}

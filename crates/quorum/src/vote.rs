//! Field-wise tolerance comparison and the deterministic majority vote.
//!
//! A [`Ballot`] is one replica lane's observation of a job's summary,
//! flattened to the [`FIELDS`] comparable figures of merit
//! (sensitivity, linear-range low, linear-range high, detection limit,
//! R²). Lanes that observed bit-identical bytes always land in the same
//! cluster; a corrupted lane's observation differs by a relative factor
//! of at least `1e-4` ([`bios_faults::CorruptionDelta`]), which is
//! orders of magnitude wider than the default 4-ulp tolerance, so a
//! corruption is *detectable by construction* — the only question the
//! vote answers is which cluster is the majority.
//!
//! Everything here is pure: clustering visits ballots in poll order,
//! uses no maps keyed by hash, and never consults clocks or thread
//! identity, so the same ballots produce the same clusters on every
//! layout.

use bios_analytics::CalibrationSummary;
use bios_faults::CorruptionDelta;

/// Number of comparable summary fields a ballot carries (count).
pub const FIELDS: usize = CorruptionDelta::FIELDS;

/// Agreement tolerance for one summary field: two observations agree
/// when they are bit-identical, within `abs` absolutely, or within
/// `max_ulps` units-in-the-last-place of each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum units-in-the-last-place distance that still counts as
    /// agreement (count). 4 ulps absorbs nothing in this codebase —
    /// honest lanes observe *identical* bytes — but documents the
    /// contract under which future lossy transports stay safe.
    pub max_ulps: u32,
    /// Absolute slack: `|a - b| <= abs` agrees regardless of ulps.
    /// Zero by default (no slack).
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            max_ulps: 4,
            abs: 0.0,
        }
    }
}

impl Tolerance {
    /// Do two field observations agree under this tolerance?
    ///
    /// NaN agrees with nothing (including itself); infinities agree
    /// only when bit-identical. `+0.0` and `-0.0` agree.
    #[must_use]
    pub fn agrees(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        if !a.is_finite() || !b.is_finite() {
            return false;
        }
        if (a - b).abs() <= self.abs {
            return true;
        }
        ulps_apart(a, b) <= u64::from(self.max_ulps)
    }

    /// Do two full field vectors agree element-wise?
    #[must_use]
    pub fn agrees_all(&self, a: &[f64; FIELDS], b: &[f64; FIELDS]) -> bool {
        a.iter().zip(b.iter()).all(|(&x, &y)| self.agrees(x, y))
    }
}

/// Maps an `f64`'s bit pattern onto a signed integer line that is
/// monotone in the float's value, so ulp distance is plain integer
/// distance. Negative floats (sign bit set) land below zero; both
/// zeros land at zero.
fn monotone(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN - b
    } else {
        b
    }
}

/// Units-in-the-last-place distance between two finite floats (count).
/// Crossing zero accumulates the full distance through both subnormal
/// ranges, so tiny opposite-sign values are *far* apart, as they
/// should be. NaN inputs return `u64::MAX`.
#[must_use]
pub fn ulps_apart(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    monotone(a).abs_diff(monotone(b))
}

/// Flattens a calibration summary to the [`FIELDS`] comparable figures
/// of merit, in the fixed order corruption deltas index: sensitivity
/// (µA·mM⁻¹·cm⁻²), linear-range low (molar), linear-range high
/// (molar), detection limit (molar), R² (dimensionless).
#[must_use]
pub fn summary_fields(summary: &CalibrationSummary) -> [f64; FIELDS] {
    [
        summary
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm(),
        summary.linear_range.low().as_molar(),
        summary.linear_range.high().as_molar(),
        summary.detection_limit.as_molar(),
        summary.r_squared,
    ]
}

/// One replica lane's observation of the committed truth: the true
/// field vector perturbed by the lane's realized corruption delta, if
/// any. A zero-valued field is perturbed additively (the relative
/// factor would be invisible on zero), keeping every realized
/// corruption detectable.
#[must_use]
pub fn observe(truth: &[f64; FIELDS], delta: Option<&CorruptionDelta>) -> [f64; FIELDS] {
    let mut fields = *truth;
    if let Some(d) = delta {
        if let Some(v) = fields.get_mut(d.field) {
            *v = if *v == 0.0 {
                d.relative
            } else {
                *v * (1.0 + d.relative)
            };
        }
    }
    fields
}

/// One replica lane's vote: the lane id, the field vector it observed,
/// and whether a corruption delta was realized on it (known to the
/// harness because it injected the fault; the vote itself never reads
/// this flag — it is bookkeeping for catch-rate metering only).
#[derive(Debug, Clone)]
pub struct Ballot {
    /// Logical replica lane that produced this observation (identifier).
    pub lane: u64,
    /// The observed field vector.
    pub fields: [f64; FIELDS],
    /// Whether a [`CorruptionDelta`] was realized on this lane (flag).
    pub corrupted: bool,
}

/// Clusters ballots by tolerance-agreement, in poll order: each ballot
/// joins the first existing cluster whose *representative* (first
/// member) agrees with it, else opens a new cluster. Returns clusters
/// as lists of ballot indexes, in first-appearance order.
///
/// Honest lanes observe identical bytes, so they always share one
/// cluster; corrupt lanes each draw an independent delta and land in
/// singletons. Representative-based matching keeps the partition
/// deterministic even though tolerance-agreement is not transitive.
#[must_use]
pub fn cluster(ballots: &[Ballot], tolerance: &Tolerance) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (idx, ballot) in ballots.iter().enumerate() {
        let home = clusters.iter_mut().find(|members| {
            members
                .first()
                .and_then(|&rep| ballots.get(rep))
                .is_some_and(|rep| tolerance.agrees_all(&rep.fields, &ballot.fields))
        });
        match home {
            Some(members) => members.push(idx),
            None => clusters.push(vec![idx]),
        }
    }
    clusters
}

/// The index of the winning cluster, or `None` when the vote is tied
/// and needs a tie-breaker lane. A vote is decided when exactly one
/// cluster has the maximum size; `force` breaks a residual tie by
/// taking the tied cluster containing the earliest-polled ballot
/// (deterministic last resort after escalation is exhausted).
#[must_use]
pub fn decide(clusters: &[Vec<usize>], force: bool) -> Option<usize> {
    let max = clusters.iter().map(Vec::len).max()?;
    let mut at_max = clusters
        .iter()
        .enumerate()
        .filter(|(_, members)| members.len() == max);
    let first = at_max.next()?.0;
    match at_max.next() {
        None => Some(first),
        Some(_) if force => Some(first),
        Some(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ballot(lane: u64, fields: [f64; FIELDS], corrupted: bool) -> Ballot {
        Ballot {
            lane,
            fields,
            corrupted,
        }
    }

    const TRUTH: [f64; FIELDS] = [42.5, 1.0e-6, 2.0e-3, 3.0e-7, 0.9991];

    #[test]
    fn identical_observations_agree_and_cluster_together() {
        let tol = Tolerance::default();
        let ballots = vec![
            ballot(0, TRUTH, false),
            ballot(1, TRUTH, false),
            ballot(2, TRUTH, false),
        ];
        let clusters = cluster(&ballots, &tol);
        assert_eq!(clusters, vec![vec![0, 1, 2]]);
        assert_eq!(decide(&clusters, false), Some(0));
    }

    #[test]
    fn corrupt_singleton_loses_two_to_one() {
        let tol = Tolerance::default();
        let delta = CorruptionDelta {
            field: 0,
            relative: 1.0e-4,
        };
        let ballots = vec![
            ballot(0, TRUTH, false),
            ballot(1, observe(&TRUTH, Some(&delta)), true),
            ballot(2, TRUTH, false),
        ];
        let clusters = cluster(&ballots, &tol);
        assert_eq!(clusters.len(), 2);
        assert_eq!(decide(&clusters, false), Some(0));
        assert_eq!(clusters[0], vec![0, 2]);
        assert_eq!(clusters[1], vec![1]);
    }

    #[test]
    fn all_singletons_tie_until_forced() {
        let tol = Tolerance::default();
        let d1 = CorruptionDelta {
            field: 1,
            relative: 2.0e-3,
        };
        let d2 = CorruptionDelta {
            field: 3,
            relative: -4.0e-3,
        };
        let ballots = vec![
            ballot(0, TRUTH, false),
            ballot(1, observe(&TRUTH, Some(&d1)), true),
            ballot(2, observe(&TRUTH, Some(&d2)), true),
        ];
        let clusters = cluster(&ballots, &tol);
        assert_eq!(clusters.len(), 3);
        assert_eq!(decide(&clusters, false), None, "three-way tie");
        assert_eq!(decide(&clusters, true), Some(0), "forced: earliest ballot");
    }

    #[test]
    fn minimum_delta_is_far_outside_ulp_tolerance() {
        let tol = Tolerance::default();
        for &truth in &TRUTH {
            let corrupt = truth * (1.0 + 1.0e-4);
            assert!(
                !tol.agrees(truth, corrupt),
                "minimum corruption on {truth} must be detectable"
            );
            assert!(ulps_apart(truth, corrupt) > 1_000_000);
        }
    }

    #[test]
    fn ulp_distance_is_tight_for_neighbours() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 3);
        assert_eq!(ulps_apart(a, b), 3);
        assert!(Tolerance::default().agrees(a, b));
        let c = f64::from_bits(a.to_bits() + 5);
        assert!(!Tolerance::default().agrees(a, c));
    }

    #[test]
    fn tolerance_edge_cases() {
        let tol = Tolerance::default();
        assert!(tol.agrees(0.0, -0.0));
        assert!(!tol.agrees(f64::NAN, f64::NAN));
        assert!(tol.agrees(f64::INFINITY, f64::INFINITY));
        assert!(!tol.agrees(f64::INFINITY, f64::MAX));
        // Crossing zero is far even for tiny magnitudes.
        assert!(!tol.agrees(1.0e-300, -1.0e-300));
        // Absolute slack rescues a wide gap when configured.
        let loose = Tolerance {
            max_ulps: 0,
            abs: 0.5,
        };
        assert!(loose.agrees(1.0, 1.4));
        assert!(!loose.agrees(1.0, 1.6));
    }

    #[test]
    fn zero_field_is_perturbed_additively() {
        let truth = [0.0, 1.0, 1.0, 1.0, 1.0];
        let delta = CorruptionDelta {
            field: 0,
            relative: 5.0e-3,
        };
        let seen = observe(&truth, Some(&delta));
        assert!(
            !Tolerance::default().agrees(truth[0], seen[0]),
            "corruption on a zero field must still be visible"
        );
    }
}

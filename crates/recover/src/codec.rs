//! Little-endian field encoding and checksummed record framing.
//!
//! Every durable file the platform writes — the write-ahead run journal
//! and the persisted memo cache — shares one wire discipline:
//!
//! * scalar fields are little-endian (`u32`/`u64`; `f64` travels as its
//!   IEEE-754 bit pattern, so round trips are *bit-exact*);
//! * strings are a `u32` byte length followed by UTF-8 bytes;
//! * a record frame is `[u32 payload_len][payload][u64 fnv1a(payload)]`.
//!
//! Readers never panic on hostile bytes: every decode path returns a
//! typed [`CodecError`] so callers can quarantine the corruption.

use std::io::{self, Read, Write};

/// The framing cannot describe payloads larger than this; a length
/// prefix beyond it is treated as corruption rather than honoured with
/// a giant allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// FNV-1a over a byte slice — the same checksum idiom the catalog and
/// fault plans use for fingerprints, so durable files need no new
/// hashing scheme.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Why a decode failed. Every variant is recoverable by the caller
/// (typically: stop at the previous valid record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended inside a field or frame.
    Truncated,
    /// A frame's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// A length prefix exceeded [`MAX_PAYLOAD`].
    OversizedPayload {
        /// The declared payload length.
        declared: u32,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An enum tag byte was outside its domain.
    BadTag {
        /// The unrecognized tag value.
        tag: u8,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream truncated mid-field"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::OversizedPayload { declared } => {
                write!(f, "frame declares {declared} payload bytes (over the cap)")
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadTag { tag } => write!(f, "unrecognized record tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Accumulates an encoded payload.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh, empty payload.
    #[must_use]
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded payload.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Decodes a payload produced by [`ByteWriter`]; every getter is
/// bounds-checked and returns [`CodecError::Truncated`] instead of
/// panicking when the bytes run out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload for decoding.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
            .ok_or(CodecError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        self.take(1)?.first().copied().ok_or(CodecError::Truncated)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_PAYLOAD as usize {
            return Err(CodecError::OversizedPayload {
                declared: len as u32,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

/// Writes one checksummed frame: `[u32 len][payload][u64 fnv1a]`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    // One write call per frame, so a crash can tear at most the frame
    // being written — never interleave two frames.
    w.write_all(&frame)
}

/// What reading one frame produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// Clean end of stream: zero bytes remained.
    Eof,
    /// The stream ended inside a frame — the torn tail a crash leaves.
    TornTail,
    /// The frame was complete but its checksum (or length prefix) is
    /// wrong: corruption, not a crash artifact.
    Corrupt(CodecError),
}

/// Reads one frame, distinguishing clean EOF, a torn (truncated) tail,
/// and outright corruption so the caller can quarantine precisely.
///
/// # Errors
///
/// Propagates underlying I/O errors; framing problems are reported in
/// [`FrameRead`], not as errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        Fill::Empty => return Ok(FrameRead::Eof),
        Fill::Partial => return Ok(FrameRead::TornTail),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_PAYLOAD {
        return Ok(FrameRead::Corrupt(CodecError::OversizedPayload {
            declared: len,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Fill::Full => {}
        Fill::Empty | Fill::Partial => return Ok(FrameRead::TornTail),
    }
    let mut sum_buf = [0u8; 8];
    match read_exact_or_eof(r, &mut sum_buf)? {
        Fill::Full => {}
        Fill::Empty | Fill::Partial => return Ok(FrameRead::TornTail),
    }
    let stored = u64::from_le_bytes(sum_buf);
    let computed = fnv1a(&payload);
    if stored != computed {
        return Ok(FrameRead::Corrupt(CodecError::ChecksumMismatch {
            stored,
            computed,
        }));
    }
    Ok(FrameRead::Payload(payload))
}

enum Fill {
    Full,
    Partial,
    Empty,
}

/// `read_exact` that reports how far it got instead of erroring at EOF.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        // bios-audit: allow(P-index) — `filled < buf.len()` is the loop guard
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::Empty
                } else {
                    Fill::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip_is_bit_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("glucose/ours");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "glucose/ours");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_not_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u64(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&[5, 0, 0, 0, b'a']);
        assert_eq!(r.get_str(), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn frame_round_trip() {
        let mut file = Vec::new();
        write_frame(&mut file, b"hello").unwrap();
        write_frame(&mut file, b"").unwrap();
        let mut cursor = std::io::Cursor::new(file);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Payload(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Payload(Vec::new())
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn torn_tail_at_every_offset_is_detected() {
        let mut file = Vec::new();
        write_frame(&mut file, b"payload bytes").unwrap();
        for cut in 1..file.len() {
            let mut cursor = std::io::Cursor::new(&file[..cut]);
            match read_frame(&mut cursor).unwrap() {
                FrameRead::TornTail => {}
                other => panic!("cut at {cut}: expected TornTail, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_payload_or_checksum_is_corrupt() {
        let mut file = Vec::new();
        write_frame(&mut file, b"payload bytes").unwrap();
        // Flip one bit everywhere past the length prefix.
        for k in 4..file.len() {
            let mut bad = file.clone();
            bad[k] ^= 0x10;
            let mut cursor = std::io::Cursor::new(bad);
            match read_frame(&mut cursor).unwrap() {
                FrameRead::Corrupt(CodecError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {k}: expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt_not_alloc() {
        let mut file = Vec::new();
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&[0u8; 32]);
        let mut cursor = std::io::Cursor::new(file);
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Corrupt(CodecError::OversizedPayload { .. })
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values from the FNV-1a specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

//! Append-only write-ahead run journal.
//!
//! ## File layout
//!
//! ```text
//! +----------+  8-byte magic "BIOSJRN1"
//! | magic    |
//! +----------+
//! | frame 0  |  RunHeader   — fleet name, plan fingerprint, job count
//! +----------+
//! | frame 1  |  JobDone     — index, disposition, attempts, digest line
//! | ...      |
//! +----------+
//! | frame N  |  RunSealed   — jobs done, digest of the full run
//! +----------+
//! ```
//!
//! Each frame is `[u32 len][payload][u64 fnv1a(payload)]` (see
//! [`crate::codec`]). Every append is flushed before the corresponding
//! result is surfaced to the caller — write-ahead, so a crash can lose
//! at most work that was never reported done.
//!
//! ## Reader tolerance
//!
//! * A **torn tail** (crash mid-append) is expected: the reader stops at
//!   the last complete record and reports `truncated_tail`.
//! * A **corrupt record** (checksum mismatch, bad tag, short payload) is
//!   quarantined: the reader stops *before* it — once the framing is
//!   untrusted, everything after the first bad byte is untrusted — and
//!   reports it in `corrupt_records`. Nothing panics.
//! * `valid_len` is the byte offset of the last trusted record; a
//!   resume writer truncates the file there before appending.
//!
//! ## Storage backend and write-path faults
//!
//! Every byte goes through a [`crate::sim::StorageIo`] backend: the
//! `*_with` constructors take one explicitly, the plain constructors
//! default to [`RealIo`]. Append failures are classified like the
//! runtime classifies job errors ([`crate::sim::classify_io`]):
//! *transient* failures (a flaky `EIO`, a short write) truncate the
//! torn bytes back to the last trusted length and retry with bounded
//! deterministic backoff; *permanent* failures (`ENOSPC`) and
//! simulated crashes surface immediately so the caller can retire the
//! journal or die honestly.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::codec::{self, ByteReader, ByteWriter, CodecError, FrameRead};
use crate::sim::{classify_io, IoErrorClass, RealIo, StorageFile, StorageIo};

/// Eight-byte file magic; the trailing digit versions the format.
pub const MAGIC: &[u8; 8] = b"BIOSJRN1";

/// How a journaled job finished — the runtime's three-way outcome
/// classification, flattened for durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Job succeeded cleanly.
    Completed,
    /// Job succeeded but needed retries or absorbed injected faults.
    Degraded,
    /// Job failed with a typed error.
    Failed,
}

impl Disposition {
    fn tag(self) -> u8 {
        match self {
            Disposition::Completed => 0,
            Disposition::Degraded => 1,
            Disposition::Failed => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Disposition, CodecError> {
        match tag {
            0 => Ok(Disposition::Completed),
            1 => Ok(Disposition::Degraded),
            2 => Ok(Disposition::Failed),
            other => Err(CodecError::BadTag { tag: other }),
        }
    }
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Disposition::Completed => write!(f, "completed"),
            Disposition::Degraded => write!(f, "degraded"),
            Disposition::Failed => write!(f, "failed"),
        }
    }
}

/// The journal's opening record: identifies *which* run this journal
/// belongs to so a stale file can never alias a different fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// Fleet name (informational; not part of the fingerprint).
    pub fleet: String,
    /// Fingerprint over (sensor set, protocol, fault plan, seeds).
    pub fingerprint: u64,
    /// Total jobs the run will execute.
    pub jobs: u64,
}

/// One completed job, durably recorded before its result is surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// Submission-order index of the job within the fleet.
    pub index: u64,
    /// How the job finished.
    pub disposition: Disposition,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u64,
    /// The job's digest line — the exact text the fleet digest hashes,
    /// so a resumed run can reproduce the digest byte-for-byte.
    pub digest_line: String,
}

/// A journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Run identity; always the first record.
    RunHeader(RunHeader),
    /// One finished job.
    JobDone(JobDone),
    /// Terminal record: the run finished and the journal is complete.
    RunSealed {
        /// Number of jobs recorded.
        jobs_done: u64,
        /// FNV-1a digest of the whole run's digest lines.
        digest: u64,
    },
}

impl Record {
    /// Convenience constructor for a [`Record::JobDone`].
    #[must_use]
    pub fn job_done(
        index: u64,
        disposition: Disposition,
        attempts: u64,
        digest_line: String,
    ) -> Record {
        Record::JobDone(JobDone {
            index,
            disposition,
            attempts,
            digest_line,
        })
    }

    const TAG_HEADER: u8 = 1;
    const TAG_JOB_DONE: u8 = 2;
    const TAG_SEALED: u8 = 3;

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::RunHeader(h) => {
                w.put_u8(Record::TAG_HEADER);
                w.put_str(&h.fleet);
                w.put_u64(h.fingerprint);
                w.put_u64(h.jobs);
            }
            Record::JobDone(j) => {
                w.put_u8(Record::TAG_JOB_DONE);
                w.put_u64(j.index);
                w.put_u8(j.disposition.tag());
                w.put_u64(j.attempts);
                w.put_str(&j.digest_line);
            }
            Record::RunSealed { jobs_done, digest } => {
                w.put_u8(Record::TAG_SEALED);
                w.put_u64(*jobs_done);
                w.put_u64(*digest);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Record, CodecError> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        let record = match tag {
            Record::TAG_HEADER => Record::RunHeader(RunHeader {
                fleet: r.get_str()?,
                fingerprint: r.get_u64()?,
                jobs: r.get_u64()?,
            }),
            Record::TAG_JOB_DONE => {
                let index = r.get_u64()?;
                let disposition = Disposition::from_tag(r.get_u8()?)?;
                let attempts = r.get_u64()?;
                let digest_line = r.get_str()?;
                Record::JobDone(JobDone {
                    index,
                    disposition,
                    attempts,
                    digest_line,
                })
            }
            Record::TAG_SEALED => Record::RunSealed {
                jobs_done: r.get_u64()?,
                digest: r.get_u64()?,
            },
            other => return Err(CodecError::BadTag { tag: other }),
        };
        if r.remaining() != 0 {
            // Trailing bytes inside a checksummed payload means the
            // writer and reader disagree on the schema — corruption.
            return Err(CodecError::Truncated);
        }
        Ok(record)
    }
}

/// Why a journal could not be written or read.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a journal, or a
    /// journal from an incompatible format version.
    BadMagic,
    /// The file has no readable `RunHeader` record — nothing to resume.
    HeaderMissing,
    /// The header exists but its fingerprint does not match the run the
    /// caller is trying to resume; resuming would alias a different
    /// (sensor set, protocol, plan, seed) combination.
    FingerprintMismatch {
        /// Fingerprint stored in the journal.
        journal: u64,
        /// Fingerprint of the run the caller is executing.
        current: u64,
    },
    /// A record failed to decode (checksum, tag, or framing).
    Corrupt(CodecError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => {
                write!(f, "file is not a bios run journal (bad magic)")
            }
            JournalError::HeaderMissing => {
                write!(f, "journal has no readable run header")
            }
            JournalError::FingerprintMismatch { journal, current } => write!(
                f,
                "journal belongs to a different run: journal fingerprint {journal:#018x}, \
                 current run {current:#018x}"
            ),
            JournalError::Corrupt(e) => write!(f, "journal record corrupt: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Transient IO failures get this many attempts (first try included)
/// before the error surfaces and the caller retires the journal.
pub const JOURNAL_IO_ATTEMPTS: u32 = 3;

/// Deterministic backoff before transient-IO retry `attempt`
/// (0-based): 100µs doubling, capped at 2ms. Pure in the attempt
/// number — no clock reads, so replay stays deterministic.
#[must_use]
pub fn journal_backoff(attempt: u32) -> Duration {
    let micros = 100u64.saturating_mul(1u64 << attempt.min(10));
    Duration::from_micros(micros.min(2_000))
}

/// Appends records durably; each append is flushed before returning so
/// the write-ahead invariant holds across process death.
#[derive(Debug)]
pub struct JournalWriter {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    records: u64,
    /// Bytes of trusted, fully-appended frames (magic included) — the
    /// truncation point when a failed append leaves torn bytes.
    len: u64,
    io_retries: u64,
}

impl JournalWriter {
    /// Creates a fresh journal (truncating any existing file) and
    /// writes the magic plus the `RunHeader` record, on [`RealIo`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, header: &RunHeader) -> Result<JournalWriter, JournalError> {
        JournalWriter::create_with(&RealIo, path, header)
    }

    /// [`JournalWriter::create`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on backend failure (a failed create is
    /// *not* retried: with no journal yet there is nothing to repair,
    /// and the caller decides between erroring and running
    /// non-durable).
    pub fn create_with(
        io: &dyn StorageIo,
        path: &Path,
        header: &RunHeader,
    ) -> Result<JournalWriter, JournalError> {
        let mut file = io.create(path)?;
        file.write_all(MAGIC)?;
        let mut writer = JournalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            len: MAGIC.len() as u64,
            io_retries: 0,
        };
        writer.append(&Record::RunHeader(header.clone()))?;
        Ok(writer)
    }

    /// Reopens an existing journal for resumption: truncates the file
    /// to `valid_len` (discarding any torn or corrupt tail a crash
    /// left) and positions for appending, on [`RealIo`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn open_resume(path: &Path, valid_len: u64) -> Result<JournalWriter, JournalError> {
        JournalWriter::open_resume_with(&RealIo, path, valid_len)
    }

    /// [`JournalWriter::open_resume`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on backend failure.
    pub fn open_resume_with(
        io: &dyn StorageIo,
        path: &Path,
        valid_len: u64,
    ) -> Result<JournalWriter, JournalError> {
        let file = io.open_truncated(path, valid_len)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            len: valid_len,
            io_retries: 0,
        })
    }

    /// Appends one record and flushes it to the OS. Transient IO
    /// failures truncate the torn bytes and retry (bounded,
    /// deterministic backoff); permanent failures and crashes surface
    /// on the first strike.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] once retries are exhausted or the failure
    /// is not retryable.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let payload = record.encode();
        let mut attempt: u32 = 0;
        loop {
            match self.try_append(&payload) {
                Ok(()) => {
                    self.records += 1;
                    return Ok(());
                }
                Err(e) => match classify_io(&e) {
                    IoErrorClass::Permanent | IoErrorClass::Crash => {
                        return Err(JournalError::Io(e));
                    }
                    IoErrorClass::Transient => {
                        if attempt + 1 >= JOURNAL_IO_ATTEMPTS {
                            return Err(JournalError::Io(e));
                        }
                        // A failed frame write may have landed a prefix;
                        // cut back to the last trusted byte before the
                        // retry so the journal never holds torn frames
                        // followed by good ones.
                        self.file.truncate(self.len).map_err(JournalError::Io)?;
                        std::thread::sleep(journal_backoff(attempt));
                        self.io_retries += 1;
                        attempt += 1;
                    }
                },
            }
        }
    }

    fn try_append(&mut self, payload: &[u8]) -> io::Result<()> {
        codec::write_frame(&mut self.file, payload)?;
        self.file.flush()?;
        self.len += 4 + payload.len() as u64 + 8;
        Ok(())
    }

    /// Appends the terminal `RunSealed` record and syncs the file to
    /// stable storage. The sync gets the same transient-retry
    /// treatment as appends.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] once retries are exhausted or the failure
    /// is not retryable.
    pub fn seal(&mut self, jobs_done: u64, digest: u64) -> Result<(), JournalError> {
        self.append(&Record::RunSealed { jobs_done, digest })?;
        self.sync_retrying()
    }

    /// Forces appended records to stable storage, retrying transient
    /// sync failures with bounded deterministic backoff.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] once retries are exhausted or the failure
    /// is not retryable.
    pub fn sync_retrying(&mut self) -> Result<(), JournalError> {
        let mut attempt: u32 = 0;
        loop {
            match self.file.sync_all() {
                Ok(()) => return Ok(()),
                Err(e) => match classify_io(&e) {
                    IoErrorClass::Permanent | IoErrorClass::Crash => {
                        return Err(JournalError::Io(e));
                    }
                    IoErrorClass::Transient => {
                        if attempt + 1 >= JOURNAL_IO_ATTEMPTS {
                            return Err(JournalError::Io(e));
                        }
                        std::thread::sleep(journal_backoff(attempt));
                        self.io_retries += 1;
                        attempt += 1;
                    }
                },
            }
        }
    }

    /// Records appended through this writer (header and seal included).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Transient-IO retries this writer absorbed (metrics feed).
    #[must_use]
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Bytes of trusted, fully-appended frames.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.len
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything a journal file yielded, including how much of it could
/// be trusted.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The run identity record.
    pub header: RunHeader,
    /// Completed jobs, in journal (append) order.
    pub jobs: Vec<JobDone>,
    /// Seal record contents, if the run finished: `(jobs_done, digest)`.
    pub seal: Option<(u64, u64)>,
    /// Whether the journal ends with a `RunSealed` record.
    pub sealed: bool,
    /// Whether the file ended mid-record (crash artifact; benign).
    pub truncated_tail: bool,
    /// Records quarantined for failing checksum/decode. Reading stops
    /// at the first one — framing after it is untrusted.
    pub corrupt_records: u64,
    /// The decode error of the first corrupt record, when any. Strict
    /// consumers (a merged shard resume, for instance) refuse to trust
    /// a journal whose *body* failed its checksum instead of silently
    /// re-executing past it — a corrupt body is tampering or bit rot,
    /// not the benign torn tail a crash leaves.
    pub corrupt_error: Option<CodecError>,
    /// Byte offset of the end of the last trusted record; a resume
    /// writer truncates the file here before appending.
    pub valid_len: u64,
}

/// Reads a journal, tolerating torn tails and quarantining corruption.
#[derive(Debug)]
pub struct JournalReader;

impl JournalReader {
    /// Loads and validates a journal file.
    ///
    /// # Errors
    ///
    /// * [`JournalError::Io`] — the file cannot be read at all;
    /// * [`JournalError::BadMagic`] — not a journal / wrong version;
    /// * [`JournalError::HeaderMissing`] — no trusted `RunHeader`
    ///   (truncated or corrupted before the first record ended);
    /// * [`JournalError::Corrupt`] — the *first* record decoded but was
    ///   not a `RunHeader`, so the file's structure is wrong.
    ///
    /// Torn tails and corrupt records *after* the header are not
    /// errors: they are reported in the returned [`LoadedJournal`].
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        JournalReader::load_with(&RealIo, path)
    }

    /// [`JournalReader::load`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// As [`JournalReader::load`].
    pub fn load_with(io: &dyn StorageIo, path: &Path) -> Result<LoadedJournal, JournalError> {
        let bytes = io.read_all(path)?;
        let mut reader = io::Cursor::new(bytes);
        let mut magic = [0u8; 8];
        match io::Read::read_exact(&mut reader, &mut magic) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(JournalError::BadMagic);
            }
            Err(e) => return Err(JournalError::Io(e)),
        }
        if &magic != MAGIC {
            return Err(JournalError::BadMagic);
        }

        let mut header: Option<RunHeader> = None;
        let mut jobs = Vec::new();
        let mut seal = None;
        let mut truncated_tail = false;
        let mut corrupt_records = 0u64;
        let mut corrupt_error: Option<CodecError> = None;
        let mut valid_len = MAGIC.len() as u64;

        loop {
            let frame = codec::read_frame(&mut reader)?;
            match frame {
                FrameRead::Eof => break,
                FrameRead::TornTail => {
                    truncated_tail = true;
                    break;
                }
                FrameRead::Corrupt(e) => {
                    // Once one frame fails its checksum, the length
                    // prefixes after it cannot be trusted to delimit
                    // records; quarantine and stop.
                    corrupt_records += 1;
                    corrupt_error = Some(e);
                    break;
                }
                FrameRead::Payload(payload) => {
                    let frame_len = 4 + payload.len() as u64 + 8;
                    match Record::decode(&payload) {
                        Ok(Record::RunHeader(h)) => {
                            if header.is_some() {
                                // A second header mid-file is structural
                                // corruption; stop before it.
                                corrupt_records += 1;
                                corrupt_error = Some(CodecError::BadTag {
                                    tag: Record::TAG_HEADER,
                                });
                                break;
                            }
                            header = Some(h);
                        }
                        Ok(Record::JobDone(j)) => {
                            if header.is_none() {
                                return Err(JournalError::Corrupt(CodecError::BadTag {
                                    tag: Record::TAG_JOB_DONE,
                                }));
                            }
                            jobs.push(j);
                        }
                        Ok(Record::RunSealed { jobs_done, digest }) => {
                            if header.is_none() {
                                return Err(JournalError::Corrupt(CodecError::BadTag {
                                    tag: Record::TAG_SEALED,
                                }));
                            }
                            seal = Some((jobs_done, digest));
                            valid_len += frame_len;
                            // A seal is terminal; trailing bytes after
                            // it are not part of the run.
                            break;
                        }
                        Err(e) => {
                            corrupt_records += 1;
                            corrupt_error = Some(e);
                            break;
                        }
                    }
                    valid_len += frame_len;
                }
            }
        }

        let header = header.ok_or(JournalError::HeaderMissing)?;
        Ok(LoadedJournal {
            header,
            jobs,
            sealed: seal.is_some(),
            seal,
            truncated_tail,
            corrupt_records,
            corrupt_error,
            valid_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bios-recover-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    fn sample_header() -> RunHeader {
        RunHeader {
            fleet: "unit".into(),
            fingerprint: 0xABCD_EF01_2345_6789,
            jobs: 3,
        }
    }

    fn write_sample(path: &Path, seal: bool) {
        let mut w = JournalWriter::create(path, &sample_header()).unwrap();
        w.append(&Record::job_done(
            0,
            Disposition::Completed,
            1,
            "glucose/ours seed=0 ok".into(),
        ))
        .unwrap();
        w.append(&Record::job_done(
            2,
            Disposition::Degraded,
            3,
            "lactate/ours seed=2 degraded".into(),
        ))
        .unwrap();
        if seal {
            w.seal(2, 0xD16E57).unwrap();
        }
    }

    #[test]
    fn round_trip_sealed_journal() {
        let path = temp_path("round-trip");
        write_sample(&path, true);
        let loaded = JournalReader::load(&path).unwrap();
        assert_eq!(loaded.header, sample_header());
        assert_eq!(loaded.jobs.len(), 2);
        assert_eq!(loaded.jobs[0].index, 0);
        assert_eq!(loaded.jobs[1].disposition, Disposition::Degraded);
        assert_eq!(loaded.jobs[1].attempts, 3);
        assert_eq!(loaded.jobs[1].digest_line, "lactate/ours seed=2 degraded");
        assert!(loaded.sealed);
        assert_eq!(loaded.seal, Some((2, 0xD16E57)));
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.corrupt_records, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsealed_journal_reads_cleanly() {
        let path = temp_path("unsealed");
        write_sample(&path, false);
        let loaded = JournalReader::load(&path).unwrap();
        assert!(!loaded.sealed);
        assert_eq!(loaded.jobs.len(), 2);
        assert!(!loaded.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_keeps_complete_records() {
        let path = temp_path("torn");
        write_sample(&path, false);
        let full = std::fs::read(&path).unwrap();
        // Cut 5 bytes into the final record's frame.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).unwrap();
        let loaded = JournalReader::load(&path).unwrap();
        assert_eq!(loaded.jobs.len(), 1);
        assert!(loaded.truncated_tail);
        assert_eq!(loaded.corrupt_records, 0);
        assert!(loaded.valid_len < cut as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_quarantined_not_panic() {
        let path = temp_path("flip");
        write_sample(&path, true);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the middle of the second job record.
        let k = bytes.len() / 2;
        bytes[k] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match JournalReader::load(&path) {
            Ok(loaded) => {
                // Must have stopped at or before the damaged record.
                assert!(
                    loaded.corrupt_records > 0 || loaded.truncated_tail || loaded.jobs.len() < 2
                );
            }
            Err(e) => {
                // Typed error is also acceptable (flip hit the header).
                let _ = e.to_string();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_body_surfaces_first_error() {
        let path = temp_path("corrupt-body");
        write_sample(&path, true);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first job record's digest-line string:
        // the frame checksum no longer matches, deterministically.
        let at = bytes.windows(7).position(|w| w == b"glucose").unwrap();
        bytes[at] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = JournalReader::load(&path).unwrap();
        assert_eq!(loaded.jobs.len(), 0);
        assert_eq!(loaded.corrupt_records, 1);
        assert!(matches!(
            loaded.corrupt_error,
            Some(CodecError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn not_a_journal_is_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(
            JournalReader::load(&path),
            Err(JournalError::BadMagic)
        ));
        std::fs::write(&path, b"BIO").unwrap();
        assert!(matches!(
            JournalReader::load(&path),
            Err(JournalError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_truncation_is_header_missing() {
        let path = temp_path("headerless");
        write_sample(&path, false);
        let full = std::fs::read(&path).unwrap();
        // Keep the magic plus a sliver of the header frame.
        std::fs::write(&path, &full[..10]).unwrap();
        assert!(matches!(
            JournalReader::load(&path),
            Err(JournalError::HeaderMissing)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_resume_truncates_garbage_tail() {
        let path = temp_path("resume");
        write_sample(&path, false);
        let loaded = JournalReader::load(&path).unwrap();
        let valid_len = loaded.valid_len;
        // Simulate a crash leaving garbage after the last good record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 7]).unwrap();
        }
        let mut w = JournalWriter::open_resume(&path, valid_len).unwrap();
        w.append(&Record::job_done(
            1,
            Disposition::Completed,
            1,
            "cholesterol/ours seed=1 ok".into(),
        ))
        .unwrap();
        w.seal(3, 0xFEED).unwrap();
        let reloaded = JournalReader::load(&path).unwrap();
        assert_eq!(reloaded.jobs.len(), 3);
        assert!(reloaded.sealed);
        assert!(!reloaded.truncated_tail);
        assert_eq!(reloaded.corrupt_records, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_write_faults_retry_and_keep_the_journal_parseable() {
        use crate::sim::{IoFaultScript, SimIo};
        // A moderate short-write rate: across seeds, some appends fail
        // once and succeed on retry. The retry must truncate the torn
        // bytes so the journal stays parseable end to end.
        let mut saw_retry = false;
        for seed in 0..64u64 {
            let io = SimIo::new(IoFaultScript::healthy(seed).with_rates(250, 0, 0, 0));
            let path = PathBuf::from("/sim/retry.journal");
            let Ok(mut w) = JournalWriter::create_with(&io, &path, &sample_header()) else {
                continue; // retries exhausted on this seed; fine
            };
            let mut appended = 0u64;
            for i in 0..6u64 {
                let rec = Record::job_done(i, Disposition::Completed, 1, format!("job {i} ok"));
                match w.append(&rec) {
                    Ok(()) => appended += 1,
                    Err(_) => break,
                }
            }
            saw_retry |= w.io_retries() > 0;
            let loaded = JournalReader::load_with(&io, &path).unwrap();
            assert_eq!(
                loaded.jobs.len() as u64,
                appended,
                "every acknowledged append must be readable (seed {seed})"
            );
            assert_eq!(
                loaded.corrupt_records, 0,
                "retries must not leave torn frames"
            );
        }
        assert!(saw_retry, "some seed must exercise the retry path");
    }

    #[test]
    fn enospc_retires_immediately_without_retry() {
        use crate::sim::{IoFaultScript, SimIo};
        let io = SimIo::perfect(11);
        let path = PathBuf::from("/sim/full.journal");
        let mut w = JournalWriter::create_with(&io, &path, &sample_header()).unwrap();
        // Disk fills up mid-run: every write now hits ENOSPC.
        io.set_script(IoFaultScript::healthy(11).with_rates(0, 1000, 0, 0));
        let err = w
            .append(&Record::job_done(0, Disposition::Completed, 1, "x".into()))
            .unwrap_err();
        assert!(matches!(err, JournalError::Io(ref e)
            if crate::sim::classify_io(e) == crate::sim::IoErrorClass::Permanent));
        assert_eq!(w.io_retries(), 0, "permanent errors must not be retried");
        // The journal up to the failure is still intact and readable.
        io.set_script(IoFaultScript::healthy(11));
        let loaded = JournalReader::load_with(&io, &path).unwrap();
        assert_eq!(loaded.jobs.len(), 0);
        assert_eq!(loaded.header, sample_header());
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        assert_eq!(journal_backoff(0), Duration::from_micros(100));
        assert_eq!(journal_backoff(1), Duration::from_micros(200));
        assert!(journal_backoff(30) <= Duration::from_millis(2));
        assert_eq!(journal_backoff(5), journal_backoff(5));
    }

    #[test]
    fn trailing_bytes_after_seal_are_ignored() {
        let path = temp_path("post-seal");
        write_sample(&path, true);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"junk after seal").unwrap();
        }
        let loaded = JournalReader::load(&path).unwrap();
        assert!(loaded.sealed);
        assert_eq!(loaded.jobs.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}

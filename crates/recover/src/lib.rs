//! # bios-recover
//!
//! Durability primitives for crash-resumable fleet runs: the platform's
//! answer to the recover-from-checkpoint discipline that unattended
//! clinical monitoring demands. A fleet that loses hours of calibration
//! sweeps to one process death is clinically useless, so every run can
//! be journaled to disk *before* its results are surfaced and replayed
//! after a crash.
//!
//! Four pieces, all on `std` only (the build environment is offline):
//!
//! * [`codec`] — length-prefixed, FNV-1a-checksummed record framing and
//!   little-endian field encoding shared by every durable file format;
//! * [`journal`] — the append-only write-ahead run journal
//!   ([`journal::JournalWriter`] / [`journal::JournalReader`]) with a
//!   reader that tolerates torn tails and quarantines corrupt records
//!   instead of panicking;
//! * [`sim`] — the injectable storage backend ([`sim::StorageIo`]):
//!   [`sim::RealIo`] passes through to `std::fs`, [`sim::SimIo`]
//!   replays the same syscalls against a deterministic in-memory disk
//!   whose short writes, `ENOSPC`, failed syncs, and hard crashes are
//!   a pure function of (seed, op-index) — [`sim::IoFaultScript`];
//! * the error taxonomy ([`JournalError`]) — every failure mode of a
//!   durable file is a typed, displayable error; nothing in this crate
//!   panics on hostile bytes.
//!
//! The crate is a leaf: it knows nothing about sensors, physics, or the
//! runtime. `bios-runtime` builds its crash-resume and persisted-cache
//! layers on top of these primitives.
//!
//! ```
//! use bios_recover::journal::{JournalWriter, JournalReader, Record, RunHeader};
//!
//! let dir = std::env::temp_dir().join("bios-recover-doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("run.journal");
//! let mut w = JournalWriter::create(&path, &RunHeader {
//!     fleet: "doc".into(),
//!     fingerprint: 0xFEED,
//!     jobs: 2,
//! })?;
//! w.append(&Record::job_done(0, bios_recover::journal::Disposition::Completed, 1,
//!     "glucose/ours seed=0 ...".into()))?;
//! w.seal(1, 0xD16E57)?;
//! let loaded = JournalReader::load(&path)?;
//! assert_eq!(loaded.header.fingerprint, 0xFEED);
//! assert!(loaded.sealed);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), bios_recover::JournalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod journal;
pub mod sim;

pub use codec::{fnv1a, ByteReader, ByteWriter, CodecError};
pub use journal::{Disposition, JournalError, JournalReader, JournalWriter, LoadedJournal, Record};
pub use sim::{
    classify_io, is_sim_crash, IoErrorClass, IoFaultScript, RealIo, SimIo, StorageFile, StorageIo,
};

//! Deterministic storage-fault simulation: an injectable IO layer
//! under the durability stack.
//!
//! Every byte the durability layer writes — journal frames, cache
//! snapshots, per-shard segments — goes through a [`StorageIo`]
//! backend. Production uses [`RealIo`], a thin passthrough to
//! `std::fs`. Tests and the torture gate use [`SimIo`], an in-memory
//! disk whose faults are a *pure function of (seed, op-index)* — the
//! same discipline `FaultPlan` applies to sensor physics, extended
//! FoundationDB-style to the syscall boundary:
//!
//! * **short writes** — a write partially reaches the device, then
//!   errors; the torn bytes stay on the simulated disk;
//! * **`ENOSPC`** — the device is full; nothing lands (permanent);
//! * **failed `sync_all`** — the data stays volatile (transient);
//! * **hard crashes** — the process "dies" at an op index: the op does
//!   not take effect, every later op fails with a recognizable crash
//!   error, and on [`SimIo::reboot`] each file keeps its synced bytes
//!   plus a seed-derived prefix of its unsynced tail (a power loss may
//!   persist any prefix of un-fsynced data).
//!
//! Op indices count *mutating* syscalls plus reads (create, open,
//! write, truncate, sync, rename, read) in issue order, so a crash
//! schedule `crash_at(k)` is reproducible: same seed, same workload,
//! same surviving bytes. `exists` is a pure query and is not an op.
//!
//! Error classification mirrors the runtime's `JobError` taxonomy:
//! [`classify_io`] maps an `io::Error` to transient (worth a bounded
//! deterministic retry), permanent (`ENOSPC` — retire the journal
//! immediately), or crash (the simulated process is gone; only the
//! torture harness continues past it).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::codec::fnv1a;

/// An open, append-positioned file handle on a storage backend.
///
/// `io::Write` supplies `write`/`flush`; the two extra methods are the
/// durability points the journal and snapshot writers need.
pub trait StorageFile: io::Write + Send + fmt::Debug {
    /// Forces written bytes to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Backend failure; on [`SimIo`] a scripted sync fault.
    fn sync_all(&mut self) -> io::Result<()>;

    /// Truncates the file to `len` bytes and repositions the append
    /// cursor there — the repair step after a short write left torn
    /// bytes past the last trusted record.
    ///
    /// # Errors
    ///
    /// Backend failure; on [`SimIo`] a scripted crash.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A storage backend: the five syscalls the durability stack is
/// allowed to issue. [`RealIo`] passes through to `std::fs`; [`SimIo`]
/// replays them against a deterministic in-memory disk.
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Creates (truncating any existing file) and opens for append.
    ///
    /// # Errors
    ///
    /// Backend failure; on [`SimIo`] a scripted `ENOSPC` or crash.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Opens an existing file, truncates it to `valid_len` (discarding
    /// a torn or corrupt tail), and positions for append.
    ///
    /// # Errors
    ///
    /// Backend failure, including a missing file.
    fn open_truncated(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn StorageFile>>;

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Backend failure, including a missing file.
    fn read_all(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically replaces `to` with `from` — the commit point of the
    /// write-tmp-sync-rename snapshot protocol. Renames are modeled as
    /// atomic and immediately durable (journaled-filesystem metadata
    /// semantics); file *content* durability still requires
    /// [`StorageFile::sync_all`] before the rename.
    ///
    /// # Errors
    ///
    /// Backend failure, including a missing source.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Whether a file exists. A pure query, not an op.
    fn exists(&self, path: &Path) -> bool;
}

/// Production backend: a thin passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealIo;

#[derive(Debug)]
struct RealFile {
    file: std::fs::File,
}

impl io::Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl StorageFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }
}

impl StorageIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn open_truncated(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn StorageFile>> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(RealFile { file }))
    }

    fn read_all(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The raw OS error code `ENOSPC` maps to (`StorageFull`).
pub const ENOSPC_RAW: i32 = 28;
/// The raw OS error code `EIO` maps to — the transient face of a
/// flaky device.
pub const EIO_RAW: i32 = 5;

/// What a journal/snapshot writer should do with a failed IO op —
/// the storage-layer mirror of the runtime's `JobError` transient/
/// permanent split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorClass {
    /// Worth a bounded deterministic retry (flaky device, `EIO`).
    Transient,
    /// Retrying cannot help (`ENOSPC`); retire the journal now.
    Permanent,
    /// The simulated process died at this op; nothing after it runs.
    Crash,
}

/// Classifies an IO error for the retry/retire decision.
#[must_use]
pub fn classify_io(e: &io::Error) -> IoErrorClass {
    if is_sim_crash(e) {
        IoErrorClass::Crash
    } else if e.raw_os_error() == Some(ENOSPC_RAW) || e.kind() == io::ErrorKind::StorageFull {
        IoErrorClass::Permanent
    } else {
        IoErrorClass::Transient
    }
}

/// The payload [`SimIo`] attaches to every op after a scripted crash.
#[derive(Debug)]
struct SimCrash {
    op: u64,
}

impl fmt::Display for SimCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated process crash at io op {}", self.op)
    }
}

impl std::error::Error for SimCrash {}

/// Whether an IO error is a [`SimIo`] scripted crash — the torture
/// harness's signal that the "process" died and a resume should be
/// attempted against the surviving disk.
#[must_use]
pub fn is_sim_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<SimCrash>())
}

fn crash_error(op: u64) -> io::Error {
    io::Error::other(SimCrash { op })
}

fn no_space_error() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC_RAW)
}

fn sync_fail_error() -> io::Error {
    io::Error::from_raw_os_error(EIO_RAW)
}

fn short_write_error(wrote: usize, len: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::WriteZero,
        format!("simulated short write: {wrote} of {len} bytes reached the device"),
    )
}

/// SplitMix64 — the one-shot mixer behind every fault draw, so a
/// schedule is a pure function of (seed, op-index).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which syscall an op index belongs to; faults are kind-specific
/// (a sync cannot hit `ENOSPC`, a rename cannot short-write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Create,
    Open,
    Write,
    Truncate,
    Sync,
    Rename,
    Read,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimFault {
    ShortWrite,
    NoSpace,
    SyncFail,
    Crash,
}

/// A seeded fault schedule: which fault (if any) fires at each op
/// index. Pure in (seed, op-index, op-kind) — the storage-layer
/// sibling of `FaultPlan`, with per-mille rates instead of per-job
/// probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultScript {
    seed: u64,
    short_write_per_mille: u16,
    no_space_per_mille: u16,
    sync_fail_per_mille: u16,
    crash_per_mille: u16,
    crash_at: Option<u64>,
}

impl IoFaultScript {
    /// A script that never faults: [`SimIo`] behaves as a perfect disk.
    #[must_use]
    pub fn healthy(seed: u64) -> IoFaultScript {
        IoFaultScript {
            seed,
            short_write_per_mille: 0,
            no_space_per_mille: 0,
            sync_fail_per_mille: 0,
            crash_per_mille: 0,
            crash_at: None,
        }
    }

    /// A script whose only fault is a hard crash at op index `op`.
    #[must_use]
    pub fn crash_at(seed: u64, op: u64) -> IoFaultScript {
        IoFaultScript {
            crash_at: Some(op),
            ..IoFaultScript::healthy(seed)
        }
    }

    /// The torture gate's default randomized mix: occasional short
    /// writes, rare `ENOSPC`, flaky syncs, and a small crash hazard at
    /// every op.
    #[must_use]
    pub fn mixed(seed: u64) -> IoFaultScript {
        IoFaultScript::healthy(seed).with_rates(25, 8, 40, 4)
    }

    /// Overrides the per-mille fault rates (clamped to 1000 total by
    /// the draw itself; rates are cumulative edges on one d1000 roll).
    #[must_use]
    pub fn with_rates(
        mut self,
        short_write_per_mille: u16,
        no_space_per_mille: u16,
        sync_fail_per_mille: u16,
        crash_per_mille: u16,
    ) -> IoFaultScript {
        self.short_write_per_mille = short_write_per_mille;
        self.no_space_per_mille = no_space_per_mille;
        self.sync_fail_per_mille = sync_fail_per_mille;
        self.crash_per_mille = crash_per_mille;
        self
    }

    /// Adds a deterministic hard crash at op index `op`.
    #[must_use]
    pub fn with_crash_at(mut self, op: u64) -> IoFaultScript {
        self.crash_at = Some(op);
        self
    }

    /// The script's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn roll(&self, op: u64) -> u64 {
        splitmix64(self.seed ^ op.wrapping_mul(0xA076_1D64_78BD_642F)) % 1000
    }

    fn decide(&self, op: u64, kind: OpKind) -> Option<SimFault> {
        if self.crash_at == Some(op) {
            return Some(SimFault::Crash);
        }
        let roll = self.roll(op);
        let mut edge = u64::from(self.crash_per_mille);
        if roll < edge {
            return Some(SimFault::Crash);
        }
        match kind {
            OpKind::Write => {
                edge += u64::from(self.short_write_per_mille);
                if roll < edge {
                    return Some(SimFault::ShortWrite);
                }
                edge += u64::from(self.no_space_per_mille);
                if roll < edge {
                    return Some(SimFault::NoSpace);
                }
            }
            OpKind::Create => {
                edge += u64::from(self.no_space_per_mille);
                if roll < edge {
                    return Some(SimFault::NoSpace);
                }
            }
            OpKind::Sync => {
                edge += u64::from(self.sync_fail_per_mille);
                if roll < edge {
                    return Some(SimFault::SyncFail);
                }
            }
            OpKind::Open | OpKind::Truncate | OpKind::Rename | OpKind::Read => {}
        }
        None
    }
}

/// One simulated file: its bytes plus how many of them have been
/// fsynced (and therefore survive a crash unconditionally).
#[derive(Debug, Default)]
struct SimFileState {
    bytes: Vec<u8>,
    synced_len: usize,
}

#[derive(Debug)]
struct SimState {
    files: BTreeMap<PathBuf, SimFileState>,
    script: IoFaultScript,
    ops: u64,
    faults: u64,
    crashed: bool,
}

impl SimState {
    /// Charges one op: fails if the process already crashed, draws the
    /// script's fault for this index, and applies crash semantics.
    fn next_op(&mut self, kind: OpKind) -> io::Result<(u64, Option<SimFault>)> {
        if self.crashed {
            return Err(crash_error(self.ops));
        }
        let op = self.ops;
        self.ops += 1;
        let fault = self.script.decide(op, kind);
        if fault == Some(SimFault::Crash) {
            self.faults += 1;
            self.crashed = true;
            self.apply_crash(op);
            return Err(crash_error(op));
        }
        if fault.is_some() {
            self.faults += 1;
        }
        Ok((op, fault))
    }

    /// Power-loss semantics: each file keeps its synced bytes plus a
    /// seed-derived prefix of its unsynced tail.
    fn apply_crash(&mut self, op: u64) {
        let seed = self.script.seed;
        for (path, file) in &mut self.files {
            let unsynced = file.bytes.len().saturating_sub(file.synced_len);
            if unsynced == 0 {
                continue;
            }
            let path_hash = fnv1a(path.as_os_str().as_encoded_bytes());
            let cut = splitmix64(seed ^ op.rotate_left(23) ^ path_hash) as usize % (unsynced + 1);
            let keep = file.synced_len + cut;
            file.bytes.truncate(keep);
            file.synced_len = keep;
        }
    }
}

fn lock_state(state: &Mutex<SimState>) -> MutexGuard<'_, SimState> {
    match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic in-memory disk with scripted faults. Cloning
/// shares the disk (the clone is another handle on the same state),
/// so a harness can hold one handle while the runtime writes through
/// another.
#[derive(Debug, Clone)]
pub struct SimIo {
    state: Arc<Mutex<SimState>>,
}

impl SimIo {
    /// A fresh empty disk driven by `script`.
    #[must_use]
    pub fn new(script: IoFaultScript) -> SimIo {
        SimIo {
            state: Arc::new(Mutex::new(SimState {
                files: BTreeMap::new(),
                script,
                ops: 0,
                faults: 0,
                crashed: false,
            })),
        }
    }

    /// A fresh disk that never faults.
    #[must_use]
    pub fn perfect(seed: u64) -> SimIo {
        SimIo::new(IoFaultScript::healthy(seed))
    }

    /// Ops issued so far (the next op gets this index).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        lock_state(&self.state).ops
    }

    /// Faults injected so far (crash included).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        lock_state(&self.state).faults
    }

    /// Whether a scripted crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        lock_state(&self.state).crashed
    }

    /// Replaces the fault script (for staged schedules: populate the
    /// disk healthily, then arm a crash).
    pub fn set_script(&self, script: IoFaultScript) {
        lock_state(&self.state).script = script;
    }

    /// Brings the "machine" back after a crash with a fault-free
    /// script: the surviving bytes are exactly what the power-loss
    /// rule kept (synced exactly, unsynced tail as a seed-derived
    /// prefix). No-op if no crash fired.
    pub fn reboot(&self) {
        let mut state = lock_state(&self.state);
        let seed = state.script.seed;
        state.crashed = false;
        state.script = IoFaultScript::healthy(seed);
    }

    /// The current bytes of a simulated file (None if absent).
    #[must_use]
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        lock_state(&self.state)
            .files
            .get(path)
            .map(|f| f.bytes.clone())
    }
}

#[derive(Debug)]
struct SimFile {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
}

impl io::Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = lock_state(&self.state);
        let (op, fault) = state.next_op(OpKind::Write)?;
        let seed = state.script.seed;
        let Some(file) = state.files.get_mut(&self.path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "simulated file vanished",
            ));
        };
        match fault {
            None => {
                file.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(SimFault::ShortWrite) => {
                let wrote = if buf.is_empty() {
                    0
                } else {
                    splitmix64(seed ^ op.rotate_left(41)) as usize % buf.len()
                };
                file.bytes
                    .extend_from_slice(buf.get(..wrote).unwrap_or(buf));
                Err(short_write_error(wrote, buf.len()))
            }
            Some(SimFault::NoSpace) => Err(no_space_error()),
            // `decide` never yields these for a write; keep the match
            // total without a panic.
            Some(SimFault::SyncFail | SimFault::Crash) => Err(sync_fail_error()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Userspace flush; the sim has no buffering between the
        // handle and the "page cache", so this is free and infallible.
        Ok(())
    }
}

impl StorageFile for SimFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        let (_, fault) = state.next_op(OpKind::Sync)?;
        if fault == Some(SimFault::SyncFail) {
            return Err(sync_fail_error());
        }
        let Some(file) = state.files.get_mut(&self.path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "simulated file vanished",
            ));
        };
        file.synced_len = file.bytes.len();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        state.next_op(OpKind::Truncate)?;
        let Some(file) = state.files.get_mut(&self.path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "simulated file vanished",
            ));
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        file.bytes.truncate(len);
        file.synced_len = file.synced_len.min(len);
        Ok(())
    }
}

impl StorageIo for SimIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut state = lock_state(&self.state);
        let (_, fault) = state.next_op(OpKind::Create)?;
        if fault == Some(SimFault::NoSpace) {
            return Err(no_space_error());
        }
        state
            .files
            .insert(path.to_path_buf(), SimFileState::default());
        Ok(Box::new(SimFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn open_truncated(&self, path: &Path, valid_len: u64) -> io::Result<Box<dyn StorageFile>> {
        let mut state = lock_state(&self.state);
        state.next_op(OpKind::Open)?;
        let Some(file) = state.files.get_mut(path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            ));
        };
        let len = usize::try_from(valid_len).unwrap_or(usize::MAX);
        file.bytes.truncate(len);
        file.synced_len = file.synced_len.min(len);
        Ok(Box::new(SimFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn read_all(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut state = lock_state(&self.state);
        state.next_op(OpKind::Read)?;
        match state.files.get(path) {
            Some(file) => Ok(file.bytes.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        state.next_op(OpKind::Rename)?;
        match state.files.remove(from) {
            Some(file) => {
                state.files.insert(to.to_path_buf(), file);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        lock_state(&self.state).files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(format!("/sim/{name}"))
    }

    #[test]
    fn scripts_are_pure_in_seed_and_op_index() {
        let script = IoFaultScript::mixed(42);
        for op in 0..512 {
            for kind in [OpKind::Write, OpKind::Sync, OpKind::Create] {
                assert_eq!(script.decide(op, kind), script.decide(op, kind));
            }
        }
        // Different seeds disagree somewhere in the first few hundred
        // ops (a vanishing-probability flake would mean splitmix64 is
        // broken).
        let other = IoFaultScript::mixed(43);
        assert!(
            (0..512).any(|op| script.decide(op, OpKind::Write) != other.decide(op, OpKind::Write))
        );
    }

    #[test]
    fn healthy_sim_round_trips_bytes() {
        let io = SimIo::perfect(1);
        let mut f = io.create(&p("a")).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(io.read_all(&p("a")).unwrap(), b"hello world");
        assert!(io.exists(&p("a")));
        assert!(!io.exists(&p("b")));
        assert_eq!(io.faults_injected(), 0);
    }

    #[test]
    fn short_write_leaves_partial_bytes_and_errors() {
        // Fault rate 1000‰ short writes: the first write must fail.
        let io = SimIo::new(IoFaultScript::healthy(7).with_rates(1000, 0, 0, 0));
        let mut f = io.create(&p("torn")).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(classify_io(&err), IoErrorClass::Transient);
        let bytes = io.file_bytes(&p("torn")).unwrap();
        assert!(bytes.len() < 10, "short write must not complete");
        assert!(b"0123456789".starts_with(&bytes));
    }

    #[test]
    fn enospc_is_permanent_and_lands_nothing() {
        let io = SimIo::new(IoFaultScript::healthy(7).with_rates(0, 1000, 0, 0));
        // The create itself hits ENOSPC at op 0.
        let err = io.create(&p("full")).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC_RAW));
        assert_eq!(classify_io(&err), IoErrorClass::Permanent);
    }

    #[test]
    fn failed_sync_is_transient_and_keeps_data_volatile() {
        let io = SimIo::new(IoFaultScript::healthy(9).with_rates(0, 0, 1000, 0));
        let mut f = io.create(&p("v")).unwrap();
        f.write_all(b"volatile").unwrap();
        let err = f.sync_all().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO_RAW));
        assert_eq!(classify_io(&err), IoErrorClass::Transient);
    }

    #[test]
    fn crash_freezes_the_disk_until_reboot() {
        let io = SimIo::new(IoFaultScript::crash_at(3, 4));
        let mut f = io.create(&p("j")).unwrap(); // op 0
        f.write_all(b"aa").unwrap(); // op 1
        f.sync_all().unwrap(); // op 2
        f.write_all(b"bbbb").unwrap(); // op 3
        let err = f.sync_all().unwrap_err(); // op 4 → crash
        assert!(is_sim_crash(&err));
        assert_eq!(classify_io(&err), IoErrorClass::Crash);
        // Everything after the crash fails the same way.
        assert!(is_sim_crash(&f.write_all(b"x").unwrap_err()));
        assert!(is_sim_crash(&io.read_all(&p("j")).unwrap_err()));
        assert!(io.crashed());
        io.reboot();
        let bytes = io.read_all(&p("j")).unwrap();
        // Synced prefix always survives; the unsynced tail survives
        // only as a (possibly empty) prefix.
        assert!(bytes.len() >= 2 && bytes.len() <= 6);
        assert!(b"aabbbb".starts_with(&bytes));
    }

    #[test]
    fn crash_survival_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let io = SimIo::new(IoFaultScript::crash_at(seed, 3));
            let mut f = io.create(&p("d")).unwrap();
            f.write_all(b"0123456789abcdef").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"TAIL-TAIL-TAIL").unwrap_err(); // op 3 → crash
            io.reboot();
            io.read_all(&p("d")).unwrap()
        };
        assert_eq!(run(5), run(5));
        // Synced bytes survive under every seed.
        assert!(run(5).len() >= 16 && run(6).len() >= 16);
    }

    #[test]
    fn rename_replaces_destination() {
        let io = SimIo::perfect(0);
        let mut old = io.create(&p("snap")).unwrap();
        old.write_all(b"old").unwrap();
        old.sync_all().unwrap();
        drop(old);
        let mut tmp = io.create(&p("snap.tmp")).unwrap();
        tmp.write_all(b"new").unwrap();
        tmp.sync_all().unwrap();
        drop(tmp);
        io.rename(&p("snap.tmp"), &p("snap")).unwrap();
        assert_eq!(io.read_all(&p("snap")).unwrap(), b"new");
        assert!(!io.exists(&p("snap.tmp")));
    }

    #[test]
    fn real_io_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join("bios-recover-sim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("real-{}.bin", std::process::id()));
        let io = RealIo;
        let mut f = io.create(&path).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.sync_all().unwrap();
        f.truncate(4).unwrap();
        f.write_all(b"XY").unwrap();
        f.flush().unwrap();
        drop(f);
        assert_eq!(io.read_all(&path).unwrap(), b"0123XY");
        assert!(io.exists(&path));
        let renamed = dir.join(format!("real-{}.renamed", std::process::id()));
        io.rename(&path, &renamed).unwrap();
        assert!(!io.exists(&path) && io.exists(&renamed));
        let mut f = io.open_truncated(&renamed, 4).unwrap();
        f.write_all(b"Z").unwrap();
        drop(f);
        assert_eq!(io.read_all(&renamed).unwrap(), b"0123Z");
        std::fs::remove_file(&renamed).ok();
    }

    #[test]
    fn open_truncated_discards_the_torn_tail() {
        let io = SimIo::perfect(2);
        let mut f = io.create(&p("t")).unwrap();
        f.write_all(b"good-bytes").unwrap();
        f.sync_all().unwrap();
        f.write_all(b"torn").unwrap();
        drop(f);
        let mut f = io.open_truncated(&p("t"), 10).unwrap();
        f.write_all(b"-more").unwrap();
        drop(f);
        assert_eq!(io.read_all(&p("t")).unwrap(), b"good-bytes-more");
    }
}

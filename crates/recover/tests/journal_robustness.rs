//! Journal robustness under byte-level damage.
//!
//! Property: for a valid journal, *any* single truncation or bit flip
//! yields either a clean load with correctly reduced contents or a
//! typed [`JournalError`] — never a panic and never a silently wrong
//! answer (jobs that survived the damage must decode verbatim).

// Test setup helpers abort on I/O failure like the tests themselves;
// clippy only auto-exempts `#[test]` functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use bios_recover::journal::{
    Disposition, JobDone, JournalError, JournalReader, JournalWriter, Record, RunHeader,
};

fn temp_path(name: &str, tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("bios-recover-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}-{tag}.journal", std::process::id()))
}

fn sample_jobs(n: u64) -> Vec<JobDone> {
    (0..n)
        .map(|i| JobDone {
            index: i,
            disposition: match i % 3 {
                0 => Disposition::Completed,
                1 => Disposition::Degraded,
                _ => Disposition::Failed,
            },
            attempts: i % 4 + 1,
            digest_line: format!("sensor-{i}/ours seed={i} summary={:.6}", i as f64 * 0.37),
        })
        .collect()
}

fn write_journal(path: &std::path::Path, jobs: &[JobDone], seal: bool) -> Vec<u8> {
    let header = RunHeader {
        fleet: "robustness".into(),
        fingerprint: 0x5EED_CAFE_F00D_D00D,
        jobs: jobs.len() as u64,
    };
    let mut w = JournalWriter::create(path, &header).unwrap();
    for j in jobs {
        w.append(&Record::JobDone(j.clone())).unwrap();
    }
    if seal {
        w.seal(jobs.len() as u64, 0x00DE_ADD1_6E57).unwrap();
    }
    std::fs::read(path).unwrap()
}

/// Loads must never report jobs that differ from what was written:
/// every surviving job record must match the original at its index
/// position in append order.
fn assert_no_silent_corruption(jobs_written: &[JobDone], loaded: &[JobDone]) {
    assert!(loaded.len() <= jobs_written.len());
    for (got, want) in loaded.iter().zip(jobs_written.iter()) {
        assert_eq!(got, want, "surviving record must decode verbatim");
    }
}

#[test]
fn truncation_at_every_offset_never_panics_or_lies() {
    let path = temp_path("truncate", 0);
    let jobs = sample_jobs(5);
    let full = write_journal(&path, &jobs, true);
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        match JournalReader::load(&path) {
            Ok(loaded) => {
                assert_no_silent_corruption(&jobs, &loaded.jobs);
                // A truncated file can never still claim to be sealed
                // unless the cut landed exactly after the seal record —
                // impossible here because cut < full.len().
                assert!(!loaded.sealed, "cut at {cut} cannot keep the seal");
                assert!(loaded.valid_len <= cut as u64);
            }
            Err(JournalError::BadMagic | JournalError::HeaderMissing) => {
                // Damage hit the magic or the header frame; typed error
                // is the correct outcome.
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flip_at_every_offset_never_panics_or_lies() {
    let path = temp_path("flip", 0);
    let jobs = sample_jobs(4);
    let full = write_journal(&path, &jobs, true);
    for pos in 0..full.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut damaged = full.clone();
            damaged[pos] ^= bit;
            std::fs::write(&path, &damaged).unwrap();
            match JournalReader::load(&path) {
                Ok(loaded) => {
                    assert_no_silent_corruption(&jobs, &loaded.jobs);
                }
                Err(
                    JournalError::BadMagic | JournalError::HeaderMissing | JournalError::Corrupt(_),
                ) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other}"),
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_multi_byte_damage_is_contained() {
    // Heavier randomized damage via the in-tree property driver: pick a
    // journal shape, splat random bytes over a random window, load.
    bios_prng::cases(0xB105_F00D, 64, |rng| {
        let tag = rng.next_u64();
        let path = temp_path("splat", tag);
        let jobs = sample_jobs(rng.next_u64() % 6 + 1);
        let seal = rng.next_u64() % 2 == 0;
        let mut bytes = write_journal(&path, &jobs, seal);
        let start = (rng.next_u64() as usize) % bytes.len();
        let len = ((rng.next_u64() as usize) % 16)
            .min(bytes.len() - start)
            .max(1);
        for b in &mut bytes[start..start + len] {
            *b = rng.next_u64() as u8;
        }
        std::fs::write(&path, &bytes).unwrap();
        match JournalReader::load(&path) {
            Ok(loaded) => assert_no_silent_corruption(&jobs, &loaded.jobs),
            Err(
                JournalError::BadMagic | JournalError::HeaderMissing | JournalError::Corrupt(_),
            ) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    });
}

#[test]
fn resume_after_damage_replays_only_trusted_records() {
    // The full crash story: damage the tail, load, truncate to
    // valid_len, append the remainder, and verify the reloaded journal
    // contains exactly written-prefix + appended-suffix.
    bios_prng::cases(0xC4A5_4E5A, 48, |rng| {
        let tag = rng.next_u64();
        let path = temp_path("resume", tag);
        let jobs = sample_jobs(5);
        let full = write_journal(&path, &jobs, false);
        // Cut somewhere after the magic so a header usually survives.
        let cut = 8 + (rng.next_u64() as usize) % (full.len() - 8);
        std::fs::write(&path, &full[..cut]).unwrap();
        let loaded = match JournalReader::load(&path) {
            Ok(l) => l,
            Err(JournalError::HeaderMissing) => {
                // Header itself was cut — a resume would restart from
                // scratch; nothing further to check here.
                std::fs::remove_file(&path).ok();
                return;
            }
            Err(other) => panic!("unexpected error {other}"),
        };
        let survived = loaded.jobs.len();
        assert_no_silent_corruption(&jobs, &loaded.jobs);
        let mut w = JournalWriter::open_resume(&path, loaded.valid_len).unwrap();
        for j in &jobs[survived..] {
            w.append(&Record::JobDone(j.clone())).unwrap();
        }
        w.seal(jobs.len() as u64, 0xF1A7).unwrap();
        let reloaded = JournalReader::load(&path).unwrap();
        assert!(reloaded.sealed);
        assert_eq!(
            reloaded.jobs, jobs,
            "resumed journal must equal uninterrupted one"
        );
        std::fs::remove_file(&path).ok();
    });
}

//! The memoizing result cache.
//!
//! Catalog calibrations are pure functions of `(sensor configuration,
//! seed, armed fault plan)`: the same entry calibrated under the same
//! seed and plan produces the same [`CalibrationOutcome`] bit for bit.
//! Benches, tables, and examples re-run the same configurations
//! constantly, so the runtime memoizes outcomes behind a sharded map
//! keyed by `(sensor id, protocol fingerprint, plan fingerprint, seed)`.
//!
//! The protocol fingerprint ([`bios_core::catalog::CatalogEntry::protocol_fingerprint`])
//! covers every field that feeds the calibration — electrode, film
//! recipe, technique, sweep — so two entries sharing an id but differing
//! in recipe can never alias each other's results. The plan fingerprint
//! ([`bios_faults::FaultPlan::fingerprint`]) does the same for injected
//! faults: a faulted outcome can never masquerade as a healthy one
//! (jobs whose realization is healthy store under plan fingerprint 0,
//! because their outcome *is* the healthy outcome).
//!
//! The cache is **bounded**: each shard evicts its least-recently-used
//! entry once it exceeds its share of the configured capacity, so a
//! long-lived runtime sweeping thousands of seeds cannot grow without
//! limit. Evictions are counted and surfaced through the runtime
//! metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bios_core::catalog::CalibrationOutcome;

/// Number of independent shards; a small power of two keeps lock
/// contention negligible at any plausible worker count.
const SHARDS: usize = 16;

/// Default total capacity (entries across all shards) when the caller
/// does not configure one.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The cache key: which sensor, which exact protocol, which fault
/// plan, which seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog id of the sensor (e.g. `"glucose/ours"`).
    pub sensor: String,
    /// Fingerprint of the full calibration recipe.
    pub protocol: u64,
    /// Fingerprint of the armed fault plan, or 0 when the job ran
    /// healthy (no plan, or a plan that realized nothing for this job).
    pub plan: u64,
    /// The noise seed of the run.
    pub seed: u64,
}

/// One shard: the map plus a monotonic touch counter. An entry's stamp
/// is the shard tick at its last get/insert, so the minimum stamp is
/// the least-recently-used entry.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, (Arc<CalibrationOutcome>, u64)>,
    tick: u64,
}

/// A sharded, thread-safe, bounded memo table of calibration outcomes.
///
/// Outcomes are stored behind `Arc` so a cache hit is a pointer clone,
/// not a deep copy of the calibration curve.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound; `usize::MAX` when unbounded.
    shard_capacity: usize,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl ResultCache {
    /// Creates an empty cache bounded at [`DEFAULT_CAPACITY`] entries.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` total entries
    /// (0 means unbounded). The bound is enforced per shard, so the
    /// effective total can exceed `capacity` by at most `SHARDS − 1`
    /// rounding entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> ResultCache {
        let shard_capacity = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(SHARDS).max(1)
        };
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized outcome, refreshing its recency stamp.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CalibrationOutcome>> {
        let mut shard = self.shard(key).lock().ok()?;
        shard.tick += 1;
        let tick = shard.tick;
        let (outcome, stamp) = shard.map.get_mut(key)?;
        *stamp = tick;
        Some(Arc::clone(outcome))
    }

    /// Stores an outcome, returning the shared handle. Evicts the
    /// shard's least-recently-used entry when the shard is over
    /// capacity.
    pub fn insert(&self, key: CacheKey, outcome: CalibrationOutcome) -> Arc<CalibrationOutcome> {
        let outcome = Arc::new(outcome);
        if let Ok(mut shard) = self.shard(&key).lock() {
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.insert(key, (Arc::clone(&outcome), tick));
            while shard.map.len() > self.shard_capacity {
                let oldest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        shard.map.remove(&k);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        outcome
    }

    /// Number of memoized outcomes across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |shard| shard.map.len()))
            .sum()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the capacity bound since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every memoized outcome (does not count as evictions).
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut shard) = shard.lock() {
                shard.map.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    fn key(seed: u64) -> CacheKey {
        let entry = catalog::our_glucose_sensor();
        CacheKey {
            sensor: entry.id().to_owned(),
            protocol: entry.protocol_fingerprint(),
            plan: 0,
            seed,
        }
    }

    #[test]
    fn round_trips_an_outcome() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        assert!(cache.get(&key(7)).is_none());
        cache.insert(key(7), outcome.clone());
        let hit = cache.get(&key(7)).expect("hit");
        assert_eq!(hit.summary, outcome.summary);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinguishes_seeds() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(7), outcome);
        assert!(cache.get(&key(8)).is_none());
    }

    #[test]
    fn distinguishes_fault_plans() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(7), outcome);
        let mut faulted = key(7);
        faulted.plan = 0xDEAD_BEEF;
        assert!(
            cache.get(&faulted).is_none(),
            "a faulted job must never be served the healthy outcome"
        );
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..40 {
            cache.insert(key(seed), outcome.clone());
        }
        assert_eq!(cache.len(), 40);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0, "clear is not eviction");
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        // Capacity 16 → one entry per shard; every shard over-fills
        // quickly with 200 distinct seeds.
        let cache = ResultCache::with_capacity(16);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..200 {
            cache.insert(key(seed), outcome.clone());
        }
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
        assert!(cache.evictions() >= 184, "evictions {}", cache.evictions());
    }

    #[test]
    fn recently_touched_entries_survive_eviction() {
        // 64 entries → 4 per shard: room for the hot entry plus churn.
        let cache = ResultCache::with_capacity(64);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(0), outcome.clone());
        // Keep touching seed 0 while flooding; it must stay resident
        // even as its shard cycles through colliding keys.
        for seed in 1..400 {
            let _ = cache.get(&key(0));
            cache.insert(key(seed), outcome.clone());
        }
        assert!(cache.get(&key(0)).is_some(), "hot entry was evicted");
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = ResultCache::with_capacity(0);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..300 {
            cache.insert(key(seed), outcome.clone());
        }
        assert_eq!(cache.len(), 300);
        assert_eq!(cache.evictions(), 0);
    }
}

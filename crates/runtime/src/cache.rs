//! The memoizing result cache.
//!
//! Catalog calibrations are pure functions of `(sensor configuration,
//! seed)`: the same entry calibrated under the same seed produces the
//! same [`CalibrationOutcome`] bit for bit. Benches, tables, and
//! examples re-run the same configurations constantly, so the runtime
//! memoizes outcomes behind a sharded map keyed by
//! `(sensor id, protocol fingerprint, seed)`.
//!
//! The protocol fingerprint ([`bios_core::catalog::CatalogEntry::protocol_fingerprint`])
//! covers every field that feeds the calibration — electrode, film
//! recipe, technique, sweep — so two entries sharing an id but differing
//! in recipe can never alias each other's results.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bios_core::catalog::CalibrationOutcome;

/// Number of independent shards; a small power of two keeps lock
/// contention negligible at any plausible worker count.
const SHARDS: usize = 16;

/// The cache key: which sensor, which exact protocol, which seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog id of the sensor (e.g. `"glucose/ours"`).
    pub sensor: String,
    /// Fingerprint of the full calibration recipe.
    pub protocol: u64,
    /// The noise seed of the run.
    pub seed: u64,
}

/// A sharded, thread-safe memo table of calibration outcomes.
///
/// Outcomes are stored behind `Arc` so a cache hit is a pointer clone,
/// not a deep copy of the calibration curve.
#[derive(Debug, Default)]
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<CalibrationOutcome>>>>,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Arc<CalibrationOutcome>>> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized outcome.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CalibrationOutcome>> {
        self.shard(key).lock().ok()?.get(key).cloned()
    }

    /// Stores an outcome, returning the shared handle.
    pub fn insert(&self, key: CacheKey, outcome: CalibrationOutcome) -> Arc<CalibrationOutcome> {
        let outcome = Arc::new(outcome);
        if let Ok(mut shard) = self.shard(&key).lock() {
            shard.insert(key, Arc::clone(&outcome));
        }
        outcome
    }

    /// Number of memoized outcomes across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |m| m.len()))
            .sum()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized outcome.
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut map) = shard.lock() {
                map.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    fn key(seed: u64) -> CacheKey {
        let entry = catalog::our_glucose_sensor();
        CacheKey {
            sensor: entry.id().to_owned(),
            protocol: entry.protocol_fingerprint(),
            seed,
        }
    }

    #[test]
    fn round_trips_an_outcome() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        assert!(cache.get(&key(7)).is_none());
        cache.insert(key(7), outcome.clone());
        let hit = cache.get(&key(7)).expect("hit");
        assert_eq!(hit.summary, outcome.summary);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinguishes_seeds() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(7), outcome);
        assert!(cache.get(&key(8)).is_none());
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..40 {
            cache.insert(key(seed), outcome.clone());
        }
        assert_eq!(cache.len(), 40);
        cache.clear();
        assert!(cache.is_empty());
    }
}

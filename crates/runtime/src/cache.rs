//! The memoizing result cache.
//!
//! Catalog calibrations are pure functions of `(sensor configuration,
//! seed, armed fault plan)`: the same entry calibrated under the same
//! seed and plan produces the same [`CalibrationOutcome`] bit for bit.
//! Benches, tables, and examples re-run the same configurations
//! constantly, so the runtime memoizes outcomes behind a sharded map
//! keyed by `(sensor id, protocol fingerprint, plan fingerprint, seed)`.
//!
//! The protocol fingerprint ([`bios_core::catalog::CatalogEntry::protocol_fingerprint`])
//! covers every field that feeds the calibration — electrode, film
//! recipe, technique, sweep — so two entries sharing an id but differing
//! in recipe can never alias each other's results. The plan fingerprint
//! ([`bios_faults::FaultPlan::fingerprint`]) does the same for injected
//! faults: a faulted outcome can never masquerade as a healthy one
//! (jobs whose realization is healthy store under plan fingerprint 0,
//! because their outcome *is* the healthy outcome).
//!
//! The cache is **bounded**: each shard evicts its least-recently-used
//! entry once it exceeds its share of the configured capacity, so a
//! long-lived runtime sweeping thousands of seeds cannot grow without
//! limit. Evictions are counted and surfaced through the runtime
//! metrics.
//!
//! The cache is also **persistable**: [`ResultCache::save`] writes every
//! entry to a checksummed snapshot file (same frame discipline as the
//! run journal) and [`ResultCache::load`] reads one back, *dropping and
//! counting* — never serving — any entry that fails its checksum or
//! decodes to non-finite physics.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bios_analytics::{CalibrationCurve, CalibrationPoint, CalibrationSummary};
use bios_core::catalog::CalibrationOutcome;
use bios_recover::codec::{read_frame, write_frame, FrameRead};
use bios_recover::sim::{RealIo, StorageIo};
use bios_recover::{fnv1a, ByteReader, ByteWriter, CodecError};
use bios_units::{Amperes, ConcentrationRange, Molar, Sensitivity, SquareCm};

/// First bytes of a cache snapshot file.
const CACHE_MAGIC: &[u8; 8] = b"BIOSCSH1";

/// Snapshot format version carried in the header frame.
const CACHE_VERSION: u32 = 1;

/// Number of independent shards; a small power of two keeps lock
/// contention negligible at any plausible worker count.
const SHARDS: usize = 16;

/// Default total capacity (entries across all shards) when the caller
/// does not configure one.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The cache key: which sensor, which exact protocol, which fault
/// plan, which seed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Catalog id of the sensor (e.g. `"glucose/ours"`).
    pub sensor: String,
    /// Fingerprint of the full calibration recipe.
    pub protocol: u64,
    /// Fingerprint of the armed fault plan, or 0 when the job ran
    /// healthy (no plan, or a plan that realized nothing for this job).
    pub plan: u64,
    /// The noise seed of the run.
    pub seed: u64,
}

/// One shard: the map plus a monotonic touch counter. An entry's stamp
/// is the shard tick at its last get/insert, so the minimum stamp is
/// the least-recently-used entry. The third field is the entry's
/// integrity checksum, stamped at insert and re-verified at every
/// serve (see [`outcome_checksum`]).
#[derive(Debug, Default)]
struct Shard {
    map: BTreeMap<CacheKey, (Arc<CalibrationOutcome>, u64, u64)>,
    tick: u64,
}

/// Integrity checksum of a memoized outcome: FNV-1a over the exact
/// `{:?}` rendering of its summary that the fleet digest hashes. A
/// cache hit whose recomputed checksum no longer matches its insert
/// stamp was corrupted *at rest* — it is dropped and counted, never
/// served, because a finite-but-wrong summary would sail through
/// `NonFinite` quarantine and poison every later run that hits it.
fn outcome_checksum(outcome: &CalibrationOutcome) -> u64 {
    fnv1a(format!("{:?}", outcome.summary).as_bytes())
}

/// A sharded, thread-safe, bounded memo table of calibration outcomes.
///
/// Outcomes are stored behind `Arc` so a cache hit is a pointer clone,
/// not a deep copy of the calibration curve.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound; `usize::MAX` when unbounded.
    shard_capacity: usize,
    evictions: AtomicU64,
    corrupt_dropped: AtomicU64,
}

/// What [`ResultCache::load`] did with a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries that passed checksum + validation and were inserted.
    pub loaded: u64,
    /// Entries dropped for failing their checksum, decoding badly, or
    /// carrying non-finite/inconsistent physics. Never served.
    pub corrupt_dropped: u64,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl ResultCache {
    /// Creates an empty cache bounded at [`DEFAULT_CAPACITY`] entries.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` total entries
    /// (0 means unbounded). The bound is enforced per shard, so the
    /// effective total can exceed `capacity` by at most `SHARDS − 1`
    /// rounding entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> ResultCache {
        let shard_capacity = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(SHARDS).max(1)
        };
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            evictions: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        // bios-audit: allow(P-index) — `% SHARDS` keeps the index in bounds
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized outcome, refreshing its recency stamp. The
    /// entry's integrity checksum is re-verified before it is served; a
    /// mismatch drops the entry (counted in
    /// [`ResultCache::corrupt_dropped`]) and reports a miss, so the
    /// caller recomputes instead of consuming rotten bytes.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CalibrationOutcome>> {
        let mut shard = self.shard(key).lock().ok()?;
        shard.tick += 1;
        let tick = shard.tick;
        let served = {
            let (outcome, stamp, sum) = shard.map.get_mut(key)?;
            if outcome_checksum(outcome) == *sum {
                *stamp = tick;
                Some(Arc::clone(outcome))
            } else {
                None
            }
        };
        if served.is_none() {
            shard.map.remove(key);
            self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
        }
        served
    }

    /// Stores an outcome, returning the shared handle. Evicts the
    /// shard's least-recently-used entry when the shard is over
    /// capacity.
    pub fn insert(&self, key: CacheKey, outcome: CalibrationOutcome) -> Arc<CalibrationOutcome> {
        let sum = outcome_checksum(&outcome);
        let outcome = Arc::new(outcome);
        if let Ok(mut shard) = self.shard(&key).lock() {
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.insert(key, (Arc::clone(&outcome), tick, sum));
            while shard.map.len() > self.shard_capacity {
                let oldest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp, _))| *stamp)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        shard.map.remove(&k);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        outcome
    }

    /// Number of memoized outcomes across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |shard| shard.map.len()))
            .sum()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the capacity bound since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot entries dropped by [`ResultCache::load`] for corruption
    /// or failed validation since creation.
    #[must_use]
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped.load(Ordering::Relaxed)
    }

    /// Test hook: swaps the stored outcome under `key` *without*
    /// updating its integrity checksum — simulating silent at-rest
    /// corruption of a resident entry.
    #[cfg(test)]
    fn tamper(&self, key: &CacheKey, outcome: CalibrationOutcome) {
        if let Ok(mut shard) = self.shard(key).lock() {
            if let Some(entry) = shard.map.get_mut(key) {
                entry.0 = Arc::new(outcome);
            }
        }
    }

    /// Drops every memoized outcome (does not count as evictions).
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut shard) = shard.lock() {
                shard.map.clear();
            }
        }
    }

    /// Writes every entry to `path` as a checksummed snapshot and
    /// returns the entry count. Entries are written in recency order
    /// (least-recently-used first, per shard), so reloading them in file
    /// order reproduces each shard's eviction order.
    ///
    /// The replace is **atomic**: the snapshot is written to
    /// `<path>.tmp`, synced to stable storage, and renamed over the
    /// destination — a crash at any point leaves either the previous
    /// good snapshot or the new one, never a half-written file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the cache itself cannot fail.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.save_with(&RealIo, path)
    }

    /// [`ResultCache::save`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// As [`ResultCache::save`].
    pub fn save_with(&self, backend: &dyn StorageIo, path: impl AsRef<Path>) -> io::Result<u64> {
        let path = path.as_ref();
        let mut entries: Vec<(CacheKey, Arc<CalibrationOutcome>)> = Vec::new();
        for shard in &self.shards {
            let Ok(shard) = shard.lock() else { continue };
            let mut in_shard: Vec<_> = shard
                .map
                .iter()
                .map(|(k, (outcome, stamp, _))| (*stamp, k.clone(), Arc::clone(outcome)))
                .collect();
            in_shard.sort_by_key(|(stamp, _, _)| *stamp);
            entries.extend(in_shard.into_iter().map(|(_, k, o)| (k, o)));
        }
        // Serialize fully in memory first: the file sees whole frames
        // only, so a short write can never interleave with encoding.
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        buf.extend_from_slice(CACHE_MAGIC);
        let mut header = ByteWriter::new();
        header.put_u32(CACHE_VERSION);
        header.put_u64(entries.len() as u64);
        write_frame(&mut buf, header.bytes())?;
        for (key, outcome) in &entries {
            write_frame(&mut buf, &encode_entry(key, outcome))?;
        }
        let tmp = snapshot_tmp_path(path);
        let mut file = backend.create(&tmp)?;
        file.write_all(&buf)?;
        file.flush()?;
        file.sync_all()?;
        drop(file);
        backend.rename(&tmp, path)?;
        Ok(entries.len() as u64)
    }

    /// Loads a snapshot written by [`ResultCache::save`] into this
    /// cache, inserting entries in file order. Any entry that fails its
    /// checksum, decodes badly, or carries non-finite physics is
    /// dropped and counted — it can never be served. Framing after the
    /// first torn or corrupt frame is untrusted, so loading stops there
    /// and the undelivered remainder counts as dropped.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as-is; a file that is not a cache
    /// snapshot at all (bad magic, unreadable header, or unknown
    /// version) is [`io::ErrorKind::InvalidData`].
    pub fn load(&self, path: impl AsRef<Path>) -> io::Result<CacheLoadReport> {
        self.load_with(&RealIo, path)
    }

    /// [`ResultCache::load`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// As [`ResultCache::load`].
    pub fn load_with(
        &self,
        backend: &dyn StorageIo,
        path: impl AsRef<Path>,
    ) -> io::Result<CacheLoadReport> {
        let bytes = backend.read_all(path.as_ref())?;
        let mut r = io::Cursor::new(bytes);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| invalid_snapshot("file too short for a cache snapshot"))?;
        if &magic != CACHE_MAGIC {
            return Err(invalid_snapshot("not a cache snapshot (bad magic)"));
        }
        let header = match read_frame(&mut r)? {
            FrameRead::Payload(p) => p,
            _ => return Err(invalid_snapshot("cache snapshot header unreadable")),
        };
        let mut hr = ByteReader::new(&header);
        let (version, declared) = match (hr.get_u32(), hr.get_u64()) {
            (Ok(v), Ok(n)) => (v, n),
            _ => return Err(invalid_snapshot("cache snapshot header truncated")),
        };
        if version != CACHE_VERSION {
            return Err(invalid_snapshot("unknown cache snapshot version"));
        }
        let mut loaded = 0u64;
        let mut dropped = 0u64;
        for _ in 0..declared {
            match read_frame(&mut r)? {
                FrameRead::Payload(payload) => match decode_entry(&payload) {
                    Ok((key, outcome)) => {
                        self.insert(key, outcome);
                        loaded += 1;
                    }
                    Err(_) => dropped += 1,
                },
                // Torn or corrupt framing: nothing after it can be
                // trusted, so the rest of the declared entries are lost.
                FrameRead::Eof | FrameRead::TornTail | FrameRead::Corrupt(_) => {
                    dropped += declared - loaded - dropped;
                    break;
                }
            }
        }
        self.corrupt_dropped.fetch_add(dropped, Ordering::Relaxed);
        Ok(CacheLoadReport {
            loaded,
            corrupt_dropped: dropped,
        })
    }
}

fn invalid_snapshot(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// `<path>.tmp` — the staging file of the atomic snapshot replace.
fn snapshot_tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Serializes one cache entry. Every float travels as its IEEE-754 bit
/// pattern, so a load is bit-exact and a reloaded cache serves the same
/// bytes the original computed.
fn encode_entry(key: &CacheKey, outcome: &CalibrationOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&key.sensor);
    w.put_u64(key.protocol);
    w.put_u64(key.plan);
    w.put_u64(key.seed);
    let s = &outcome.summary;
    w.put_f64(s.sensitivity.as_micro_amps_per_milli_molar_square_cm());
    w.put_f64(s.linear_range.low().as_molar());
    w.put_f64(s.linear_range.high().as_molar());
    w.put_f64(s.detection_limit.as_molar());
    w.put_f64(s.r_squared);
    let curve = &outcome.curve;
    w.put_f64(curve.electrode_area().as_square_cm());
    w.put_f64(curve.blank_sigma().as_amps());
    w.put_u32(curve.points().len() as u32);
    for point in curve.points() {
        w.put_f64(point.concentration().as_molar());
        w.put_u32(point.replicates().len() as u32);
        for i in point.replicates() {
            w.put_f64(i.as_amps());
        }
    }
    w.into_bytes()
}

/// Deserializes and *validates* one cache entry. Checksummed framing
/// already rules out random damage; this guards the semantic layer —
/// non-finite floats, inverted ranges, or empty replicate sets — so a
/// snapshot written by a buggy or hostile writer still cannot poison
/// the cache.
fn decode_entry(payload: &[u8]) -> Result<(CacheKey, CalibrationOutcome), CodecError> {
    let mut r = ByteReader::new(payload);
    let key = CacheKey {
        sensor: r.get_str()?,
        protocol: r.get_u64()?,
        plan: r.get_u64()?,
        seed: r.get_u64()?,
    };
    let sensitivity = finite(r.get_f64()?)?;
    let low = finite(r.get_f64()?)?;
    let high = finite(r.get_f64()?)?;
    let detection_limit = finite(r.get_f64()?)?;
    let r_squared = finite(r.get_f64()?)?;
    let linear_range = ConcentrationRange::new(Molar::from_molar(low), Molar::from_molar(high))
        .map_err(|_| CodecError::Truncated)?;
    let summary = CalibrationSummary {
        sensitivity: Sensitivity::new(sensitivity),
        linear_range,
        detection_limit: Molar::from_molar(detection_limit),
        r_squared,
    };
    let area = finite(r.get_f64()?)?;
    let blank_sigma = finite(r.get_f64()?)?;
    let n_points = r.get_u32()? as usize;
    let mut points = Vec::with_capacity(n_points.min(1024));
    for _ in 0..n_points {
        let concentration = finite(r.get_f64()?)?;
        let n_reps = r.get_u32()? as usize;
        if n_reps == 0 {
            // `CalibrationPoint::new` panics on empty replicates; a
            // snapshot can never be allowed to trigger that.
            return Err(CodecError::Truncated);
        }
        let mut replicates = Vec::with_capacity(n_reps.min(1024));
        for _ in 0..n_reps {
            replicates.push(Amperes::from_amps(finite(r.get_f64()?)?));
        }
        points.push(CalibrationPoint::new(
            Molar::from_molar(concentration),
            replicates,
        ));
    }
    if r.remaining() != 0 {
        return Err(CodecError::Truncated);
    }
    let curve = CalibrationCurve::new(
        points,
        SquareCm::from_square_cm(area),
        Amperes::from_amps(blank_sigma),
    );
    Ok((key, CalibrationOutcome { summary, curve }))
}

/// Rejects NaN/±Inf at the decode boundary.
fn finite(v: f64) -> Result<f64, CodecError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(CodecError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    fn key(seed: u64) -> CacheKey {
        let entry = catalog::our_glucose_sensor();
        CacheKey {
            sensor: entry.id().to_owned(),
            protocol: entry.protocol_fingerprint(),
            plan: 0,
            seed,
        }
    }

    #[test]
    fn round_trips_an_outcome() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        assert!(cache.get(&key(7)).is_none());
        cache.insert(key(7), outcome.clone());
        let hit = cache.get(&key(7)).expect("hit");
        assert_eq!(hit.summary, outcome.summary);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinguishes_seeds() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(7), outcome);
        assert!(cache.get(&key(8)).is_none());
    }

    #[test]
    fn distinguishes_fault_plans() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(7), outcome);
        let mut faulted = key(7);
        faulted.plan = 0xDEAD_BEEF;
        assert!(
            cache.get(&faulted).is_none(),
            "a faulted job must never be served the healthy outcome"
        );
    }

    #[test]
    fn tampered_entry_is_dropped_at_serve_never_served() {
        let cache = ResultCache::new();
        let entry = catalog::our_glucose_sensor();
        let honest = entry.run_calibration(7).unwrap();
        cache.insert(key(7), honest.clone());
        assert!(cache.get(&key(7)).is_some(), "sanity: entry serves");
        // Swap in a different (finite, plausible) outcome behind the
        // checksum's back: exactly the silent corruption NonFinite
        // quarantine cannot see.
        let impostor = entry.run_calibration(8).unwrap();
        assert_ne!(
            format!("{:?}", honest.summary),
            format!("{:?}", impostor.summary)
        );
        cache.tamper(&key(7), impostor);
        assert!(
            cache.get(&key(7)).is_none(),
            "tampered entry must be a miss, not a serve"
        );
        assert_eq!(cache.corrupt_dropped(), 1);
        assert!(
            cache.get(&key(7)).is_none(),
            "the rotten entry is gone, not re-served"
        );
        assert_eq!(cache.corrupt_dropped(), 1, "dropped exactly once");
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ResultCache::new();
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..40 {
            cache.insert(key(seed), outcome.clone());
        }
        assert_eq!(cache.len(), 40);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0, "clear is not eviction");
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        // Capacity 16 → one entry per shard; every shard over-fills
        // quickly with 200 distinct seeds.
        let cache = ResultCache::with_capacity(16);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..200 {
            cache.insert(key(seed), outcome.clone());
        }
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
        assert!(cache.evictions() >= 184, "evictions {}", cache.evictions());
    }

    #[test]
    fn recently_touched_entries_survive_eviction() {
        // 64 entries → 4 per shard: room for the hot entry plus churn.
        let cache = ResultCache::with_capacity(64);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        cache.insert(key(0), outcome.clone());
        // Keep touching seed 0 while flooding; it must stay resident
        // even as its shard cycles through colliding keys.
        for seed in 1..400 {
            let _ = cache.get(&key(0));
            cache.insert(key(seed), outcome.clone());
        }
        assert!(cache.get(&key(0)).is_some(), "hot entry was evicted");
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bios-cache-{tag}-{}.snap", std::process::id()))
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact() {
        let cache = ResultCache::new();
        let entry = catalog::our_glucose_sensor();
        for seed in 0..5 {
            cache.insert(key(seed), entry.run_calibration(seed).unwrap());
        }
        let path = temp_path("roundtrip");
        assert_eq!(cache.save(&path).unwrap(), 5);
        let restored = ResultCache::new();
        let report = restored.load(&path).unwrap();
        assert_eq!(report.loaded, 5);
        assert_eq!(report.corrupt_dropped, 0);
        assert_eq!(restored.len(), 5);
        for seed in 0..5 {
            let orig = cache.get(&key(seed)).unwrap();
            let loaded = restored.get(&key(seed)).unwrap();
            // Bit-exact: the digest contract depends on it.
            assert_eq!(
                format!("{:?}", orig.summary),
                format!("{:?}", loaded.summary)
            );
            assert_eq!(orig.curve, loaded.curve);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupted_snapshot_entries_are_dropped_and_counted_never_served() {
        let cache = ResultCache::new();
        let entry = catalog::our_glucose_sensor();
        for seed in 0..4 {
            cache.insert(key(seed), entry.run_calibration(seed).unwrap());
        }
        let path = temp_path("corrupt");
        cache.save(&path).unwrap();
        // Flip one byte well past the header: at least one entry frame
        // fails its checksum, and everything after it is untrusted.
        let mut bytes = std::fs::read(&path).unwrap();
        let k = bytes.len() / 2;
        bytes[k] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let restored = ResultCache::new();
        let report = restored.load(&path).unwrap();
        assert!(report.corrupt_dropped >= 1, "damage must be counted");
        assert_eq!(report.loaded + report.corrupt_dropped, 4);
        assert_eq!(restored.len() as u64, report.loaded);
        assert_eq!(restored.corrupt_dropped(), report.corrupt_dropped);
        // Every entry that *was* served must be intact.
        for seed in 0..4 {
            if let Some(loaded) = restored.get(&key(seed)) {
                let orig = cache.get(&key(seed)).unwrap();
                assert_eq!(orig.curve, loaded.curve);
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_snapshot_loads_surviving_prefix() {
        let cache = ResultCache::new();
        let entry = catalog::our_glucose_sensor();
        for seed in 0..4 {
            cache.insert(key(seed), entry.run_calibration(seed).unwrap());
        }
        let path = temp_path("torn");
        cache.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let restored = ResultCache::new();
        let report = restored.load(&path).unwrap();
        assert_eq!(report.loaded, 3, "torn last frame drops exactly one");
        assert_eq!(report.corrupt_dropped, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn non_snapshot_file_is_invalid_data_not_a_panic() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let cache = ResultCache::new();
        let err = cache.load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn nonfinite_snapshot_floats_are_quarantined() {
        let cache = ResultCache::new();
        let entry = catalog::our_glucose_sensor();
        cache.insert(key(1), entry.run_calibration(1).unwrap());
        let path = temp_path("nonfinite");
        cache.save(&path).unwrap();
        // Rewrite the single entry frame with its r_squared replaced by
        // NaN and a *recomputed* checksum: framing-valid, semantically
        // poisonous. Layout after the key: 4 f64s then r_squared.
        let bytes = std::fs::read(&path).unwrap();
        let mut cursor = std::io::Cursor::new(&bytes[8..]);
        let FrameRead::Payload(header) = read_frame(&mut cursor).unwrap() else {
            panic!("header frame");
        };
        let FrameRead::Payload(mut payload) = read_frame(&mut cursor).unwrap() else {
            panic!("entry frame");
        };
        let sensor_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        let r2_at = 4 + sensor_len + 3 * 8 + 4 * 8;
        payload[r2_at..r2_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut rewritten = Vec::new();
        rewritten.extend_from_slice(CACHE_MAGIC);
        write_frame(&mut rewritten, &header).unwrap();
        write_frame(&mut rewritten, &payload).unwrap();
        std::fs::write(&path, &rewritten).unwrap();
        let restored = ResultCache::new();
        let report = restored.load(&path).unwrap();
        assert_eq!(report.loaded, 0, "NaN entry must never be served");
        assert_eq!(report.corrupt_dropped, 1);
        assert!(restored.is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = ResultCache::with_capacity(0);
        let outcome = catalog::our_glucose_sensor().run_calibration(7).unwrap();
        for seed in 0..300 {
            cache.insert(key(seed), outcome.clone());
        }
        assert_eq!(cache.len(), 300);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn snapshot_tmp_path_appends_suffix() {
        assert_eq!(
            snapshot_tmp_path(Path::new("/var/run/bios.cache")),
            PathBuf::from("/var/run/bios.cache.tmp")
        );
    }

    #[test]
    fn crash_at_every_save_op_never_destroys_the_previous_snapshot() {
        use bios_recover::sim::{is_sim_crash, IoFaultScript, SimIo};
        let entry = catalog::our_glucose_sensor();
        let path = PathBuf::from("/sim/bios.cache");
        let old = ResultCache::new();
        old.insert(key(1), entry.run_calibration(1).unwrap());
        let newer = ResultCache::new();
        newer.insert(key(1), entry.run_calibration(1).unwrap());
        newer.insert(key(2), entry.run_calibration(2).unwrap());

        // Count the ops one save costs (create, write, sync, rename).
        let probe = SimIo::perfect(0);
        old.save_with(&probe, &path).unwrap();
        let save_ops = probe.op_count();
        assert!(save_ops >= 4, "expected at least create/write/sync/rename");

        for k in 0..save_ops {
            // Fresh disk holding the old snapshot, then a save of the
            // newer cache that crashes at its k-th op.
            let io = SimIo::perfect(k);
            old.save_with(&io, &path).unwrap();
            io.set_script(IoFaultScript::crash_at(k, save_ops + k));
            let err = newer.save_with(&io, &path).unwrap_err();
            assert!(is_sim_crash(&err), "op {k} must die by simulated crash");
            io.reboot();
            let loader = ResultCache::new();
            let report = loader.load_with(&io, &path).unwrap();
            assert_eq!(
                report.corrupt_dropped, 0,
                "crash at op {k} must never leave a half-written snapshot served"
            );
            assert_eq!(
                report.loaded, 1,
                "old snapshot must survive every pre-rename crash point (op {k})"
            );
        }

        // And with no crash, the replace commits the new snapshot.
        let io = SimIo::perfect(99);
        old.save_with(&io, &path).unwrap();
        newer.save_with(&io, &path).unwrap();
        let loader = ResultCache::new();
        assert_eq!(loader.load_with(&io, &path).unwrap().loaded, 2);
        assert!(!io.exists(Path::new("/sim/bios.cache.tmp")));
    }
}

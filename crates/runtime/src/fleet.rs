//! Fleet descriptions and typed results.
//!
//! A [`Fleet`] is the unit of work the runtime executes: a batch of
//! catalog sensor configurations crossed with noise seeds, one
//! calibration job per (sensor, seed) pair. Results come back as a
//! [`FleetReport`] with **per-job** error aggregation — a fleet with one
//! broken sensor still calibrates every other channel and reports the
//! failure alongside the successes, unlike the fail-fast sequential
//! paths it replaces.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bios_core::catalog::{CalibrationOutcome, CatalogEntry};
use bios_core::CoreError;

use crate::metrics::MetricsSnapshot;

/// One unit of fleet work: calibrate `entry` under `seed`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the fleet (results are returned in this order).
    pub index: usize,
    /// The sensor configuration to calibrate.
    pub entry: CatalogEntry,
    /// The noise seed of the run.
    pub seed: u64,
}

/// A named batch of calibration jobs.
///
/// # Examples
///
/// ```
/// use bios_core::catalog;
/// use bios_runtime::Fleet;
///
/// let fleet = Fleet::builder("table2")
///     .sensors(catalog::all_table2())
///     .seed(42)
///     .build();
/// assert_eq!(fleet.len(), 18);
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    name: String,
    jobs: Vec<Job>,
}

impl Fleet {
    /// Starts building a fleet.
    #[must_use]
    pub fn builder(name: &str) -> FleetBuilder {
        FleetBuilder {
            name: name.to_owned(),
            sensors: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// The fleet's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jobs, in index order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the fleet holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Builder assembling the (sensors × seeds) job matrix.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    name: String,
    sensors: Vec<CatalogEntry>,
    seeds: Vec<u64>,
}

impl FleetBuilder {
    /// Adds one sensor configuration.
    #[must_use]
    pub fn sensor(mut self, entry: CatalogEntry) -> FleetBuilder {
        self.sensors.push(entry);
        self
    }

    /// Adds a batch of sensor configurations.
    #[must_use]
    pub fn sensors(mut self, entries: impl IntoIterator<Item = CatalogEntry>) -> FleetBuilder {
        self.sensors.extend(entries);
        self
    }

    /// Adds one seed (each sensor is calibrated once per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> FleetBuilder {
        self.seeds.push(seed);
        self
    }

    /// Adds a batch of seeds.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> FleetBuilder {
        self.seeds.extend(seeds);
        self
    }

    /// Builds the job matrix, seed-major (all sensors at seed₀, then
    /// all sensors at seed₁, …). An empty seed list means seed 0.
    #[must_use]
    pub fn build(self) -> Fleet {
        let seeds = if self.seeds.is_empty() {
            vec![0]
        } else {
            self.seeds
        };
        let jobs = seeds
            .iter()
            .flat_map(|&seed| self.sensors.iter().cloned().map(move |entry| (entry, seed)))
            .enumerate()
            .map(|(index, (entry, seed))| Job { index, entry, seed })
            .collect();
        Fleet {
            name: self.name,
            jobs,
        }
    }
}

/// Why a single job failed (the fleet itself never fails).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The calibration pipeline returned an error.
    Calibration(CoreError),
    /// The job panicked on a worker; the payload is the panic message.
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Calibration(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Calibration(e) => Some(e),
            JobError::Panicked(_) => None,
        }
    }
}

/// The typed result of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Position in the fleet.
    pub index: usize,
    /// Catalog id of the sensor.
    pub sensor: String,
    /// The noise seed of the run.
    pub seed: u64,
    /// Wall time of the job on its worker (near zero for cache hits).
    pub wall: Duration,
    /// Whether the outcome came from the memo cache.
    pub from_cache: bool,
    /// The calibration outcome or the per-job error.
    pub outcome: Result<Arc<CalibrationOutcome>, JobError>,
}

/// Everything a fleet run produced, in job order.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Name of the fleet that ran.
    pub fleet: String,
    /// Worker threads used (1 for the sequential path).
    pub workers: usize,
    /// End-to-end wall time of the run.
    pub elapsed: Duration,
    /// Per-job results, sorted by job index.
    pub results: Vec<JobResult>,
    /// Runtime metrics snapshot taken when the run finished.
    pub metrics: MetricsSnapshot,
}

impl FleetReport {
    /// Successful results, in job order.
    pub fn successes(&self) -> impl Iterator<Item = (&JobResult, &CalibrationOutcome)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok().map(|o| (r, o.as_ref())))
    }

    /// Failed results, in job order.
    pub fn failures(&self) -> impl Iterator<Item = (&JobResult, &JobError)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r, e)))
    }

    /// The outcome for a (sensor id, seed) pair, if that job succeeded.
    #[must_use]
    pub fn outcome(&self, sensor: &str, seed: u64) -> Option<&CalibrationOutcome> {
        self.results
            .iter()
            .find(|r| r.sensor == sensor && r.seed == seed)
            .and_then(|r| r.outcome.as_ref().ok())
            .map(AsRef::as_ref)
    }

    /// Number of jobs served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.results.iter().filter(|r| r.from_cache).count()
    }

    /// Jobs per second of end-to-end wall time.
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// A canonical rendering of every job's figures of merit, in job
    /// order. Two runs of the same fleet are byte-identical here exactly
    /// when their physics results are bit-identical — the determinism
    /// oracle used by the worker-count-independence tests. Scheduling
    /// artifacts (wall times, cache dispositions) are excluded.
    #[must_use]
    pub fn summaries_digest(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for r in &self.results {
            match &r.outcome {
                // `{:?}` on f64 prints the shortest round-trip form, so
                // equal digests ⇔ bit-equal summaries.
                Ok(o) => {
                    let _ = writeln!(out, "{} seed={} {:?}", r.sensor, r.seed, o.summary);
                }
                Err(e) => {
                    let _ = writeln!(out, "{} seed={} ERROR {e}", r.sensor, r.seed);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    #[test]
    fn builder_crosses_sensors_with_seeds() {
        let fleet = Fleet::builder("x")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2, 3])
            .build();
        assert_eq!(fleet.len(), 12);
        // Seed-major: first block is all sensors at seed 1.
        assert!(fleet.jobs()[..4].iter().all(|j| j.seed == 1));
        assert_eq!(fleet.jobs()[4].seed, 2);
        // Indexes are dense and ordered.
        for (k, job) in fleet.jobs().iter().enumerate() {
            assert_eq!(job.index, k);
        }
    }

    #[test]
    fn empty_seed_list_defaults_to_seed_zero() {
        let fleet = Fleet::builder("x")
            .sensor(catalog::our_glucose_sensor())
            .build();
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.jobs()[0].seed, 0);
    }

    #[test]
    fn job_error_displays_both_variants() {
        let panicked = JobError::Panicked("boom".into());
        assert!(panicked.to_string().contains("boom"));
        let calib = JobError::Calibration(CoreError::ChannelEmpty { channel: 1 });
        assert!(calib.to_string().contains("no sensor"));
    }
}

//! Fleet descriptions and typed results.
//!
//! A [`Fleet`] is the unit of work the runtime executes: a batch of
//! catalog sensor configurations crossed with noise seeds, one
//! calibration job per (sensor, seed) pair. Results come back as a
//! [`FleetReport`] with **per-job** error aggregation — a fleet with one
//! broken sensor still calibrates every other channel and reports the
//! failure alongside the successes, unlike the fail-fast sequential
//! paths it replaces.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bios_core::catalog::{CalibrationOutcome, CatalogEntry};
use bios_core::CoreError;
use bios_faults::{FaultPlan, FaultTally};

use crate::metrics::MetricsSnapshot;

/// One unit of fleet work: calibrate `entry` under `seed`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the fleet (results are returned in this order).
    pub index: usize,
    /// The sensor configuration to calibrate.
    pub entry: CatalogEntry,
    /// The noise seed of the run.
    pub seed: u64,
}

/// A named batch of calibration jobs.
///
/// # Examples
///
/// ```
/// use bios_core::catalog;
/// use bios_runtime::Fleet;
///
/// let fleet = Fleet::builder("table2")
///     .sensors(catalog::all_table2())
///     .seed(42)
///     .build();
/// assert_eq!(fleet.len(), 18);
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    name: String,
    jobs: Vec<Job>,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Fleet {
    /// Starts building a fleet.
    #[must_use]
    pub fn builder(name: &str) -> FleetBuilder {
        FleetBuilder {
            name: name.to_owned(),
            sensors: Vec::new(),
            seeds: Vec::new(),
            explicit: Vec::new(),
            fault_plan: None,
        }
    }

    /// The fault plan armed for this fleet, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// The shared handle to the armed fault plan, for handing to
    /// workers.
    #[must_use]
    pub(crate) fn fault_plan_arc(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.clone()
    }

    /// The fleet's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jobs, in index order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the fleet holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// A stable fingerprint of everything that determines the fleet's
    /// physics results: each job's sensor identity, protocol
    /// fingerprint, and seed, plus the armed fault plan. The fleet's
    /// display name is deliberately excluded — renaming a run must not
    /// invalidate its journal. Used to verify on resume that a journal
    /// belongs to the fleet being resumed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use fmt::Write;
        let mut desc = String::new();
        for job in &self.jobs {
            let _ = writeln!(
                desc,
                "{} {:016x} {:016x}",
                job.entry.id(),
                job.entry.protocol_fingerprint(),
                job.seed
            );
        }
        let _ = writeln!(
            desc,
            "plan {:016x}",
            self.fault_plan.as_ref().map_or(0, |p| p.fingerprint())
        );
        bios_recover::fnv1a(desc.as_bytes())
    }

    /// Builds a fleet directly from pre-indexed jobs, reusing this
    /// fleet's name and fault plan. Used by the resume path to run the
    /// not-yet-journaled remainder of a fleet, and by `bios-shard` to
    /// carve per-shard sub-fleets out of one logical fleet.
    #[must_use]
    pub fn with_jobs(&self, jobs: Vec<Job>) -> Fleet {
        Fleet {
            name: self.name.clone(),
            jobs,
            fault_plan: self.fault_plan.clone(),
        }
    }
}

/// Builder assembling the (sensors × seeds) job matrix.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    name: String,
    sensors: Vec<CatalogEntry>,
    seeds: Vec<u64>,
    explicit: Vec<(CatalogEntry, u64)>,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl FleetBuilder {
    /// Adds one sensor configuration.
    #[must_use]
    pub fn sensor(mut self, entry: CatalogEntry) -> FleetBuilder {
        self.sensors.push(entry);
        self
    }

    /// Adds a batch of sensor configurations.
    #[must_use]
    pub fn sensors(mut self, entries: impl IntoIterator<Item = CatalogEntry>) -> FleetBuilder {
        self.sensors.extend(entries);
        self
    }

    /// Adds one seed (each sensor is calibrated once per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> FleetBuilder {
        self.seeds.push(seed);
        self
    }

    /// Adds a batch of seeds.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> FleetBuilder {
        self.seeds.extend(seeds);
        self
    }

    /// Adds one explicit `(sensor, seed)` job, bypassing the
    /// sensors × seeds cross product. This is the gateway's intake
    /// path: an admission-controlled batch is an arbitrary mix of
    /// tenants and replicate seeds, not a rectangular matrix. Explicit
    /// jobs are appended after the crossed jobs in the order they were
    /// added.
    #[must_use]
    pub fn job(mut self, entry: CatalogEntry, seed: u64) -> FleetBuilder {
        self.explicit.push((entry, seed));
        self
    }

    /// Arms a fault plan: every job realizes its faults deterministically
    /// from `(plan, sensor id, job seed)` before running. Fleets without
    /// a plan pay zero fault-path overhead.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> FleetBuilder {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Builds the job matrix, seed-major (all sensors at seed₀, then
    /// all sensors at seed₁, …), followed by any explicit jobs in
    /// insertion order. An empty seed list means seed 0 (irrelevant
    /// when the fleet is purely explicit).
    #[must_use]
    pub fn build(self) -> Fleet {
        let seeds = if self.seeds.is_empty() {
            vec![0]
        } else {
            self.seeds
        };
        let jobs = seeds
            .iter()
            .flat_map(|&seed| self.sensors.iter().cloned().map(move |entry| (entry, seed)))
            .chain(self.explicit)
            .enumerate()
            .map(|(index, (entry, seed))| Job { index, entry, seed })
            .collect();
        Fleet {
            name: self.name,
            jobs,
            fault_plan: self.fault_plan,
        }
    }
}

/// Why a single job failed (the fleet itself never fails).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The calibration pipeline returned an error.
    Calibration(CoreError),
    /// The job panicked on a worker; the payload is the panic message.
    Panicked(String),
    /// A transient failure that exhausted the retry budget.
    Transient {
        /// What the last attempt reported.
        message: String,
        /// Attempts made before giving up (≥ 1).
        attempts: u32,
    },
    /// The job's estimated workload exceeds the per-job budget; it was
    /// rejected before simulating anything.
    Budget {
        /// Estimated samples the calibration would draw.
        required: u64,
        /// The configured per-job sample budget.
        budget: u64,
    },
    /// The job stalled past its soft deadline and was cancelled by the
    /// watchdog. The rendering carries no wall-clock detail so the
    /// loss is byte-identical at any worker count.
    Deadline,
    /// The job's result contained NaN or ±Inf and was quarantined
    /// before it could reach the cache or journal.
    NonFinite,
}

impl JobError {
    /// Whether retrying the same job could plausibly succeed.
    /// Calibration errors, panics, and budget rejections are
    /// deterministic; only [`JobError::Transient`] is worth a retry.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Transient { .. })
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Calibration(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Transient { message, attempts } => {
                write!(f, "transient failure after {attempts} attempts: {message}")
            }
            JobError::Budget { required, budget } => {
                write!(
                    f,
                    "job rejected: needs {required} samples, budget is {budget}"
                )
            }
            JobError::Deadline => write!(f, "job stalled past its deadline and was cancelled"),
            JobError::NonFinite => {
                write!(f, "job produced a non-finite result and was quarantined")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Calibration(e) => Some(e),
            JobError::Panicked(_)
            | JobError::Transient { .. }
            | JobError::Budget { .. }
            | JobError::Deadline
            | JobError::NonFinite => None,
        }
    }
}

/// The typed result of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Position in the fleet.
    pub index: usize,
    /// Catalog id of the sensor.
    pub sensor: String,
    /// The noise seed of the run.
    pub seed: u64,
    /// Wall time of the job on its worker (near zero for cache hits).
    pub wall: Duration,
    /// Whether the outcome came from the memo cache.
    pub from_cache: bool,
    /// Execution attempts made (0 for cache hits, 1 for a clean first
    /// run, more when transient failures were retried).
    pub attempts: u32,
    /// Faults injected into this job by the fleet's armed plan, by
    /// layer. All-zero when no plan is armed or nothing realized.
    pub injected: FaultTally,
    /// The calibration outcome or the per-job error.
    pub outcome: Result<Arc<CalibrationOutcome>, JobError>,
    /// End-to-end integrity checksum: FNV-1a over the result's payload
    /// ([`JobResult::digest_line`] bytes), computed once at produce
    /// time on the worker. Every later hop — memo-cache insert, journal
    /// append, report merge — re-derives the checksum from the payload
    /// it sees and refuses a result whose bytes no longer match, so a
    /// finite-but-wrong value corrupted *in flight* is caught even
    /// though it would pass `NonFinite` quarantine.
    pub integrity: u64,
}

impl JobResult {
    /// Re-derives the integrity checksum from the payload this result
    /// currently carries (FNV-1a over [`JobResult::digest_line`]).
    #[must_use]
    pub fn payload_checksum(&self) -> u64 {
        bios_recover::fnv1a(self.digest_line().as_bytes())
    }

    /// Stamps the produce-time integrity checksum. Call exactly once,
    /// on the worker that computed the outcome, before the result
    /// crosses any channel.
    #[must_use]
    pub fn sealed(mut self) -> JobResult {
        self.integrity = self.payload_checksum();
        self
    }

    /// Whether the payload still matches its produce-time checksum.
    /// `false` means the result was corrupted somewhere between the
    /// worker that computed it and this hop — it must not be cached,
    /// journaled, or merged.
    #[must_use]
    pub fn verify_integrity(&self) -> bool {
        self.integrity == self.payload_checksum()
    }
    /// Whether the job succeeded but not cleanly: faults were injected
    /// or transient failures forced retries.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.outcome.is_ok() && (self.attempts > 1 || self.injected.total() > 0)
    }

    /// The job's line in the canonical fleet digest (no trailing
    /// newline). Shared verbatim by [`FleetReport::summaries_digest`]
    /// and the run journal, so a resumed run reconstructs the
    /// byte-identical digest from journaled lines.
    #[must_use]
    pub fn digest_line(&self) -> String {
        match &self.outcome {
            // `{:?}` on f64 prints the shortest round-trip form, so
            // equal digests ⇔ bit-equal summaries.
            Ok(o) => format!("{} seed={} {:?}", self.sensor, self.seed, o.summary),
            Err(e) => format!("{} seed={} ERROR {e}", self.sensor, self.seed),
        }
    }
}

/// Everything a fleet run produced, in job order.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Name of the fleet that ran.
    pub fleet: String,
    /// Worker threads used (1 for the sequential path).
    pub workers: usize,
    /// End-to-end wall time of the run.
    pub elapsed: Duration,
    /// Per-job results, sorted by job index.
    pub results: Vec<JobResult>,
    /// Runtime metrics snapshot taken when the run finished.
    pub metrics: MetricsSnapshot,
}

impl FleetReport {
    /// Successful results, in job order.
    pub fn successes(&self) -> impl Iterator<Item = (&JobResult, &CalibrationOutcome)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok().map(|o| (r, o.as_ref())))
    }

    /// Failed results, in job order.
    pub fn failures(&self) -> impl Iterator<Item = (&JobResult, &JobError)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r, e)))
    }

    /// The outcome for a (sensor id, seed) pair, if that job succeeded.
    #[must_use]
    pub fn outcome(&self, sensor: &str, seed: u64) -> Option<&CalibrationOutcome> {
        self.results
            .iter()
            .find(|r| r.sensor == sensor && r.seed == seed)
            .and_then(|r| r.outcome.as_ref().ok())
            .map(AsRef::as_ref)
    }

    /// Number of jobs served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.results.iter().filter(|r| r.from_cache).count()
    }

    /// Partitions the results into the quorum-style triage the fleet
    /// operator acts on: cleanly completed, degraded (succeeded despite
    /// injected faults or retries), and failed.
    #[must_use]
    pub fn outcome_summary(&self) -> FleetOutcome {
        let mut outcome = FleetOutcome::default();
        for r in &self.results {
            if r.outcome.is_err() {
                outcome.failed += 1;
            } else if r.is_degraded() {
                outcome.degraded += 1;
            } else {
                outcome.completed += 1;
            }
        }
        outcome
    }

    /// Jobs per second of end-to-end wall time.
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// A canonical rendering of every job's figures of merit, in job
    /// order. Two runs of the same fleet are byte-identical here exactly
    /// when their physics results are bit-identical — the determinism
    /// oracle used by the worker-count-independence tests. Scheduling
    /// artifacts (wall times, cache dispositions) are excluded.
    #[must_use]
    pub fn summaries_digest(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for r in &self.results {
            let _ = writeln!(out, "{}", r.digest_line());
        }
        out
    }
}

/// Quorum-style triage of a fleet run: how many channels can be
/// trusted outright, how many delivered data under degraded
/// conditions, and how many are lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Jobs that succeeded cleanly on the first attempt, fault-free.
    pub completed: usize,
    /// Jobs that succeeded despite injected faults or retries; their
    /// figures of merit may be biased and deserve a drift check.
    pub degraded: usize,
    /// Jobs that returned an error (calibration failure, panic,
    /// exhausted retries, or budget rejection).
    pub failed: usize,
}

impl FleetOutcome {
    /// Total jobs triaged.
    #[must_use]
    pub fn total(&self) -> usize {
        self.completed + self.degraded + self.failed
    }

    /// Fraction of jobs that produced a usable outcome (completed or
    /// degraded); 0 for an empty fleet.
    #[must_use]
    pub fn usable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.completed + self.degraded) as f64 / total as f64
        }
    }

    /// Whether at least `min_fraction` of the fleet produced usable
    /// outcomes — the quorum test a multi-sensor panel applies before
    /// trusting a batch of calibrations.
    #[must_use]
    pub fn has_quorum(&self, min_fraction: f64) -> bool {
        self.total() > 0 && self.usable_fraction() >= min_fraction
    }
}

impl fmt::Display for FleetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed / {} degraded / {} failed",
            self.completed, self.degraded, self.failed
        )
    }
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    #[test]
    fn builder_crosses_sensors_with_seeds() {
        let fleet = Fleet::builder("x")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2, 3])
            .build();
        assert_eq!(fleet.len(), 12);
        // Seed-major: first block is all sensors at seed 1.
        assert!(fleet.jobs()[..4].iter().all(|j| j.seed == 1));
        assert_eq!(fleet.jobs()[4].seed, 2);
        // Indexes are dense and ordered.
        for (k, job) in fleet.jobs().iter().enumerate() {
            assert_eq!(job.index, k);
        }
    }

    #[test]
    fn explicit_jobs_append_after_the_cross_product() {
        let fleet = Fleet::builder("mixed")
            .sensor(catalog::our_glucose_sensor())
            .seed(1)
            .job(catalog::our_lactate_sensor(), 99)
            .job(catalog::our_glucose_sensor(), 7)
            .build();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.jobs()[0].seed, 1);
        assert_eq!(fleet.jobs()[1].seed, 99);
        assert_eq!(fleet.jobs()[1].entry.id(), "lactate/ours");
        assert_eq!(fleet.jobs()[2].seed, 7);
        for (k, job) in fleet.jobs().iter().enumerate() {
            assert_eq!(job.index, k);
        }
        // A purely explicit fleet does not inherit the implicit seed 0.
        let explicit_only = Fleet::builder("explicit")
            .job(catalog::our_glucose_sensor(), 5)
            .build();
        assert_eq!(explicit_only.len(), 1);
        assert_eq!(explicit_only.jobs()[0].seed, 5);
    }

    #[test]
    fn empty_seed_list_defaults_to_seed_zero() {
        let fleet = Fleet::builder("x")
            .sensor(catalog::our_glucose_sensor())
            .build();
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.jobs()[0].seed, 0);
    }

    #[test]
    fn job_error_displays_every_variant() {
        let panicked = JobError::Panicked("boom".into());
        assert!(panicked.to_string().contains("boom"));
        let calib = JobError::Calibration(CoreError::ChannelEmpty { channel: 1 });
        assert!(calib.to_string().contains("no sensor"));
        let transient = JobError::Transient {
            message: "glitch".into(),
            attempts: 3,
        };
        assert!(transient.to_string().contains("after 3 attempts"));
        let budget = JobError::Budget {
            required: 10,
            budget: 5,
        };
        assert!(budget.to_string().contains("budget is 5"));
        // Deadline and NonFinite renderings are part of the digest
        // contract: they must stay deterministic (no wall-clock or
        // attempt detail) so losses digest identically at any worker
        // count.
        assert_eq!(
            JobError::Deadline.to_string(),
            "job stalled past its deadline and was cancelled"
        );
        assert_eq!(
            JobError::NonFinite.to_string(),
            "job produced a non-finite result and was quarantined"
        );
    }

    #[test]
    fn fingerprint_tracks_physics_not_name() {
        let a = Fleet::builder("a")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2])
            .build();
        let renamed = Fleet::builder("b")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2])
            .build();
        assert_eq!(a.fingerprint(), renamed.fingerprint());
        let reseeded = Fleet::builder("a")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 3])
            .build();
        assert_ne!(a.fingerprint(), reseeded.fingerprint());
        let armed = Fleet::builder("a")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2])
            .fault_plan(bios_faults::FaultPlan::chaos(7, 0.5))
            .build();
        assert_ne!(a.fingerprint(), armed.fingerprint());
    }

    #[test]
    fn only_transient_errors_are_transient() {
        assert!(JobError::Transient {
            message: String::new(),
            attempts: 1
        }
        .is_transient());
        assert!(!JobError::Panicked(String::new()).is_transient());
        assert!(!JobError::Budget {
            required: 1,
            budget: 0
        }
        .is_transient());
    }

    #[test]
    fn fleet_outcome_quorum_math() {
        let outcome = FleetOutcome {
            completed: 6,
            degraded: 2,
            failed: 2,
        };
        assert_eq!(outcome.total(), 10);
        assert!((outcome.usable_fraction() - 0.8).abs() < 1e-12);
        assert!(outcome.has_quorum(0.75));
        assert!(!outcome.has_quorum(0.9));
        assert!(
            !FleetOutcome::default().has_quorum(0.0),
            "empty has no quorum"
        );
        assert_eq!(outcome.to_string(), "6 completed / 2 degraded / 2 failed");
    }

    #[test]
    fn builder_arms_a_fault_plan() {
        let plan = bios_faults::FaultPlan::chaos(1, 0.5);
        let fleet = Fleet::builder("armed")
            .sensor(catalog::our_glucose_sensor())
            .fault_plan(plan.clone())
            .build();
        assert_eq!(
            fleet.fault_plan().map(|p| p.fingerprint()),
            Some(plan.fingerprint())
        );
        let unarmed = Fleet::builder("unarmed").build();
        assert!(unarmed.fault_plan().is_none());
    }
}

//! Crash-resumable fleet runs on the write-ahead journal.
//!
//! [`Runtime::run_journaled`] wraps [`Runtime::run`] with durability:
//! before any job's result is surfaced, a `JobDone` record carrying its
//! disposition and canonical digest line is appended and flushed to an
//! append-only journal ([`bios_recover::journal`]). If the process dies
//! mid-fleet — `kill -9`, OOM, power loss — [`Runtime::resume`] replays
//! the journal, verifies it belongs to the same run (fleet
//! fingerprint), skips every journaled job, executes only the
//! remainder, and merges the two halves into the **byte-identical**
//! digest an uninterrupted run would have produced, at any worker
//! count.
//!
//! ```
//! use bios_core::catalog;
//! use bios_runtime::{Fleet, Runtime};
//!
//! let dir = std::env::temp_dir();
//! let path = dir.join(format!("bios-doc-{}.journal", std::process::id()));
//! let fleet = Fleet::builder("doc")
//!     .sensors(catalog::glucose_sensors())
//!     .seed(7)
//!     .build();
//! let runtime = Runtime::with_workers(2);
//! let report = runtime.run_journaled(&fleet, &path)?;
//! // The journal is sealed; "resuming" it replays without re-running.
//! let resumed = Runtime::with_workers(1).resume(&fleet, &path)?;
//! assert_eq!(resumed.summaries_digest(), report.summaries_digest());
//! assert_eq!(resumed.executed_jobs, 0);
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), bios_runtime::journal::JournalError>(())
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use bios_recover::codec::CodecError;
use bios_recover::fnv1a;
use bios_recover::journal::{Disposition, JournalReader, JournalWriter, Record, RunHeader};
use bios_recover::sim::{is_sim_crash, RealIo, StorageIo};

pub use bios_recover::journal::JournalError;

use crate::fleet::{Fleet, FleetOutcome, FleetReport, Job, JobResult};
use crate::Runtime;

/// Whether a journal error is a simulated process crash — the one IO
/// failure that must *not* be absorbed by graceful degradation: the
/// "process" is gone, so the error propagates and the torture harness
/// resumes against the surviving disk.
fn is_crash(e: &JournalError) -> bool {
    matches!(e, JournalError::Io(io_err) if is_sim_crash(io_err))
}

/// Knobs for [`Runtime::run_journaled_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalOptions {
    /// Abort the whole process (as `kill -9` would) immediately after
    /// the Nth `JobDone` record is durably written. This is the
    /// deterministic crash-injection hook the crash-resume gate in CI
    /// uses; `None` (the default) never crashes.
    pub crash_after_jobs: Option<u64>,
}

/// What [`Runtime::resume`] reconstructed: journaled results merged
/// with the freshly executed remainder, in job-index order.
#[derive(Debug)]
pub struct ResumeReport {
    /// Name of the fleet that was resumed.
    pub fleet: String,
    /// Total jobs in the fleet.
    pub total_jobs: usize,
    /// Jobs skipped because the journal already held their results.
    pub resumed_jobs: usize,
    /// Jobs executed fresh by this process.
    pub executed_jobs: usize,
    /// Merged quorum triage across journaled and fresh jobs.
    pub outcome: FleetOutcome,
    /// The fresh sub-run's report, when anything was left to execute.
    pub fresh: Option<FleetReport>,
    digest: String,
}

impl ResumeReport {
    /// The canonical per-job digest of the *whole* fleet — journaled
    /// lines and fresh lines merged in job-index order. Byte-identical
    /// to [`FleetReport::summaries_digest`] of an uninterrupted run.
    #[must_use]
    pub fn summaries_digest(&self) -> &str {
        &self.digest
    }

    /// FNV-1a of [`ResumeReport::summaries_digest`], matching the
    /// digest recorded in the journal's seal.
    #[must_use]
    pub fn digest_fnv(&self) -> u64 {
        fnv1a(self.digest.as_bytes())
    }
}

/// Triage of one result into the journal's three-way disposition.
fn disposition_of(result: &JobResult) -> Disposition {
    if result.outcome.is_err() {
        Disposition::Failed
    } else if result.is_degraded() {
        Disposition::Degraded
    } else {
        Disposition::Completed
    }
}

/// Folds one disposition into a [`FleetOutcome`].
fn tally(outcome: &mut FleetOutcome, disposition: Disposition) {
    match disposition {
        Disposition::Completed => outcome.completed += 1,
        Disposition::Degraded => outcome.degraded += 1,
        Disposition::Failed => outcome.failed += 1,
    }
}

impl Runtime {
    /// [`Runtime::run`] with a write-ahead journal at `path`: every
    /// result is durably recorded *before* it is surfaced, and the
    /// journal is sealed when the fleet completes. A run killed
    /// mid-fleet leaves a valid, resumable journal behind — hand it to
    /// [`Runtime::resume`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the journal cannot be created or
    /// appended; the write-ahead contract is broken at that point, so
    /// the error wins even though the fleet itself ran.
    pub fn run_journaled(
        &self,
        fleet: &Fleet,
        path: impl AsRef<Path>,
    ) -> Result<FleetReport, JournalError> {
        self.run_journaled_with(fleet, path, JournalOptions::default())
    }

    /// [`Runtime::run_journaled`] with explicit [`JournalOptions`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the journal cannot be created,
    /// appended, or sealed.
    pub fn run_journaled_with(
        &self,
        fleet: &Fleet,
        path: impl AsRef<Path>,
        options: JournalOptions,
    ) -> Result<FleetReport, JournalError> {
        self.run_journaled_on(&RealIo, fleet, path, options)
    }

    /// [`Runtime::run_journaled_with`] on an explicit storage backend
    /// — the seam the torture gate injects [`bios_recover::SimIo`]
    /// through.
    ///
    /// Failure policy (the trichotomy the torture gate asserts):
    ///
    /// * the journal cannot be **created** → typed error; nothing ran;
    /// * an **append or seal** fails after bounded transient retries →
    ///   the journal is *retired*: the `journal_lost` metric
    ///   increments and the fleet completes non-durably with the
    ///   correct digest (graceful degradation);
    /// * a simulated **crash** → the error propagates (the process is
    ///   dead); resume against the surviving bytes.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on create failure or simulated crash;
    /// [`JournalError::Corrupt`] when a result fails its in-flight
    /// integrity check.
    pub fn run_journaled_on(
        &self,
        io: &dyn StorageIo,
        fleet: &Fleet,
        path: impl AsRef<Path>,
        options: JournalOptions,
    ) -> Result<FleetReport, JournalError> {
        let header = RunHeader {
            fleet: fleet.name().to_owned(),
            fingerprint: fleet.fingerprint(),
            jobs: fleet.len() as u64,
        };
        let mut writer = Some(JournalWriter::create_with(io, path.as_ref(), &header)?);
        let mut fatal: Option<JournalError> = None;
        let mut jobs_done = 0u64;
        let mut retired: Option<(u64, u64)> = None; // (records, retries)
        let report = self.run_with_observer(fleet, |result| {
            if fatal.is_some() {
                return; // the run is already doomed; don't pile on
            }
            // End-to-end integrity: the checksum stamped when the
            // result was produced must still match its payload at the
            // journal-append hop. A mismatch means the result mutated
            // in flight — refuse to make the corruption durable.
            if !result.verify_integrity() {
                self.metrics.record_corruption_caught(1);
                fatal = Some(JournalError::Corrupt(CodecError::ChecksumMismatch {
                    stored: result.integrity,
                    computed: result.payload_checksum(),
                }));
                return;
            }
            let Some(w) = writer.as_mut() else {
                return; // journal retired: non-durable mode
            };
            let record = Record::job_done(
                result.index as u64,
                disposition_of(result),
                u64::from(result.attempts),
                result.digest_line(),
            );
            match w.append(&record) {
                Ok(()) => {
                    jobs_done += 1;
                    if options.crash_after_jobs == Some(jobs_done) {
                        // The record above is flushed: die exactly as
                        // hard as `kill -9` would, leaving the journal
                        // for `resume` to pick up.
                        std::process::abort();
                    }
                }
                Err(e) if is_crash(&e) => fatal = Some(e),
                Err(_) => {
                    // Transient retries exhausted or the disk is full:
                    // retire the journal, meter the loss, and let the
                    // fleet finish non-durably.
                    retired = Some((w.records_written(), w.io_retries()));
                    self.metrics.record_journal_lost();
                    writer = None;
                }
            }
        });
        if let Some(e) = fatal {
            return Err(e);
        }
        let digest = fnv1a(report.summaries_digest().as_bytes());
        match writer.as_mut() {
            Some(w) => match w.seal(jobs_done, digest) {
                Ok(()) => {
                    self.metrics.record_journal_records(w.records_written());
                    self.metrics.record_journal_retries(w.io_retries());
                }
                Err(e) if is_crash(&e) => return Err(e),
                Err(_) => {
                    self.metrics.record_journal_records(w.records_written());
                    self.metrics.record_journal_retries(w.io_retries());
                    self.metrics.record_journal_lost();
                }
            },
            None => {
                if let Some((records, retries)) = retired {
                    self.metrics.record_journal_records(records);
                    self.metrics.record_journal_retries(retries);
                }
            }
        }
        Ok(report)
    }

    /// Resumes a journaled run: verifies the journal belongs to `fleet`
    /// (fingerprint over sensors, protocols, seeds, and fault plan),
    /// skips every job the journal already holds, executes only the
    /// remainder, appends their records, and seals. The merged digest
    /// is byte-identical to an uninterrupted run at any worker count.
    /// A journal that is already sealed replays without executing
    /// anything.
    ///
    /// # Errors
    ///
    /// * [`JournalError::BadMagic`] / [`JournalError::HeaderMissing`] /
    ///   [`JournalError::Corrupt`] — the file is not a usable journal;
    /// * [`JournalError::FingerprintMismatch`] — the journal belongs to
    ///   a different run and resuming would alias its results;
    /// * [`JournalError::Io`] — filesystem failure.
    pub fn resume(
        &self,
        fleet: &Fleet,
        path: impl AsRef<Path>,
    ) -> Result<ResumeReport, JournalError> {
        self.resume_on(&RealIo, fleet, path)
    }

    /// [`Runtime::resume`] on an explicit storage backend. The resume
    /// side of the trichotomy: an unreadable/foreign journal is a
    /// typed error, a failed re-open or append *retires* the journal
    /// (the remainder still executes and merges to the correct
    /// digest, metered by `journal_lost`), and a simulated crash
    /// propagates.
    ///
    /// # Errors
    ///
    /// As [`Runtime::resume`].
    pub fn resume_on(
        &self,
        io: &dyn StorageIo,
        fleet: &Fleet,
        path: impl AsRef<Path>,
    ) -> Result<ResumeReport, JournalError> {
        let path = path.as_ref();
        let loaded = JournalReader::load_with(io, path)?;
        // A corrupt *body* record is not the benign torn tail a crash
        // leaves: its frame checksum failed, so the file was damaged at
        // rest. Surface the checksum error instead of silently
        // truncating and re-executing over untrusted provenance.
        if let Some(e) = loaded.corrupt_error.clone() {
            return Err(JournalError::Corrupt(e));
        }
        let current = fleet.fingerprint();
        if loaded.header.fingerprint != current {
            return Err(JournalError::FingerprintMismatch {
                journal: loaded.header.fingerprint,
                current,
            });
        }
        // Last record wins on (impossible in practice) duplicate
        // indexes; indexes beyond the fleet are ignored rather than
        // trusted.
        let mut done = BTreeMap::new();
        for job in &loaded.jobs {
            if (job.index as usize) < fleet.len() {
                done.insert(job.index, job.clone());
            }
        }
        self.metrics.record_resumed_jobs(done.len() as u64);

        // Build the not-yet-journaled remainder as a dense sub-fleet
        // (the runtime collects by index, so indexes must be 0..k) and
        // keep the mapping back to original fleet indexes. A sealed
        // journal is terminal — it replays as-is, never re-executes —
        // so the remainder is empty by construction.
        let mut orig_of: Vec<usize> = Vec::new();
        let mut sub_jobs: Vec<Job> = Vec::new();
        if !loaded.sealed {
            for job in fleet.jobs() {
                if !done.contains_key(&(job.index as u64)) {
                    orig_of.push(job.index);
                    sub_jobs.push(Job {
                        index: sub_jobs.len(),
                        entry: job.entry.clone(),
                        seed: job.seed,
                    });
                }
            }
        }

        let fresh = if sub_jobs.is_empty() {
            None
        } else {
            let sub_fleet = fleet.with_jobs(sub_jobs);
            let mut writer = match JournalWriter::open_resume_with(io, path, loaded.valid_len) {
                Ok(w) => Some(w),
                Err(e) if is_crash(&e) => return Err(e),
                Err(_) => {
                    // The journal survived the crash but the disk now
                    // refuses the re-open: execute the remainder
                    // non-durably rather than losing the run.
                    self.metrics.record_journal_lost();
                    None
                }
            };
            let mut fatal: Option<JournalError> = None;
            let report = self.run_with_observer(&sub_fleet, |result| {
                if fatal.is_some() {
                    return;
                }
                if !result.verify_integrity() {
                    self.metrics.record_corruption_caught(1);
                    fatal = Some(JournalError::Corrupt(CodecError::ChecksumMismatch {
                        stored: result.integrity,
                        computed: result.payload_checksum(),
                    }));
                    return;
                }
                let Some(w) = writer.as_mut() else {
                    return; // journal retired: non-durable mode
                };
                let record = Record::job_done(
                    // bios-audit: allow(P-index) — result.index < sub_fleet.len() (= orig_of.len()) by worker-pool contract
                    orig_of[result.index] as u64,
                    disposition_of(result),
                    u64::from(result.attempts),
                    result.digest_line(),
                );
                match w.append(&record) {
                    Ok(()) => {}
                    Err(e) if is_crash(&e) => fatal = Some(e),
                    Err(_) => {
                        self.metrics.record_journal_records(w.records_written());
                        self.metrics.record_journal_retries(w.io_retries());
                        self.metrics.record_journal_lost();
                        writer = None;
                    }
                }
            });
            if let Some(e) = fatal {
                return Err(e);
            }
            Some((writer, report))
        };

        // Merge journaled and fresh results into index order.
        let mut outcome = FleetOutcome::default();
        let mut digest = String::new();
        let mut fresh_lines: BTreeMap<usize, (Disposition, String)> = BTreeMap::new();
        if let Some((_, report)) = &fresh {
            for result in &report.results {
                fresh_lines.insert(
                    // bios-audit: allow(P-index) — result.index < sub_fleet.len() (= orig_of.len()) by worker-pool contract
                    orig_of[result.index],
                    (disposition_of(result), result.digest_line()),
                );
            }
        }
        for job in fleet.jobs() {
            let (disposition, line) = match done.get(&(job.index as u64)) {
                Some(journaled) => (journaled.disposition, journaled.digest_line.clone()),
                None => match fresh_lines.remove(&job.index) {
                    Some(entry) => entry,
                    // Unreachable: every non-journaled job ran fresh.
                    None => continue,
                },
            };
            tally(&mut outcome, disposition);
            digest.push_str(&line);
            digest.push('\n');
        }

        let executed_jobs = orig_of.len();
        let fresh = match fresh {
            Some((writer, report)) => {
                if let Some(mut w) = writer {
                    match w.seal(fleet.len() as u64, fnv1a(digest.as_bytes())) {
                        Ok(()) => {
                            self.metrics.record_journal_records(w.records_written());
                            self.metrics.record_journal_retries(w.io_retries());
                        }
                        Err(e) if is_crash(&e) => return Err(e),
                        Err(_) => {
                            self.metrics.record_journal_records(w.records_written());
                            self.metrics.record_journal_retries(w.io_retries());
                            self.metrics.record_journal_lost();
                        }
                    }
                }
                Some(report)
            }
            None => {
                // Crash landed after the last JobDone but before the
                // seal: nothing to execute, but seal now so the next
                // resume is a pure terminal replay.
                if !loaded.sealed {
                    match JournalWriter::open_resume_with(io, path, loaded.valid_len) {
                        Ok(mut w) => match w.seal(fleet.len() as u64, fnv1a(digest.as_bytes())) {
                            Ok(()) => {
                                self.metrics.record_journal_records(w.records_written());
                                self.metrics.record_journal_retries(w.io_retries());
                            }
                            Err(e) if is_crash(&e) => return Err(e),
                            Err(_) => {
                                self.metrics.record_journal_records(w.records_written());
                                self.metrics.record_journal_retries(w.io_retries());
                                self.metrics.record_journal_lost();
                            }
                        },
                        Err(e) if is_crash(&e) => return Err(e),
                        Err(_) => self.metrics.record_journal_lost(),
                    }
                }
                None
            }
        };
        Ok(ResumeReport {
            fleet: fleet.name().to_owned(),
            total_jobs: fleet.len(),
            resumed_jobs: done.len(),
            executed_jobs,
            outcome,
            fresh,
            digest,
        })
    }
}

//! # bios-runtime
//!
//! The concurrent fleet-simulation runtime: turns the one-shot
//! `CatalogEntry::run_calibration(seed)` path into a scalable engine
//! that calibrates whole fleets of simulated sensors — the paper's
//! multi-sensor platform multiplied out to many patients, panels, and
//! replicate seeds — behind one interface.
//!
//! Four pieces, all on `std` only (the build environment is offline):
//!
//! * [`pool`] — a channel-fed worker pool on `std::thread` +
//!   `std::sync::mpsc`;
//! * [`fleet`] — the `Job`/`Fleet` batch API with **per-job** error
//!   aggregation instead of fail-fast;
//! * [`cache`] — a memoizing result cache keyed by
//!   `(sensor id, protocol fingerprint, seed)`;
//! * [`metrics`] — atomic counters plus a per-job wall-time histogram,
//!   dumpable as JSON.
//!
//! # Determinism
//!
//! Every job depends only on its `(sensor configuration, seed)` pair —
//! noise streams are derived per job, never shared across threads — and
//! results are collected by job index. A fleet therefore produces
//! **identical calibration outcomes for a given seed regardless of the
//! worker count**; the integration suite pins this with byte-identical
//! digests at 1, 2, and 8 workers.
//!
//! # Examples
//!
//! ```
//! use bios_core::catalog;
//! use bios_runtime::{Fleet, Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig::default().with_workers(4));
//! let fleet = Fleet::builder("table2")
//!     .sensors(catalog::all_table2())
//!     .seed(42)
//!     .build();
//! let report = runtime.run(&fleet);
//! assert_eq!(report.results.len(), 18);
//! assert!(report.failures().next().is_none());
//! // Re-running the same fleet hits the memo cache.
//! let again = runtime.run(&fleet);
//! assert_eq!(again.cache_hits(), 18);
//! assert_eq!(report.summaries_digest(), again.summaries_digest());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod metrics;
pub mod pool;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bios_core::catalog::{CalibrationOutcome, CatalogEntry};

pub use cache::{CacheKey, ResultCache};
pub use fleet::{Fleet, FleetBuilder, FleetReport, Job, JobError, JobResult};
pub use metrics::{MetricsSnapshot, RuntimeMetrics};
pub use pool::WorkerPool;

/// Runtime construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for concurrent fleet runs.
    pub workers: usize,
    /// Whether to memoize calibration outcomes.
    pub cache: bool,
}

impl Default for RuntimeConfig {
    /// One worker per available core, cache enabled.
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: WorkerPool::default_workers(),
            cache: true,
        }
    }
}

impl RuntimeConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> RuntimeConfig {
        self.workers = workers;
        self
    }

    /// Enables or disables the memo cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> RuntimeConfig {
        self.cache = cache;
        self
    }

    /// Default config with the worker count taken from the
    /// `BIOS_WORKERS` environment variable when set and positive.
    #[must_use]
    pub fn from_env() -> RuntimeConfig {
        let mut config = RuntimeConfig::default();
        if let Some(n) = std::env::var("BIOS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            config.workers = n;
        }
        config
    }
}

/// The fleet engine: worker pool + memo cache + metrics, shared across
/// every fleet submitted to it.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    pool: WorkerPool,
    cache: Arc<ResultCache>,
    metrics: Arc<RuntimeMetrics>,
}

/// What one executed job sends back from its worker.
struct Completion {
    index: usize,
    outcome: Result<Arc<CalibrationOutcome>, JobError>,
    wall: Duration,
    from_cache: bool,
}

impl Runtime {
    /// Builds a runtime from `config`.
    #[must_use]
    pub fn new(config: RuntimeConfig) -> Runtime {
        Runtime {
            config,
            pool: WorkerPool::new(config.workers),
            cache: Arc::new(ResultCache::new()),
            metrics: Arc::new(RuntimeMetrics::new()),
        }
    }

    /// Shorthand: default config at an explicit worker count.
    #[must_use]
    pub fn with_workers(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::default().with_workers(workers))
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Point-in-time copy of the cumulative runtime counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Outcomes currently memoized.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every memoized outcome (the next run re-simulates).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Runs the fleet across the worker pool and collects results by
    /// job index. Identical outcomes for identical seeds at any worker
    /// count; per-job failures land in the report instead of aborting
    /// the batch.
    #[must_use]
    pub fn run(&self, fleet: &Fleet) -> FleetReport {
        let started = Instant::now();
        self.metrics.record_submitted(fleet.len() as u64);
        let (tx, rx) = mpsc::channel::<Completion>();
        // Dispatch contiguous *chunks* of jobs rather than single jobs:
        // the job list is shared as one `Arc<[Job]>` and each boxed task
        // walks its index range, so the per-job dispatch cost (entry
        // clone, box, enqueue, dequeue handoff) is amortized over the
        // chunk. Several chunks per worker keep the load balanced when
        // job costs are uneven.
        let jobs: Arc<[Job]> = fleet.jobs().into();
        let chunk = chunk_size(jobs.len(), self.workers());
        let mut start = 0;
        while start < jobs.len() {
            let end = (start + chunk).min(jobs.len());
            let tx = tx.clone();
            let cache = self.config.cache.then(|| Arc::clone(&self.cache));
            let metrics = Arc::clone(&self.metrics);
            let jobs = Arc::clone(&jobs);
            self.pool.execute(move || {
                for job in &jobs[start..end] {
                    let completion =
                        execute_job(job.index, &job.entry, job.seed, cache.as_deref(), &metrics);
                    let _ = tx.send(completion);
                }
            });
            start = end;
        }
        drop(tx);
        let mut slots: Vec<Option<Completion>> = (0..fleet.len()).map(|_| None).collect();
        for completion in rx {
            let index = completion.index;
            slots[index] = Some(completion);
        }
        let results = fleet
            .jobs()
            .iter()
            .zip(slots)
            .map(|(job, slot)| {
                // A missing slot can only mean the worker died harder
                // than catch_unwind (e.g. stack overflow aborts).
                let completion = slot.unwrap_or(Completion {
                    index: job.index,
                    outcome: Err(JobError::Panicked("worker lost".into())),
                    wall: Duration::ZERO,
                    from_cache: false,
                });
                JobResult {
                    index: job.index,
                    sensor: job.entry.id().to_owned(),
                    seed: job.seed,
                    wall: completion.wall,
                    from_cache: completion.from_cache,
                    outcome: completion.outcome,
                }
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: self.workers(),
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics.snapshot(),
        }
    }

    /// Runs the fleet on the calling thread, in job order — the parity
    /// reference for the concurrent path. Shares the same cache and
    /// metrics semantics as [`Runtime::run`].
    #[must_use]
    pub fn run_sequential(&self, fleet: &Fleet) -> FleetReport {
        let started = Instant::now();
        self.metrics.record_submitted(fleet.len() as u64);
        let cache = self.config.cache.then_some(self.cache.as_ref());
        let results = fleet
            .jobs()
            .iter()
            .map(|job| {
                let completion = execute_job(job.index, &job.entry, job.seed, cache, &self.metrics);
                JobResult {
                    index: job.index,
                    sensor: job.entry.id().to_owned(),
                    seed: job.seed,
                    wall: completion.wall,
                    from_cache: completion.from_cache,
                    outcome: completion.outcome,
                }
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: 1,
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// Jobs per dispatched chunk: aim for four chunks per worker so slow
/// jobs can't strand the batch behind one thread, but never less than
/// one job per chunk.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil((workers * 4).max(1)).max(1)
}

/// Runs one job: cache probe, simulate on miss, memoize, meter.
fn execute_job(
    index: usize,
    entry: &CatalogEntry,
    seed: u64,
    cache: Option<&ResultCache>,
    metrics: &RuntimeMetrics,
) -> Completion {
    let t0 = Instant::now();
    let key = cache.map(|_| CacheKey {
        sensor: entry.id().to_owned(),
        protocol: entry.protocol_fingerprint(),
        seed,
    });
    if let (Some(cache), Some(key)) = (cache, &key) {
        if let Some(hit) = cache.get(key) {
            let wall = t0.elapsed();
            metrics.record_finished(true, true, wall);
            return Completion {
                index,
                outcome: Ok(hit),
                wall,
                from_cache: true,
            };
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| entry.run_calibration(seed)))
        .map_err(|payload| JobError::Panicked(panic_message(&payload)))
        .and_then(|r| r.map_err(JobError::Calibration))
        .map(|outcome| match (cache, key) {
            (Some(cache), Some(key)) => cache.insert(key, outcome),
            _ => Arc::new(outcome),
        });
    let wall = t0.elapsed();
    metrics.record_finished(outcome.is_ok(), false, wall);
    Completion {
        index,
        outcome,
        wall,
        from_cache: false,
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    #[test]
    fn concurrent_matches_sequential() {
        let fleet = Fleet::builder("parity")
            .sensors(catalog::cyp_sensors())
            .seeds([7, 8])
            .build();
        let concurrent = Runtime::with_workers(4).run(&fleet);
        let sequential = Runtime::with_workers(1).run_sequential(&fleet);
        assert_eq!(concurrent.summaries_digest(), sequential.summaries_digest());
    }

    #[test]
    fn cache_serves_repeat_runs() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("repeat")
            .sensors(catalog::glucose_sensors())
            .seed(42)
            .build();
        let first = runtime.run(&fleet);
        assert_eq!(first.cache_hits(), 0);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), fleet.len());
        assert_eq!(first.summaries_digest(), second.summaries_digest());
        let m = runtime.metrics();
        assert_eq!(m.cache_hits, fleet.len() as u64);
        assert_eq!(m.jobs_submitted, 2 * fleet.len() as u64);
    }

    #[test]
    fn cache_can_be_disabled() {
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(2).with_cache(false));
        let fleet = Fleet::builder("uncached")
            .sensor(catalog::our_glucose_sensor())
            .seed(1)
            .build();
        let _ = runtime.run(&fleet);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), 0);
        assert_eq!(runtime.cache_len(), 0);
    }

    #[test]
    fn different_seeds_do_not_alias_in_cache() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("seeds")
            .sensor(catalog::our_lactate_sensor())
            .seeds([1, 2])
            .build();
        let report = runtime.run(&fleet);
        let a = report.outcome("lactate/ours", 1).unwrap();
        let b = report.outcome("lactate/ours", 2).unwrap();
        assert_ne!(a.summary.sensitivity, b.summary.sensitivity);
    }

    #[test]
    fn empty_fleet_reports_empty() {
        let report = Runtime::with_workers(2).run(&Fleet::builder("empty").build());
        assert!(report.results.is_empty());
        assert_eq!(report.throughput_jobs_per_sec(), 0.0);
    }

    #[test]
    fn from_env_respects_bios_workers() {
        // Only assert the parse path; don't mutate the environment of
        // the whole test process.
        let config = RuntimeConfig::from_env();
        assert!(config.workers >= 1);
    }
}

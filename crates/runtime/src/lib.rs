//! # bios-runtime
//!
//! The concurrent fleet-simulation runtime: turns the one-shot
//! `CatalogEntry::run_calibration(seed)` path into a scalable engine
//! that calibrates whole fleets of simulated sensors — the paper's
//! multi-sensor platform multiplied out to many patients, panels, and
//! replicate seeds — behind one interface.
//!
//! Four pieces, all on `std` only (the build environment is offline):
//!
//! * [`pool`] — a channel-fed worker pool on `std::thread` +
//!   `std::sync::mpsc`;
//! * [`fleet`] — the `Job`/`Fleet` batch API with **per-job** error
//!   aggregation instead of fail-fast;
//! * [`cache`] — a memoizing result cache keyed by
//!   `(sensor id, protocol fingerprint, seed)`;
//! * [`metrics`] — atomic counters plus a per-job wall-time histogram,
//!   dumpable as JSON.
//!
//! # Determinism
//!
//! Every job depends only on its `(sensor configuration, seed)` pair —
//! noise streams are derived per job, never shared across threads — and
//! results are collected by job index. A fleet therefore produces
//! **identical calibration outcomes for a given seed regardless of the
//! worker count**; the integration suite pins this with byte-identical
//! digests at 1, 2, and 8 workers.
//!
//! # Examples
//!
//! ```
//! use bios_core::catalog;
//! use bios_runtime::{Fleet, Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig::default().with_workers(4));
//! let fleet = Fleet::builder("table2")
//!     .sensors(catalog::all_table2())
//!     .seed(42)
//!     .build();
//! let report = runtime.run(&fleet);
//! assert_eq!(report.results.len(), 18);
//! assert!(report.failures().next().is_none());
//! // Re-running the same fleet hits the memo cache.
//! let again = runtime.run(&fleet);
//! assert_eq!(again.cache_hits(), 18);
//! assert_eq!(report.summaries_digest(), again.summaries_digest());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod fleet;
pub mod metrics;
pub mod pool;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bios_core::catalog::{CalibrationOutcome, CatalogEntry};
use bios_faults::{FaultPlan, FaultTally};

pub use cache::{CacheKey, ResultCache, DEFAULT_CAPACITY};
pub use fleet::{Fleet, FleetBuilder, FleetOutcome, FleetReport, Job, JobError, JobResult};
pub use metrics::{MetricsSnapshot, RuntimeMetrics};
pub use pool::WorkerPool;

/// Runtime construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for concurrent fleet runs.
    pub workers: usize,
    /// Whether to memoize calibration outcomes.
    pub cache: bool,
    /// Memo-cache capacity in entries; 0 means unbounded.
    pub cache_capacity: usize,
    /// Execution attempts per job (≥ 1); attempts beyond the first are
    /// taken only for transient failures.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub retry_backoff: Duration,
    /// Per-job sample budget; jobs whose estimated workload exceeds it
    /// are rejected with [`JobError::Budget`] before simulating. 0
    /// disables the gate.
    pub job_budget: u64,
}

impl Default for RuntimeConfig {
    /// One worker per available core, cache enabled and bounded at
    /// [`DEFAULT_CAPACITY`], three attempts with 200 µs initial
    /// backoff, no job budget.
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: WorkerPool::default_workers(),
            cache: true,
            cache_capacity: DEFAULT_CAPACITY,
            max_attempts: 3,
            retry_backoff: Duration::from_micros(200),
            job_budget: 0,
        }
    }
}

impl RuntimeConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> RuntimeConfig {
        self.workers = workers;
        self
    }

    /// Enables or disables the memo cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> RuntimeConfig {
        self.cache = cache;
        self
    }

    /// Overrides the memo-cache capacity (entries; 0 = unbounded).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the per-job attempt limit (clamped to at least 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> RuntimeConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the initial retry backoff.
    #[must_use]
    pub fn with_retry_backoff(mut self, backoff: Duration) -> RuntimeConfig {
        self.retry_backoff = backoff;
        self
    }

    /// Sets the per-job sample budget (0 disables the gate).
    #[must_use]
    pub fn with_job_budget(mut self, budget: u64) -> RuntimeConfig {
        self.job_budget = budget;
        self
    }

    /// Default config with the worker count taken from `BIOS_WORKERS`
    /// and the cache capacity from `BIOS_CACHE_CAP`, when set and
    /// parseable.
    #[must_use]
    pub fn from_env() -> RuntimeConfig {
        let mut config = RuntimeConfig::default();
        if let Some(n) = std::env::var("BIOS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            config.workers = n;
        }
        if let Some(cap) = std::env::var("BIOS_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config.cache_capacity = cap;
        }
        config
    }
}

/// The per-job robustness knobs, copied out of [`RuntimeConfig`] so the
/// worker closures capture a small `Copy` value instead of the runtime.
#[derive(Debug, Clone, Copy)]
struct ExecPolicy {
    max_attempts: u32,
    retry_backoff: Duration,
    job_budget: u64,
}

impl ExecPolicy {
    fn from_config(config: &RuntimeConfig) -> ExecPolicy {
        ExecPolicy {
            max_attempts: config.max_attempts.max(1),
            retry_backoff: config.retry_backoff,
            job_budget: config.job_budget,
        }
    }

    /// Deterministic exponential backoff for the retry after `attempt`
    /// (1-based), capped so injected glitch storms cannot stall a
    /// worker for long.
    fn backoff_after(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(8);
        self.retry_backoff
            .saturating_mul(1u32 << doublings)
            .min(Duration::from_millis(50))
    }
}

/// The fleet engine: worker pool + memo cache + metrics, shared across
/// every fleet submitted to it.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    pool: WorkerPool,
    cache: Arc<ResultCache>,
    metrics: Arc<RuntimeMetrics>,
}

/// What one executed job sends back from its worker.
struct Completion {
    index: usize,
    outcome: Result<Arc<CalibrationOutcome>, JobError>,
    wall: Duration,
    from_cache: bool,
    attempts: u32,
    injected: FaultTally,
}

impl Runtime {
    /// Builds a runtime from `config`.
    #[must_use]
    pub fn new(config: RuntimeConfig) -> Runtime {
        Runtime {
            config,
            pool: WorkerPool::new(config.workers),
            cache: Arc::new(ResultCache::with_capacity(config.cache_capacity)),
            metrics: Arc::new(RuntimeMetrics::new()),
        }
    }

    /// Shorthand: default config at an explicit worker count.
    #[must_use]
    pub fn with_workers(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::default().with_workers(workers))
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Point-in-time copy of the cumulative runtime counters, with the
    /// cache's eviction count merged in.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.cache_evictions = self.cache.evictions();
        snapshot
    }

    /// Outcomes currently memoized.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every memoized outcome (the next run re-simulates).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Runs the fleet across the worker pool and collects results by
    /// job index. Identical outcomes for identical seeds at any worker
    /// count; per-job failures land in the report instead of aborting
    /// the batch.
    #[must_use]
    pub fn run(&self, fleet: &Fleet) -> FleetReport {
        let started = Instant::now();
        // Self-healing pass: replace any worker that retired after
        // catching a panicking task in an earlier run.
        let respawned = self.pool.heal();
        self.metrics.record_worker_respawns(respawned as u64);
        self.metrics.record_submitted(fleet.len() as u64);
        let (tx, rx) = mpsc::channel::<Completion>();
        // Dispatch contiguous *chunks* of jobs rather than single jobs:
        // the job list is shared as one `Arc<[Job]>` and each boxed task
        // walks its index range, so the per-job dispatch cost (entry
        // clone, box, enqueue, dequeue handoff) is amortized over the
        // chunk. Several chunks per worker keep the load balanced when
        // job costs are uneven.
        let jobs: Arc<[Job]> = fleet.jobs().into();
        let policy = ExecPolicy::from_config(&self.config);
        let chunk = chunk_size(jobs.len(), self.workers());
        let mut start = 0;
        while start < jobs.len() {
            let end = (start + chunk).min(jobs.len());
            let tx = tx.clone();
            let cache = self.config.cache.then(|| Arc::clone(&self.cache));
            let metrics = Arc::clone(&self.metrics);
            let jobs = Arc::clone(&jobs);
            let plan = fleet.fault_plan_arc();
            self.pool.execute(move || {
                for job in &jobs[start..end] {
                    let completion = execute_job(
                        job.index,
                        &job.entry,
                        job.seed,
                        plan.as_deref(),
                        cache.as_deref(),
                        &metrics,
                        policy,
                    );
                    let _ = tx.send(completion);
                }
            });
            start = end;
        }
        drop(tx);
        let mut slots: Vec<Option<Completion>> = (0..fleet.len()).map(|_| None).collect();
        for completion in rx {
            let index = completion.index;
            slots[index] = Some(completion);
        }
        let results = fleet
            .jobs()
            .iter()
            .zip(slots)
            .map(|(job, slot)| {
                // A missing slot can only mean the worker died harder
                // than catch_unwind (e.g. stack overflow aborts).
                let completion = slot.unwrap_or(Completion {
                    index: job.index,
                    outcome: Err(JobError::Panicked("worker lost".into())),
                    wall: Duration::ZERO,
                    from_cache: false,
                    attempts: 0,
                    injected: FaultTally::default(),
                });
                JobResult {
                    index: job.index,
                    sensor: job.entry.id().to_owned(),
                    seed: job.seed,
                    wall: completion.wall,
                    from_cache: completion.from_cache,
                    attempts: completion.attempts,
                    injected: completion.injected,
                    outcome: completion.outcome,
                }
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: self.workers(),
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics(),
        }
    }

    /// Runs the fleet on the calling thread, in job order — the parity
    /// reference for the concurrent path. Shares the same cache and
    /// metrics semantics as [`Runtime::run`].
    #[must_use]
    pub fn run_sequential(&self, fleet: &Fleet) -> FleetReport {
        let started = Instant::now();
        self.metrics.record_submitted(fleet.len() as u64);
        let cache = self.config.cache.then_some(self.cache.as_ref());
        let policy = ExecPolicy::from_config(&self.config);
        let results = fleet
            .jobs()
            .iter()
            .map(|job| {
                let completion = execute_job(
                    job.index,
                    &job.entry,
                    job.seed,
                    fleet.fault_plan(),
                    cache,
                    &self.metrics,
                    policy,
                );
                JobResult {
                    index: job.index,
                    sensor: job.entry.id().to_owned(),
                    seed: job.seed,
                    wall: completion.wall,
                    from_cache: completion.from_cache,
                    attempts: completion.attempts,
                    injected: completion.injected,
                    outcome: completion.outcome,
                }
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: 1,
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics(),
        }
    }
}

/// Jobs per dispatched chunk: aim for four chunks per worker so slow
/// jobs can't strand the batch behind one thread, but never less than
/// one job per chunk.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil((workers * 4).max(1)).max(1)
}

/// Runs one job: realize faults, budget gate, cache probe, then the
/// attempt loop — simulate behind `catch_unwind`, retry transient
/// failures with deterministic backoff, memoize successes, meter
/// everything.
///
/// Every branch here is a pure function of `(entry, seed, plan,
/// policy)` — never of the worker, the attempt wall-clock, or cache
/// state (the budget gate runs *before* the cache probe so a rejection
/// cannot depend on what happens to be memoized) — which is what keeps
/// fleet outcomes identical across worker counts even mid-chaos.
#[allow(clippy::too_many_arguments)]
fn execute_job(
    index: usize,
    entry: &CatalogEntry,
    seed: u64,
    plan: Option<&FaultPlan>,
    cache: Option<&ResultCache>,
    metrics: &RuntimeMetrics,
    policy: ExecPolicy,
) -> Completion {
    let t0 = Instant::now();
    // Realize this job's faults once, up front: realization depends
    // only on (plan, sensor id, job seed), so retries and reruns see
    // the exact same fault set. A plan that realizes nothing for this
    // job leaves the healthy path (and its cache slot) untouched.
    let faults = plan
        .map(|p| p.realize(entry.id(), seed))
        .filter(|f| !f.is_healthy());
    let injected = faults
        .as_ref()
        .map_or_else(FaultTally::default, |f| f.tally());
    metrics.record_faults_injected(injected.total() as u64);
    let physics_plan = faults.as_ref().and(plan);

    // Budget gate, before the cache probe so the verdict is a pure
    // function of the job.
    if policy.job_budget > 0 {
        let required = entry.calibration_workload();
        if required > policy.job_budget {
            metrics.record_budget_rejection();
            let wall = t0.elapsed();
            metrics.record_finished(false, false, wall);
            return Completion {
                index,
                outcome: Err(JobError::Budget {
                    required,
                    budget: policy.job_budget,
                }),
                wall,
                from_cache: false,
                attempts: 0,
                injected,
            };
        }
    }

    let key = cache.map(|_| CacheKey {
        sensor: entry.id().to_owned(),
        protocol: entry.protocol_fingerprint(),
        plan: physics_plan.map_or(0, FaultPlan::fingerprint),
        seed,
    });
    if let (Some(cache), Some(key)) = (cache, &key) {
        if let Some(hit) = cache.get(key) {
            let wall = t0.elapsed();
            metrics.record_finished(true, true, wall);
            return Completion {
                index,
                outcome: Ok(hit),
                wall,
                from_cache: true,
                attempts: 0,
                injected,
            };
        }
    }

    let max_attempts = policy.max_attempts.max(1);
    let mut attempt: u32 = 1;
    let outcome = loop {
        let transient_quota = faults.as_ref().map_or(0, |f| f.transient_failures);
        let attempt_result: Result<_, JobError> = if attempt <= transient_quota {
            // Injected transient glitch: fail before touching the
            // physics, deterministically for the first N attempts.
            Err(JobError::Transient {
                message: format!("injected transient glitch ({attempt}/{transient_quota})"),
                attempts: attempt,
            })
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                if faults.as_ref().is_some_and(|f| f.panic_job) {
                    panic!("injected worker panic (fault plan)");
                }
                entry.run_calibration_with(seed, physics_plan)
            }))
            .map_err(|payload| JobError::Panicked(panic_message(&payload)))
            .and_then(|r| r.map_err(JobError::Calibration))
        };
        match attempt_result {
            Ok(outcome) => break Ok(outcome),
            Err(error) if error.is_transient() && attempt < max_attempts => {
                metrics.record_retry();
                let backoff = policy.backoff_after(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
            Err(error) => break Err(error),
        }
    };
    let outcome = outcome.map(|outcome| match (cache, key) {
        (Some(cache), Some(key)) => cache.insert(key, outcome),
        _ => Arc::new(outcome),
    });
    let wall = t0.elapsed();
    metrics.record_finished(outcome.is_ok(), false, wall);
    Completion {
        index,
        outcome,
        wall,
        from_cache: false,
        attempts: attempt,
        injected,
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    #[test]
    fn concurrent_matches_sequential() {
        let fleet = Fleet::builder("parity")
            .sensors(catalog::cyp_sensors())
            .seeds([7, 8])
            .build();
        let concurrent = Runtime::with_workers(4).run(&fleet);
        let sequential = Runtime::with_workers(1).run_sequential(&fleet);
        assert_eq!(concurrent.summaries_digest(), sequential.summaries_digest());
    }

    #[test]
    fn cache_serves_repeat_runs() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("repeat")
            .sensors(catalog::glucose_sensors())
            .seed(42)
            .build();
        let first = runtime.run(&fleet);
        assert_eq!(first.cache_hits(), 0);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), fleet.len());
        assert_eq!(first.summaries_digest(), second.summaries_digest());
        let m = runtime.metrics();
        assert_eq!(m.cache_hits, fleet.len() as u64);
        assert_eq!(m.jobs_submitted, 2 * fleet.len() as u64);
    }

    #[test]
    fn cache_can_be_disabled() {
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(2).with_cache(false));
        let fleet = Fleet::builder("uncached")
            .sensor(catalog::our_glucose_sensor())
            .seed(1)
            .build();
        let _ = runtime.run(&fleet);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), 0);
        assert_eq!(runtime.cache_len(), 0);
    }

    #[test]
    fn different_seeds_do_not_alias_in_cache() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("seeds")
            .sensor(catalog::our_lactate_sensor())
            .seeds([1, 2])
            .build();
        let report = runtime.run(&fleet);
        let a = report.outcome("lactate/ours", 1).unwrap();
        let b = report.outcome("lactate/ours", 2).unwrap();
        assert_ne!(a.summary.sensitivity, b.summary.sensitivity);
    }

    #[test]
    fn empty_fleet_reports_empty() {
        let report = Runtime::with_workers(2).run(&Fleet::builder("empty").build());
        assert!(report.results.is_empty());
        assert_eq!(report.throughput_jobs_per_sec(), 0.0);
    }

    #[test]
    fn from_env_respects_bios_workers() {
        // Only assert the parse path; don't mutate the environment of
        // the whole test process.
        let config = RuntimeConfig::from_env();
        assert!(config.workers >= 1);
    }
}

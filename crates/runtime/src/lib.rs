//! # bios-runtime
//!
//! The concurrent fleet-simulation runtime: turns the one-shot
//! `CatalogEntry::run_calibration(seed)` path into a scalable engine
//! that calibrates whole fleets of simulated sensors — the paper's
//! multi-sensor platform multiplied out to many patients, panels, and
//! replicate seeds — behind one interface.
//!
//! Five pieces, all on `std` only (the build environment is offline):
//!
//! * [`pool`] — a channel-fed worker pool on `std::thread` +
//!   `std::sync::mpsc`;
//! * [`fleet`] — the `Job`/`Fleet` batch API with **per-job** error
//!   aggregation instead of fail-fast;
//! * [`cache`] — a memoizing result cache keyed by
//!   `(sensor id, protocol fingerprint, seed)`, persistable to a
//!   checksummed snapshot file;
//! * [`metrics`] — atomic counters plus a per-job wall-time histogram,
//!   dumpable as JSON;
//! * [`journal`] — a write-ahead run journal giving fleets crash
//!   resume ([`Runtime::run_journaled`] / [`Runtime::resume`]).
//!
//! A hang watchdog (enabled via
//! [`RuntimeConfig::with_job_deadline`]) supervises in-flight jobs: a
//! job silent past the soft deadline is cancelled cooperatively through
//! the solver checkpoints in `bios-electrochem`, its loss is reported
//! as the deterministic [`JobError::Deadline`], and the worker that
//! hosted it retires and is respawned by the healing pass.
//!
//! # Determinism
//!
//! Every job depends only on its `(sensor configuration, seed)` pair —
//! noise streams are derived per job, never shared across threads — and
//! results are collected by job index. A fleet therefore produces
//! **identical calibration outcomes for a given seed regardless of the
//! worker count**; the integration suite pins this with byte-identical
//! digests at 1, 2, and 8 workers.
//!
//! # Examples
//!
//! ```
//! use bios_core::catalog;
//! use bios_runtime::{Fleet, Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig::default().with_workers(4));
//! let fleet = Fleet::builder("table2")
//!     .sensors(catalog::all_table2())
//!     .seed(42)
//!     .build();
//! let report = runtime.run(&fleet);
//! assert_eq!(report.results.len(), 18);
//! assert!(report.failures().next().is_none());
//! // Re-running the same fleet hits the memo cache.
//! let again = runtime.run(&fleet);
//! assert_eq!(again.cache_hits(), 18);
//! assert_eq!(report.summaries_digest(), again.summaries_digest());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod journal;
pub mod metrics;
pub mod pool;
mod watchdog;

use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bios_core::catalog::{CalibrationOutcome, CatalogEntry};
use bios_electrochem::diffusion::DiffusionGrid;
use bios_faults::{FaultPlan, FaultTally};
use bios_units::{DiffusionCoefficient, Molar, Seconds};

use crate::watchdog::{WatchRegistry, Watchdog};

pub use cache::{CacheKey, CacheLoadReport, ResultCache, DEFAULT_CAPACITY};
pub use fleet::{Fleet, FleetBuilder, FleetOutcome, FleetReport, Job, JobError, JobResult};
pub use journal::{JournalOptions, ResumeReport};
pub use metrics::{MetricsSnapshot, RuntimeMetrics};
pub use pool::{TaskVerdict, WorkerPool};

/// Runtime construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for concurrent fleet runs.
    pub workers: usize,
    /// Whether to memoize calibration outcomes.
    pub cache: bool,
    /// Memo-cache capacity in entries; 0 means unbounded.
    pub cache_capacity: usize,
    /// Execution attempts per job (≥ 1); attempts beyond the first are
    /// taken only for transient failures.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub retry_backoff: Duration,
    /// Per-job sample budget; jobs whose estimated workload exceeds it
    /// are rejected with [`JobError::Budget`] before simulating. 0
    /// disables the gate.
    pub job_budget: u64,
    /// Soft per-job deadline. When non-zero, a watchdog thread
    /// supervises in-flight jobs and cooperatively cancels any job
    /// silent past the deadline; the loss surfaces as the deterministic
    /// [`JobError::Deadline`]. [`Duration::ZERO`] (the default)
    /// disables supervision — a job that would stall is then rejected
    /// synchronously instead of hanging.
    pub job_deadline: Duration,
}

impl Default for RuntimeConfig {
    /// One worker per available core, cache enabled and bounded at
    /// [`DEFAULT_CAPACITY`], three attempts with 200 µs initial
    /// backoff, no job budget.
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: WorkerPool::default_workers(),
            cache: true,
            cache_capacity: DEFAULT_CAPACITY,
            max_attempts: 3,
            retry_backoff: Duration::from_micros(200),
            job_budget: 0,
            job_deadline: Duration::ZERO,
        }
    }
}

impl RuntimeConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> RuntimeConfig {
        self.workers = workers;
        self
    }

    /// Enables or disables the memo cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> RuntimeConfig {
        self.cache = cache;
        self
    }

    /// Overrides the memo-cache capacity (entries; 0 = unbounded).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the per-job attempt limit (clamped to at least 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> RuntimeConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the initial retry backoff.
    #[must_use]
    pub fn with_retry_backoff(mut self, backoff: Duration) -> RuntimeConfig {
        self.retry_backoff = backoff;
        self
    }

    /// Sets the per-job sample budget (0 disables the gate).
    #[must_use]
    pub fn with_job_budget(mut self, budget: u64) -> RuntimeConfig {
        self.job_budget = budget;
        self
    }

    /// Arms the hang watchdog with a soft per-job deadline
    /// ([`Duration::ZERO`] disables it).
    #[must_use]
    pub fn with_job_deadline(mut self, deadline: Duration) -> RuntimeConfig {
        self.job_deadline = deadline;
        self
    }

    /// Default config with the worker count taken from `BIOS_WORKERS`,
    /// the cache capacity from `BIOS_CACHE_CAP`, and the watchdog
    /// deadline from `BIOS_JOB_DEADLINE_MS`, when set and parseable.
    /// A set-but-malformed value is *not* silently ignored: it keeps
    /// the default and prints one deterministic warning line to stderr
    /// (see [`parse_env_value`]).
    ///
    /// `BIOS_CACHE_CAP` must be **positive**. In
    /// [`RuntimeConfig::with_cache_capacity`] a capacity of 0 means
    /// *unbounded*, but an operator writing `BIOS_CACHE_CAP=0` almost
    /// always means *disabled* — the opposite. Rather than guess, a
    /// zero value is rejected with the same style of stderr warning as
    /// a malformed one, and the default capacity is kept; disable
    /// memoization with [`RuntimeConfig::with_cache`] instead.
    #[must_use]
    pub fn from_env() -> RuntimeConfig {
        let mut config = RuntimeConfig::default();
        if let Some(n) =
            env_parsed::<usize>("BIOS_WORKERS", "a positive integer").filter(|&n| n > 0)
        {
            config.workers = n;
        }
        match env_parsed::<usize>("BIOS_CACHE_CAP", "a positive integer") {
            Some(0) => eprintln!(
                "warning: ignoring ambiguous BIOS_CACHE_CAP=\"0\" (0 would mean unbounded, \
                 not disabled; set a positive capacity, or disable memoization with \
                 RuntimeConfig::with_cache(false))"
            ),
            Some(cap) => config.cache_capacity = cap,
            None => {}
        }
        if let Some(ms) = env_parsed::<u64>("BIOS_JOB_DEADLINE_MS", "milliseconds as an integer") {
            config.job_deadline = Duration::from_millis(ms);
        }
        config
    }
}

/// Parses one environment-variable value, warning instead of silently
/// ignoring garbage: a malformed `raw` produces exactly one
/// deterministic line on stderr —
/// `warning: ignoring malformed NAME="raw" (expected WHAT)` — and
/// `None`, so the caller keeps its default. Shared by
/// [`RuntimeConfig::from_env`] and `bios-gateway`'s
/// `GatewayConfig::from_env` (`BIOS_GATEWAY_QPS`,
/// `BIOS_BREAKER_THRESHOLD`). `name`, `raw`, and `what` are free-form
/// identifier/text strings.
pub fn parse_env_value<T: std::str::FromStr>(name: &str, raw: &str, what: &str) -> Option<T> {
    match raw.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: ignoring malformed {name}={raw:?} (expected {what})");
            None
        }
    }
}

/// [`parse_env_value`] applied to the process environment; unset
/// variables are silently `None`.
fn env_parsed<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    std::env::var(name)
        .ok()
        .and_then(|raw| parse_env_value(name, &raw, what))
}

/// The per-job robustness knobs, copied out of [`RuntimeConfig`] so the
/// worker closures capture a small `Copy` value instead of the runtime.
#[derive(Debug, Clone, Copy)]
struct ExecPolicy {
    max_attempts: u32,
    retry_backoff: Duration,
    job_budget: u64,
    job_deadline: Duration,
}

impl ExecPolicy {
    fn from_config(config: &RuntimeConfig) -> ExecPolicy {
        ExecPolicy {
            max_attempts: config.max_attempts.max(1),
            retry_backoff: config.retry_backoff,
            job_budget: config.job_budget,
            job_deadline: config.job_deadline,
        }
    }

    /// Deterministic exponential backoff for the retry after `attempt`
    /// (1-based), capped so injected glitch storms cannot stall a
    /// worker for long.
    fn backoff_after(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(8);
        self.retry_backoff
            .saturating_mul(1u32 << doublings)
            .min(Duration::from_millis(50))
    }
}

/// The fleet engine: worker pool + memo cache + metrics, shared across
/// every fleet submitted to it.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    pool: WorkerPool,
    cache: Arc<ResultCache>,
    metrics: Arc<RuntimeMetrics>,
}

/// What one executed job sends back from its worker.
struct Completion {
    index: usize,
    outcome: Result<Arc<CalibrationOutcome>, JobError>,
    wall: Duration,
    from_cache: bool,
    attempts: u32,
    injected: FaultTally,
}

impl Runtime {
    /// Builds a runtime from `config`.
    #[must_use]
    pub fn new(config: RuntimeConfig) -> Runtime {
        Runtime {
            config,
            pool: WorkerPool::new(config.workers),
            cache: Arc::new(ResultCache::with_capacity(config.cache_capacity)),
            metrics: Arc::new(RuntimeMetrics::new()),
        }
    }

    /// Shorthand: default config at an explicit worker count.
    #[must_use]
    pub fn with_workers(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::default().with_workers(workers))
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The live counter block shared with every worker. The gateway
    /// layer (`bios-gateway`) records its admission/breaker/brownout
    /// decisions here so one [`MetricsSnapshot`] covers the whole
    /// intake-to-result pipeline.
    #[must_use]
    pub fn metrics_handle(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Point-in-time copy of the cumulative runtime counters, with the
    /// cache's eviction and corruption counts merged in.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.cache_evictions = self.cache.evictions();
        snapshot.cache_corrupt_dropped = self.cache.corrupt_dropped();
        snapshot
    }

    /// Outcomes currently memoized.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every memoized outcome (the next run re-simulates).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Persists the memo cache to a checksummed snapshot file; returns
    /// the entry count written. See [`ResultCache::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.cache.save(path)
    }

    /// [`Runtime::save_cache`] on an explicit storage backend (the
    /// torture gate injects [`bios_recover::SimIo`] here to prove a
    /// crash at any op leaves the previous snapshot intact).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn save_cache_on(
        &self,
        backend: &dyn bios_recover::StorageIo,
        path: impl AsRef<Path>,
    ) -> io::Result<u64> {
        self.cache.save_with(backend, path)
    }

    /// Loads a cache snapshot written by [`Runtime::save_cache`].
    /// Corrupt or non-finite entries are dropped and counted (surfacing
    /// as `cache_corrupt_dropped` in [`Runtime::metrics`]), never
    /// served. See [`ResultCache::load`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a file that is not a cache
    /// snapshot at all is [`io::ErrorKind::InvalidData`].
    pub fn load_cache(&self, path: impl AsRef<Path>) -> io::Result<CacheLoadReport> {
        self.cache.load(path)
    }

    /// [`Runtime::load_cache`] on an explicit storage backend.
    ///
    /// # Errors
    ///
    /// As [`Runtime::load_cache`].
    pub fn load_cache_on(
        &self,
        backend: &dyn bios_recover::StorageIo,
        path: impl AsRef<Path>,
    ) -> io::Result<CacheLoadReport> {
        self.cache.load_with(backend, path)
    }

    /// Runs the fleet across the worker pool and collects results by
    /// job index. Identical outcomes for identical seeds at any worker
    /// count; per-job failures land in the report instead of aborting
    /// the batch.
    #[must_use]
    pub fn run(&self, fleet: &Fleet) -> FleetReport {
        self.run_with_observer(fleet, |_| {})
    }

    /// [`Runtime::run`] with a completion observer: `on_result` fires
    /// for every job *as it completes* (arbitrary order), before the
    /// result is surfaced in the report. The journal layer uses this as
    /// its write-ahead point — a result is durably journaled before the
    /// caller can see it.
    pub(crate) fn run_with_observer(
        &self,
        fleet: &Fleet,
        mut on_result: impl FnMut(&JobResult),
    ) -> FleetReport {
        let started = Instant::now();
        // Self-healing pass: replace any worker that retired after
        // catching a panicking task (or absorbing a watchdog
        // cancellation) in an earlier run.
        let respawned = self.pool.heal();
        self.metrics.record_worker_respawns(respawned as u64);
        self.metrics.record_submitted(fleet.len() as u64);
        // Arm the hang watchdog for the duration of the run; dropping
        // the handle at the end of this function stops the supervisor.
        let watchdog = (self.config.job_deadline > Duration::ZERO)
            .then(|| Watchdog::spawn(self.config.job_deadline));
        let registry = watchdog.as_ref().map(Watchdog::registry);
        let (tx, rx) = mpsc::channel::<Completion>();
        // Dispatch contiguous *chunks* of jobs rather than single jobs:
        // the job list is shared as one `Arc<[Job]>` and each boxed task
        // walks its index range, so the per-job dispatch cost (entry
        // clone, box, enqueue, dequeue handoff) is amortized over the
        // chunk. Several chunks per worker keep the load balanced when
        // job costs are uneven.
        let jobs: Arc<[Job]> = fleet.jobs().into();
        let policy = ExecPolicy::from_config(&self.config);
        let chunk = chunk_size(jobs.len(), self.workers());
        let mut start = 0;
        while start < jobs.len() {
            let end = (start + chunk).min(jobs.len());
            let tx = tx.clone();
            let cache = self.config.cache.then(|| Arc::clone(&self.cache));
            let metrics = Arc::clone(&self.metrics);
            let jobs = Arc::clone(&jobs);
            let plan = fleet.fault_plan_arc();
            let registry = registry.clone();
            self.pool.execute_judged(move || {
                let mut absorbed_stall = false;
                for job in &jobs[start..end] {
                    let completion = execute_job(
                        job.index,
                        &job.entry,
                        job.seed,
                        plan.as_deref(),
                        cache.as_deref(),
                        registry.as_deref(),
                        &metrics,
                        policy,
                    );
                    absorbed_stall |=
                        registry.is_some() && matches!(completion.outcome, Err(JobError::Deadline));
                    let _ = tx.send(completion);
                }
                if absorbed_stall {
                    // The thread sat in a livelock until the watchdog
                    // cancelled it; finish the chunk (determinism), then
                    // retire so `heal` replaces it with a fresh thread.
                    metrics.record_stalled_worker();
                    TaskVerdict::Retire
                } else {
                    TaskVerdict::Continue
                }
            });
            start = end;
        }
        drop(tx);
        let mut slots: Vec<Option<JobResult>> = (0..fleet.len()).map(|_| None).collect();
        let mut received = 0usize;
        while received < fleet.len() {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(completion) => {
                    let job = &fleet.jobs()[completion.index];
                    let result = JobResult {
                        index: job.index,
                        sensor: job.entry.id().to_owned(),
                        seed: job.seed,
                        wall: completion.wall,
                        from_cache: completion.from_cache,
                        attempts: completion.attempts,
                        injected: completion.injected,
                        outcome: completion.outcome,
                        integrity: 0,
                    }
                    .sealed();
                    on_result(&result);
                    slots[completion.index] = Some(result);
                    received += 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers retire mid-run on watchdog cancellations;
                    // if the whole pool has drained, heal it *now* so
                    // the queued chunks keep flowing instead of
                    // deadlocking the collection loop.
                    if self.pool.live_workers() == 0 {
                        let respawned = self.pool.heal();
                        self.metrics.record_worker_respawns(respawned as u64);
                        if respawned == 0 {
                            break; // OS refuses threads: report what we have
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let results = fleet
            .jobs()
            .iter()
            .zip(slots)
            .map(|(job, slot)| {
                // A missing slot can only mean the worker died harder
                // than catch_unwind (e.g. stack overflow aborts).
                slot.unwrap_or_else(|| {
                    JobResult {
                        index: job.index,
                        sensor: job.entry.id().to_owned(),
                        seed: job.seed,
                        wall: Duration::ZERO,
                        from_cache: false,
                        attempts: 0,
                        injected: FaultTally::default(),
                        outcome: Err(JobError::Panicked("worker lost".into())),
                        integrity: 0,
                    }
                    .sealed()
                })
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: self.workers(),
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics(),
        }
    }

    /// Opens an incremental job stream over this runtime's pool — the
    /// submission surface for callers that discover jobs one at a time
    /// (a streaming gateway tick) instead of assembling a [`Fleet`] up
    /// front. Heals the pool first, exactly like a batch run.
    #[must_use]
    pub fn open_stream(&self) -> JobStream<'_> {
        let respawned = self.pool.heal();
        self.metrics.record_worker_respawns(respawned as u64);
        let (tx, rx) = mpsc::channel();
        JobStream {
            runtime: self,
            tx,
            rx,
            next_ticket: 0,
            outstanding: BTreeMap::new(),
        }
    }

    /// Runs the fleet on the calling thread, in job order — the parity
    /// reference for the concurrent path. Shares the same cache and
    /// metrics semantics as [`Runtime::run`].
    #[must_use]
    pub fn run_sequential(&self, fleet: &Fleet) -> FleetReport {
        let started = Instant::now();
        self.metrics.record_submitted(fleet.len() as u64);
        let cache = self.config.cache.then_some(self.cache.as_ref());
        let policy = ExecPolicy::from_config(&self.config);
        let results = fleet
            .jobs()
            .iter()
            .map(|job| {
                let completion = execute_job(
                    job.index,
                    &job.entry,
                    job.seed,
                    fleet.fault_plan(),
                    cache,
                    None,
                    &self.metrics,
                    policy,
                );
                JobResult {
                    index: job.index,
                    sensor: job.entry.id().to_owned(),
                    seed: job.seed,
                    wall: completion.wall,
                    from_cache: completion.from_cache,
                    attempts: completion.attempts,
                    injected: completion.injected,
                    outcome: completion.outcome,
                    integrity: 0,
                }
                .sealed()
            })
            .collect();
        FleetReport {
            fleet: fleet.name().to_owned(),
            workers: 1,
            elapsed: started.elapsed(),
            results,
            metrics: self.metrics(),
        }
    }
}

/// An incremental submission handle over a [`Runtime`]'s worker pool,
/// opened with [`Runtime::open_stream`]. Jobs go in one at a time via
/// [`JobStream::submit`] (each returns a monotonically increasing
/// *ticket*) and come back via [`JobStream::recv`] in whatever order
/// workers finish them, tagged with their ticket so the caller can
/// reorder deterministically.
///
/// Execution semantics are identical to the batch path: every job runs
/// through the same per-job pipeline (fault realization, budget gate,
/// memo-cache probe, retry loop, non-finite quarantine), so a streamed
/// job's outcome is byte-identical to the same `(entry, seed, plan)`
/// run inside a [`Fleet`]. Streams never arm the hang watchdog: an
/// injected stall is rejected synchronously as the deterministic
/// [`JobError::Deadline`] instead of livelocking a worker.
#[derive(Debug)]
pub struct JobStream<'rt> {
    runtime: &'rt Runtime,
    tx: mpsc::Sender<(u64, Completion)>,
    rx: mpsc::Receiver<(u64, Completion)>,
    next_ticket: u64,
    /// Ticket → (sensor id, seed) for every submitted-but-uncollected
    /// job; `BTreeMap` so the oldest ticket is recoverable when a lost
    /// worker forces a synthesized failure.
    outstanding: BTreeMap<u64, (String, u64)>,
}

impl JobStream<'_> {
    /// Submits one job and returns its ticket. The entry and plan are
    /// cloned into the worker closure; the call never blocks.
    pub fn submit(&mut self, entry: &CatalogEntry, seed: u64, plan: Option<&FaultPlan>) -> u64 {
        let home = self.runtime;
        self.submit_on(home, entry, seed, plan)
    }

    /// Submits one job for execution on `host`'s worker pool while
    /// keeping every *accounting* surface on the stream's home runtime:
    /// the memo cache probed and filled, the metrics billed, the retry
    /// policy applied, and the completion channel delivered to are all
    /// the home runtime's. This is the work-stealing seam `bios-shard`
    /// dispatches through — because `execute_job` is a pure function of
    /// `(entry, seed, plan, policy)`, *where* the closure runs can
    /// never change *what* it computes, so a stolen job's
    /// [`JobResult`] is byte-identical to a home-run one.
    ///
    /// With `host == self.runtime` this is exactly
    /// [`JobStream::submit`].
    pub fn submit_on(
        &mut self,
        host: &Runtime,
        entry: &CatalogEntry,
        seed: u64,
        plan: Option<&FaultPlan>,
    ) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.outstanding
            .insert(ticket, (entry.id().to_owned(), seed));
        self.runtime.metrics.record_submitted(1);
        let tx = self.tx.clone();
        let entry = entry.clone();
        let plan = plan.cloned();
        let cache = self
            .runtime
            .config
            .cache
            .then(|| Arc::clone(&self.runtime.cache));
        let metrics = Arc::clone(&self.runtime.metrics);
        let policy = ExecPolicy::from_config(&self.runtime.config);
        host.pool.execute(move || {
            let completion = execute_job(
                ticket as usize,
                &entry,
                seed,
                plan.as_ref(),
                cache.as_deref(),
                None,
                &metrics,
                policy,
            );
            let _ = tx.send((ticket, completion));
        });
        ticket
    }

    /// Jobs submitted but not yet collected with [`JobStream::recv`].
    #[must_use]
    pub fn pending(&self) -> usize {
        self.outstanding.len()
    }

    /// Blocks until the next outstanding job completes and returns its
    /// `(ticket, result)`; `None` when nothing is outstanding. Mirrors
    /// the batch collection loop's self-healing: if every worker has
    /// retired, the pool is healed so queued jobs keep flowing, and if
    /// the OS refuses new threads the oldest outstanding job is
    /// surfaced as the deterministic "worker lost" failure instead of
    /// blocking forever.
    pub fn recv(&mut self) -> Option<(u64, JobResult)> {
        loop {
            self.outstanding.keys().next()?;
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok((ticket, completion)) => {
                    // A completion whose ticket was already synthesized
                    // as lost (worker limped back) is dropped.
                    if let Some((sensor, seed)) = self.outstanding.remove(&ticket) {
                        return Some((
                            ticket,
                            JobResult {
                                index: ticket as usize,
                                sensor,
                                seed,
                                wall: completion.wall,
                                from_cache: completion.from_cache,
                                attempts: completion.attempts,
                                injected: completion.injected,
                                outcome: completion.outcome,
                                integrity: 0,
                            }
                            .sealed(),
                        ));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.runtime.pool.live_workers() == 0 {
                        let respawned = self.runtime.pool.heal();
                        self.runtime
                            .metrics
                            .record_worker_respawns(respawned as u64);
                        if respawned == 0 {
                            // OS refuses threads: fail the oldest job
                            // deterministically rather than hang.
                            let ticket = self.outstanding.keys().next().copied()?;
                            let (sensor, seed) = self.outstanding.remove(&ticket)?;
                            return Some((
                                ticket,
                                JobResult {
                                    index: ticket as usize,
                                    sensor,
                                    seed,
                                    wall: Duration::ZERO,
                                    from_cache: false,
                                    attempts: 0,
                                    injected: FaultTally::default(),
                                    outcome: Err(JobError::Panicked("worker lost".into())),
                                    integrity: 0,
                                }
                                .sealed(),
                            ));
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

/// Jobs per dispatched chunk: aim for four chunks per worker so slow
/// jobs can't strand the batch behind one thread, but never less than
/// one job per chunk.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil((workers * 4).max(1)).max(1)
}

/// Runs one job: realize faults, budget gate, cache probe, then the
/// attempt loop — simulate behind `catch_unwind`, retry transient
/// failures with deterministic backoff, memoize successes, meter
/// everything.
///
/// Every branch here is a pure function of `(entry, seed, plan,
/// policy)` — never of the worker, the attempt wall-clock, or cache
/// state (the budget gate runs *before* the cache probe so a rejection
/// cannot depend on what happens to be memoized) — which is what keeps
/// fleet outcomes identical across worker counts even mid-chaos.
#[allow(clippy::too_many_arguments)]
fn execute_job(
    index: usize,
    entry: &CatalogEntry,
    seed: u64,
    plan: Option<&FaultPlan>,
    cache: Option<&ResultCache>,
    watch: Option<&WatchRegistry>,
    metrics: &RuntimeMetrics,
    policy: ExecPolicy,
) -> Completion {
    let t0 = Instant::now();
    // Realize this job's faults once, up front: realization depends
    // only on (plan, sensor id, job seed), so retries and reruns see
    // the exact same fault set. A plan that realizes nothing for this
    // job leaves the healthy path (and its cache slot) untouched.
    let faults = plan
        .map(|p| p.realize(entry.id(), seed))
        .filter(|f| !f.is_healthy());
    let injected = faults
        .as_ref()
        .map_or_else(FaultTally::default, |f| f.tally());
    metrics.record_faults_injected(injected.total() as u64);
    let physics_plan = faults.as_ref().and(plan);

    // Budget gate, before the cache probe so the verdict is a pure
    // function of the job.
    if policy.job_budget > 0 {
        let required = entry.calibration_workload();
        if required > policy.job_budget {
            metrics.record_budget_rejection();
            let wall = t0.elapsed();
            metrics.record_finished(false, false, wall);
            return Completion {
                index,
                outcome: Err(JobError::Budget {
                    required,
                    budget: policy.job_budget,
                }),
                wall,
                from_cache: false,
                attempts: 0,
                injected,
            };
        }
    }

    // Injected busy-hang, gated like the budget check — before the
    // cache probe, so the verdict is a pure function of the job. With a
    // watchdog armed the job *really* livelocks in solver code until the
    // supervisor cancels it; without one it is rejected synchronously.
    // Either way the rendered loss is the identical `Deadline` error, so
    // digests match across worker counts, watchdog settings, and the
    // sequential path.
    if faults.as_ref().is_some_and(|f| f.stall_job) {
        if let Some(registry) = watch {
            let token = registry.begin(index);
            simulate_stall(policy.job_deadline, token.as_ref());
            registry.end(index);
        }
        metrics.record_deadline_kill();
        let wall = t0.elapsed();
        metrics.record_finished(false, false, wall);
        return Completion {
            index,
            outcome: Err(JobError::Deadline),
            wall,
            from_cache: false,
            attempts: 1,
            injected,
        };
    }

    let key = cache.map(|_| CacheKey {
        sensor: entry.id().to_owned(),
        protocol: entry.protocol_fingerprint(),
        plan: physics_plan.map_or(0, FaultPlan::fingerprint),
        seed,
    });
    if let (Some(cache), Some(key)) = (cache, &key) {
        if let Some(hit) = cache.get(key) {
            let wall = t0.elapsed();
            metrics.record_finished(true, true, wall);
            return Completion {
                index,
                outcome: Ok(hit),
                wall,
                from_cache: true,
                attempts: 0,
                injected,
            };
        }
    }

    let max_attempts = policy.max_attempts.max(1);
    let mut attempt: u32 = 1;
    let outcome = loop {
        let transient_quota = faults.as_ref().map_or(0, |f| f.transient_failures);
        let attempt_result: Result<_, JobError> = if attempt <= transient_quota {
            // Injected transient glitch: fail before touching the
            // physics, deterministically for the first N attempts.
            Err(JobError::Transient {
                message: format!("injected transient glitch ({attempt}/{transient_quota})"),
                attempts: attempt,
            })
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                if faults.as_ref().is_some_and(|f| f.panic_job) {
                    // bios-audit: allow(P-panic) — deliberate injected fault, contained by catch_unwind
                    panic!("injected worker panic (fault plan)");
                }
                entry.run_calibration_with(seed, physics_plan)
            }))
            .map_err(|payload| JobError::Panicked(panic_message(&payload)))
            .and_then(|r| r.map_err(JobError::Calibration))
        };
        match attempt_result {
            Ok(outcome) => break Ok(outcome),
            Err(error) if error.is_transient() && attempt < max_attempts => {
                metrics.record_retry();
                let backoff = policy.backoff_after(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
            Err(error) => break Err(error),
        }
    };
    // NaN/±Inf guardrail: a non-finite outcome is quarantined *before*
    // it can reach the cache or a run journal — a poisoned figure of
    // merit served from the cache would silently corrupt every later
    // run that hits it.
    let outcome = outcome.and_then(|outcome| {
        if outcome_is_finite(&outcome) {
            Ok(outcome)
        } else {
            metrics.record_nonfinite_quarantined();
            Err(JobError::NonFinite)
        }
    });
    let outcome = outcome.map(|outcome| match (cache, key) {
        (Some(cache), Some(key)) => cache.insert(key, outcome),
        _ => Arc::new(outcome),
    });
    let wall = t0.elapsed();
    metrics.record_finished(outcome.is_ok(), false, wall);
    Completion {
        index,
        outcome,
        wall,
        from_cache: false,
        attempts: attempt,
        injected,
    }
}

/// A real livelock for the `WorkerStall` fault: spin a small diffusion
/// solver until the watchdog trips the cancellation token through its
/// cooperative checkpoints. A hard cap bounds the hang even if the
/// supervisor dies, so a stalled fleet can never wedge forever.
fn simulate_stall(deadline: Duration, token: &AtomicBool) {
    let hard_cap = deadline.saturating_mul(20).max(Duration::from_secs(2));
    let t0 = Instant::now();
    let Ok(mut grid) = DiffusionGrid::new(
        DiffusionCoefficient::from_square_cm_per_second(6.7e-6),
        Molar::from_milli_molar(1.0),
        0.05,
        64,
    ) else {
        return; // cannot build the spin loop: degrade to an instant loss
    };
    while t0.elapsed() < hard_cap {
        // ~6400 explicit steps per call, polling the token every 64.
        if grid
            .advance_checked(
                Seconds::from_millis(64.0),
                Seconds::from_millis(0.01),
                token,
            )
            .is_err()
        {
            return; // cancelled by the watchdog
        }
    }
}

/// Whether every figure of merit and every raw curve value in an
/// outcome is finite — the gate between solver output and the
/// cache/journal layer.
fn outcome_is_finite(outcome: &CalibrationOutcome) -> bool {
    let s = &outcome.summary;
    let summary_finite = s
        .sensitivity
        .as_micro_amps_per_milli_molar_square_cm()
        .is_finite()
        && s.linear_range.low().as_molar().is_finite()
        && s.linear_range.high().as_molar().is_finite()
        && s.detection_limit.as_molar().is_finite()
        && s.r_squared.is_finite();
    let curve = &outcome.curve;
    summary_finite
        && curve.electrode_area().as_square_cm().is_finite()
        && curve.blank_sigma().as_amps().is_finite()
        && curve.points().iter().all(|p| {
            p.concentration().as_molar().is_finite()
                && p.replicates().iter().all(|i| i.as_amps().is_finite())
        })
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

#[cfg(test)]
mod tests {
    use bios_core::catalog;

    use super::*;

    #[test]
    fn concurrent_matches_sequential() {
        let fleet = Fleet::builder("parity")
            .sensors(catalog::cyp_sensors())
            .seeds([7, 8])
            .build();
        let concurrent = Runtime::with_workers(4).run(&fleet);
        let sequential = Runtime::with_workers(1).run_sequential(&fleet);
        assert_eq!(concurrent.summaries_digest(), sequential.summaries_digest());
    }

    #[test]
    fn cache_serves_repeat_runs() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("repeat")
            .sensors(catalog::glucose_sensors())
            .seed(42)
            .build();
        let first = runtime.run(&fleet);
        assert_eq!(first.cache_hits(), 0);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), fleet.len());
        assert_eq!(first.summaries_digest(), second.summaries_digest());
        let m = runtime.metrics();
        assert_eq!(m.cache_hits, fleet.len() as u64);
        assert_eq!(m.jobs_submitted, 2 * fleet.len() as u64);
    }

    #[test]
    fn cache_can_be_disabled() {
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(2).with_cache(false));
        let fleet = Fleet::builder("uncached")
            .sensor(catalog::our_glucose_sensor())
            .seed(1)
            .build();
        let _ = runtime.run(&fleet);
        let second = runtime.run(&fleet);
        assert_eq!(second.cache_hits(), 0);
        assert_eq!(runtime.cache_len(), 0);
    }

    #[test]
    fn different_seeds_do_not_alias_in_cache() {
        let runtime = Runtime::with_workers(2);
        let fleet = Fleet::builder("seeds")
            .sensor(catalog::our_lactate_sensor())
            .seeds([1, 2])
            .build();
        let report = runtime.run(&fleet);
        let a = report.outcome("lactate/ours", 1).unwrap();
        let b = report.outcome("lactate/ours", 2).unwrap();
        assert_ne!(a.summary.sensitivity, b.summary.sensitivity);
    }

    #[test]
    fn empty_fleet_reports_empty() {
        let report = Runtime::with_workers(2).run(&Fleet::builder("empty").build());
        assert!(report.results.is_empty());
        assert_eq!(report.throughput_jobs_per_sec(), 0.0);
    }

    #[test]
    fn stream_matches_batch_outcomes() {
        let fleet = Fleet::builder("stream-parity")
            .sensors(catalog::cyp_sensors())
            .seeds([7, 8])
            .build();
        let batch = Runtime::with_workers(4).run(&fleet);
        let runtime = Runtime::with_workers(2);
        let mut stream = runtime.open_stream();
        for job in fleet.jobs() {
            let ticket = stream.submit(&job.entry, job.seed, None);
            assert_eq!(ticket as usize, job.index);
        }
        let mut slots: Vec<Option<JobResult>> = (0..fleet.len()).map(|_| None).collect();
        while stream.pending() > 0 {
            let (ticket, result) = stream.recv().unwrap();
            slots[ticket as usize] = Some(result);
        }
        assert!(stream.recv().is_none());
        for (job, slot) in fleet.jobs().iter().zip(&slots) {
            let streamed = slot.as_ref().unwrap();
            assert_eq!(streamed.sensor, job.entry.id());
            assert_eq!(streamed.seed, job.seed);
            let batched = &batch.results[job.index];
            let (Ok(a), Ok(b)) = (&streamed.outcome, &batched.outcome) else {
                panic!("both paths should calibrate {}", job.entry.id());
            };
            assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
        }
    }

    #[test]
    fn stream_applies_fault_plans_like_batch() {
        use bios_faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::builder("stream-faults", 9)
            .spec(FaultKind::FilmDenaturation, 1.0, 0.8)
            .build();
        let fleet = Fleet::builder("stream-faults")
            .sensor(catalog::our_glucose_sensor())
            .seed(5)
            .fault_plan(plan.clone())
            .build();
        let batch = Runtime::with_workers(2).run(&fleet);
        let runtime = Runtime::with_workers(2);
        let mut stream = runtime.open_stream();
        stream.submit(&fleet.jobs()[0].entry, 5, Some(&plan));
        let (_, streamed) = stream.recv().unwrap();
        assert_eq!(streamed.injected, batch.results[0].injected);
        let (Ok(a), Ok(b)) = (&streamed.outcome, &batch.results[0].outcome) else {
            panic!("denatured-film calibration should still converge");
        };
        assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
    }

    #[test]
    fn stolen_submission_matches_home_run_and_bills_home() {
        let entry = catalog::our_glucose_sensor();
        let home = Runtime::with_workers(2);
        let host = Runtime::with_workers(2);
        let mut stream = home.open_stream();
        let home_ticket = stream.submit(&entry, 5, None);
        let stolen_ticket = stream.submit_on(&host, &entry, 6, None);
        let mut results = BTreeMap::new();
        while stream.pending() > 0 {
            let (ticket, result) = stream.recv().unwrap();
            results.insert(ticket, result);
        }
        let home_run = &results[&home_ticket];
        let stolen = &results[&stolen_ticket];
        let (Ok(_), Ok(_)) = (&home_run.outcome, &stolen.outcome) else {
            panic!("both placements should calibrate");
        };
        // Placement never changes what a job computes: a re-run of the
        // stolen (entry, seed) on the home pool is byte-identical.
        let mut check = home.open_stream();
        check.submit(&entry, 6, None);
        let (_, rerun) = check.recv().unwrap();
        let (Ok(a), Ok(b)) = (&stolen.outcome, &rerun.outcome) else {
            panic!("re-run should calibrate");
        };
        assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
        // Accounting stays home: the stolen job was billed to (and
        // memoized in) the home runtime, never the host.
        assert_eq!(home.metrics().jobs_submitted, 3);
        assert_eq!(host.metrics().jobs_submitted, 0);
        assert_eq!(home.cache_len(), 2);
        assert_eq!(host.cache_len(), 0);
        assert!(rerun.from_cache, "stolen job must fill the home cache");
    }

    #[test]
    fn from_env_rejects_zero_cache_cap() {
        // `from_env` is the only reader of BIOS_CACHE_CAP, and the other
        // env test asserts nothing about cache capacity, so mutating
        // just this variable is race-free.
        std::env::set_var("BIOS_CACHE_CAP", "0");
        assert_eq!(RuntimeConfig::from_env().cache_capacity, DEFAULT_CAPACITY);
        std::env::set_var("BIOS_CACHE_CAP", "512");
        assert_eq!(RuntimeConfig::from_env().cache_capacity, 512);
        std::env::remove_var("BIOS_CACHE_CAP");
    }

    #[test]
    fn from_env_respects_bios_workers() {
        // Only assert the parse path; don't mutate the environment of
        // the whole test process.
        let config = RuntimeConfig::from_env();
        assert!(config.workers >= 1);
    }

    #[test]
    fn parse_env_value_warns_and_keeps_default_on_garbage() {
        // Well-formed values parse...
        assert_eq!(parse_env_value::<usize>("BIOS_WORKERS", "4", "n"), Some(4));
        assert_eq!(
            parse_env_value::<u64>("BIOS_GATEWAY_QPS", "250", "tokens per tick"),
            Some(250)
        );
        // ...and every malformed shape yields None (plus one warning
        // line on stderr) instead of a silent skip or a panic.
        for bad in ["", "abc", "-3", "4.5", "1e3", " 8"] {
            assert_eq!(
                parse_env_value::<u64>("BIOS_BREAKER_THRESHOLD", bad, "a positive integer"),
                None,
                "{bad:?} should not parse"
            );
        }
    }
}

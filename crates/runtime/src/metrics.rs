//! Run metrics: atomic counters and a wall-time histogram.
//!
//! The runtime keeps its observability surface deliberately light —
//! lock-free atomic counters on the job path and a fixed-bucket
//! log₂-spaced histogram of per-job wall times — so metering never
//! perturbs the throughput it measures. Snapshots serialize to JSON by
//! hand (the platform carries no serialization dependency).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram buckets: bucket `i` counts jobs with wall time in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is unbounded.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Shared, lock-free counters updated by every worker.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_micros: AtomicU64,
    retries: AtomicU64,
    faults_injected: AtomicU64,
    budget_rejections: AtomicU64,
    worker_respawns: AtomicU64,
    journal_records: AtomicU64,
    journal_lost: AtomicU64,
    journal_retries: AtomicU64,
    resumed_jobs: AtomicU64,
    stalled_workers: AtomicU64,
    deadline_kills: AtomicU64,
    nonfinite_quarantined: AtomicU64,
    admission_rejected: AtomicU64,
    rate_limited: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_half_open_probes: AtomicU64,
    browned_out: AtomicU64,
    deadline_shed: AtomicU64,
    quorum_votes: AtomicU64,
    disagreements: AtomicU64,
    corruption_caught: AtomicU64,
    suspects_quarantined: AtomicU64,
    histogram: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl RuntimeMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> RuntimeMetrics {
        RuntimeMetrics::default()
    }

    /// Records a submitted job.
    pub fn record_submitted(&self, n: u64) {
        self.jobs_submitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one finished job: success/failure, cache disposition,
    /// and its wall time.
    pub fn record_finished(&self, ok: bool, from_cache: bool, wall: Duration) {
        if ok {
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        if from_cache {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        self.busy_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.histogram[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of a transiently-failed job.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` faults injected into a job by an armed plan.
    pub fn record_faults_injected(&self, n: u64) {
        if n > 0 {
            self.faults_injected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one job rejected by the per-job sample budget.
    pub fn record_budget_rejection(&self) {
        self.budget_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` dead workers replaced by the pool's healing pass.
    pub fn record_worker_respawns(&self, n: u64) {
        if n > 0 {
            self.worker_respawns.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` records durably appended to a run journal.
    pub fn record_journal_records(&self, n: u64) {
        if n > 0 {
            self.journal_records.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one journal retired mid-run: IO failed past its retry
    /// budget, so the fleet finished non-durably (metered graceful
    /// degradation, never silent).
    pub fn record_journal_lost(&self) {
        self.journal_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` transient journal-IO retries absorbed by bounded
    /// deterministic backoff before the write eventually succeeded.
    pub fn record_journal_retries(&self, n: u64) {
        if n > 0 {
            self.journal_retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` jobs skipped on resume because the journal already
    /// held their completed results.
    pub fn record_resumed_jobs(&self, n: u64) {
        if n > 0 {
            self.resumed_jobs.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one worker that went silent past its deadline and was
    /// retired by the watchdog.
    pub fn record_stalled_worker(&self) {
        self.stalled_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job cancelled at its soft deadline.
    pub fn record_deadline_kill(&self) {
        self.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job whose result contained NaN/±Inf and was
    /// quarantined before reaching the cache or journal.
    pub fn record_nonfinite_quarantined(&self) {
        self.nonfinite_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request refused at the gateway intake because the
    /// bounded admission queue was full.
    pub fn record_admission_rejected(&self) {
        self.admission_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request refused by a tenant's token bucket.
    pub fn record_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one circuit breaker tripping open (including a
    /// half-open probe failure re-opening it).
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request admitted as a half-open breaker probe.
    pub fn record_breaker_half_open_probe(&self) {
        self.breaker_half_open_probes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request downgraded (served at reduced resolution)
    /// by the gateway's brownout policy.
    pub fn record_browned_out(&self) {
        self.browned_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed because its remaining deadline budget
    /// could no longer cover even a degraded execution.
    pub fn record_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one redundant-execution vote completed by the quorum
    /// layer (unanimous or not).
    pub fn record_quorum_vote(&self) {
        self.quorum_votes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one vote whose replica lanes disagreed beyond the
    /// configured tolerance and escalated to a tie-break.
    pub fn record_disagreement(&self) {
        self.disagreements.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` silently-corrupted replica observations caught by
    /// the vote or by an integrity-checksum hop before they could
    /// reach the cache, journal, or merged report.
    pub fn record_corruption_caught(&self, n: u64) {
        if n > 0 {
            self.corruption_caught.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one suspect (worker lane or shard) quarantined after
    /// losing repeated votes.
    pub fn record_suspect_quarantined(&self) {
        self.suspects_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    /// `cache_evictions` lives in the cache, not here; the runtime
    /// merges it in when it assembles a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            busy_micros: self.busy_micros.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            budget_rejections: self.budget_rejections.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            cache_evictions: 0,
            journal_records: self.journal_records.load(Ordering::Relaxed),
            journal_lost: self.journal_lost.load(Ordering::Relaxed),
            journal_retries: self.journal_retries.load(Ordering::Relaxed),
            resumed_jobs: self.resumed_jobs.load(Ordering::Relaxed),
            stalled_workers: self.stalled_workers.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            cache_corrupt_dropped: 0,
            nonfinite_quarantined: self.nonfinite_quarantined.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_half_open_probes: self.breaker_half_open_probes.load(Ordering::Relaxed),
            browned_out: self.browned_out.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            quorum_votes: self.quorum_votes.load(Ordering::Relaxed),
            disagreements: self.disagreements.load(Ordering::Relaxed),
            corruption_caught: self.corruption_caught.load(Ordering::Relaxed),
            suspects_quarantined: self.suspects_quarantined.load(Ordering::Relaxed),
            histogram: std::array::from_fn(|i| self.histogram[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of the runtime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs handed to the pool since runtime creation.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_completed: u64,
    /// Jobs finished with a per-job error.
    pub jobs_failed: u64,
    /// Jobs served from the memo cache.
    pub cache_hits: u64,
    /// Jobs that had to run the simulation.
    pub cache_misses: u64,
    /// Total worker-side busy time, microseconds.
    pub busy_micros: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Individual faults injected by armed plans, across all jobs.
    pub faults_injected: u64,
    /// Jobs rejected by the per-job sample budget.
    pub budget_rejections: u64,
    /// Dead workers replaced by the pool's healing pass.
    pub worker_respawns: u64,
    /// Memo-cache entries evicted by the capacity bound (merged in
    /// from the cache by the runtime; 0 in raw [`RuntimeMetrics`]
    /// snapshots).
    pub cache_evictions: u64,
    /// Records durably appended to run journals (headers, job
    /// completions, and seals).
    pub journal_records: u64,
    /// Journals retired mid-run after IO failed past its retry budget;
    /// the fleet completed non-durably (metered graceful degradation).
    pub journal_lost: u64,
    /// Transient journal-IO retries absorbed by bounded deterministic
    /// backoff before the write eventually succeeded or gave up.
    pub journal_retries: u64,
    /// Jobs skipped on resume because the journal already held their
    /// completed results.
    pub resumed_jobs: u64,
    /// Workers retired by the watchdog after going silent past the
    /// job deadline.
    pub stalled_workers: u64,
    /// Jobs cancelled at their soft deadline.
    pub deadline_kills: u64,
    /// Persisted-cache entries dropped at load time for failing
    /// checksum or validation (merged in from the cache by the
    /// runtime; 0 in raw [`RuntimeMetrics`] snapshots).
    pub cache_corrupt_dropped: u64,
    /// Jobs quarantined for producing NaN/±Inf results.
    pub nonfinite_quarantined: u64,
    /// Gateway requests refused because the bounded admission queue
    /// was full.
    pub admission_rejected: u64,
    /// Gateway requests refused by a tenant's token bucket.
    pub rate_limited: u64,
    /// Circuit-breaker trips (closed→open and a probe failure
    /// re-opening a half-open breaker both count).
    pub breaker_trips: u64,
    /// Requests admitted as half-open breaker probes.
    pub breaker_half_open_probes: u64,
    /// Requests served at degraded resolution by the brownout policy.
    pub browned_out: u64,
    /// Requests shed because their remaining deadline budget could no
    /// longer cover even a degraded execution.
    pub deadline_shed: u64,
    /// Redundant-execution votes completed by the quorum layer.
    pub quorum_votes: u64,
    /// Votes whose replica lanes disagreed beyond tolerance.
    pub disagreements: u64,
    /// Silently-corrupted replica observations caught by a vote or an
    /// integrity-checksum hop.
    pub corruption_caught: u64,
    /// Suspect lanes/shards quarantined after repeated lost votes.
    pub suspects_quarantined: u64,
    /// Per-job wall-time histogram (log₂ µs buckets).
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl MetricsSnapshot {
    /// Fraction of finished jobs served from cache, in `[0, 1]`;
    /// zero when nothing has finished.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Approximate wall-time quantile (e.g. `0.5`, `0.99`) from the
    /// histogram, reported as the upper edge of the containing bucket
    /// in microseconds. Zero when the histogram is empty.
    #[must_use]
    pub fn wall_quantile_micros(&self, q: f64) -> u64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the platform
    /// carries no serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .histogram
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(i, count)| format!("{{\"le_micros\":{},\"count\":{count}}}", 1u64 << (i + 1)))
            .collect();
        format!(
            concat!(
                "{{\"jobs_submitted\":{},\"jobs_completed\":{},\"jobs_failed\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},",
                "\"busy_micros\":{},\"wall_p50_micros\":{},\"wall_p99_micros\":{},",
                "\"retries\":{},\"faults_injected\":{},\"budget_rejections\":{},",
                "\"worker_respawns\":{},\"cache_evictions\":{},",
                "\"journal_records\":{},\"journal_lost\":{},",
                "\"journal_retries\":{},\"resumed_jobs\":{},",
                "\"stalled_workers\":{},\"deadline_kills\":{},",
                "\"cache_corrupt_dropped\":{},\"nonfinite_quarantined\":{},",
                "\"admission_rejected\":{},\"rate_limited\":{},",
                "\"breaker_trips\":{},\"breaker_half_open_probes\":{},",
                "\"browned_out\":{},\"deadline_shed\":{},",
                "\"quorum_votes\":{},\"disagreements\":{},",
                "\"corruption_caught\":{},\"suspects_quarantined\":{},",
                "\"wall_histogram\":[{}]}}"
            ),
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_failed,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.busy_micros,
            self.wall_quantile_micros(0.5),
            self.wall_quantile_micros(0.99),
            self.retries,
            self.faults_injected,
            self.budget_rejections,
            self.worker_respawns,
            self.cache_evictions,
            self.journal_records,
            self.journal_lost,
            self.journal_retries,
            self.resumed_jobs,
            self.stalled_workers,
            self.deadline_kills,
            self.cache_corrupt_dropped,
            self.nonfinite_quarantined,
            self.admission_rejected,
            self.rate_limited,
            self.breaker_trips,
            self.breaker_half_open_probes,
            self.browned_out,
            self.deadline_shed,
            self.quorum_votes,
            self.disagreements,
            self.corruption_caught,
            self.suspects_quarantined,
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = RuntimeMetrics::new();
        m.record_submitted(3);
        m.record_finished(true, false, Duration::from_micros(100));
        m.record_finished(true, true, Duration::from_micros(10));
        m.record_finished(false, false, Duration::from_micros(1000));
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 3);
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.jobs_failed, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert!((s.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.busy_micros, 1110);
    }

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let m = RuntimeMetrics::new();
        m.record_finished(true, false, Duration::from_micros(1)); // bucket 0
        m.record_finished(true, false, Duration::from_micros(3)); // bucket 1
        m.record_finished(true, false, Duration::from_micros(1500)); // bucket 10
        let s = m.snapshot();
        assert_eq!(s.histogram[0], 1);
        assert_eq!(s.histogram[1], 1);
        assert_eq!(s.histogram[10], 1);
    }

    #[test]
    fn quantiles_track_the_histogram() {
        let m = RuntimeMetrics::new();
        for _ in 0..99 {
            m.record_finished(true, false, Duration::from_micros(100)); // bucket 6
        }
        m.record_finished(true, false, Duration::from_micros(100_000)); // bucket 16
        let s = m.snapshot();
        assert_eq!(s.wall_quantile_micros(0.5), 1 << 7);
        assert_eq!(s.wall_quantile_micros(0.999), 1 << 17);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = RuntimeMetrics::new();
        m.record_submitted(1);
        m.record_finished(true, false, Duration::from_micros(42));
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs_completed\":1"));
        assert!(json.contains("\"cache_hit_rate\":0.0000"));
        assert!(json.contains("\"wall_histogram\":[{\"le_micros\":64,\"count\":1}]"));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = RuntimeMetrics::new().snapshot();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.wall_quantile_micros(0.99), 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.faults_injected, 0);
        assert_eq!(s.budget_rejections, 0);
        assert_eq!(s.worker_respawns, 0);
        assert_eq!(s.cache_evictions, 0);
    }

    #[test]
    fn gateway_counters_accumulate_and_serialize() {
        let m = RuntimeMetrics::new();
        m.record_admission_rejected();
        m.record_rate_limited();
        m.record_rate_limited();
        m.record_breaker_trip();
        m.record_breaker_half_open_probe();
        m.record_breaker_half_open_probe();
        m.record_breaker_half_open_probe();
        m.record_browned_out();
        m.record_deadline_shed();
        let s = m.snapshot();
        assert_eq!(s.admission_rejected, 1);
        assert_eq!(s.rate_limited, 2);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_half_open_probes, 3);
        assert_eq!(s.browned_out, 1);
        assert_eq!(s.deadline_shed, 1);
        let json = s.to_json();
        assert!(json.contains("\"admission_rejected\":1"));
        assert!(json.contains("\"rate_limited\":2"));
        assert!(json.contains("\"breaker_trips\":1"));
        assert!(json.contains("\"breaker_half_open_probes\":3"));
        assert!(json.contains("\"browned_out\":1"));
        assert!(json.contains("\"deadline_shed\":1"));
    }

    #[test]
    fn quorum_counters_accumulate_and_serialize() {
        let m = RuntimeMetrics::new();
        m.record_quorum_vote();
        m.record_quorum_vote();
        m.record_disagreement();
        m.record_corruption_caught(3);
        m.record_corruption_caught(0); // no-op
        m.record_suspect_quarantined();
        let s = m.snapshot();
        assert_eq!(s.quorum_votes, 2);
        assert_eq!(s.disagreements, 1);
        assert_eq!(s.corruption_caught, 3);
        assert_eq!(s.suspects_quarantined, 1);
        let json = s.to_json();
        assert!(json.contains("\"quorum_votes\":2"));
        assert!(json.contains("\"disagreements\":1"));
        assert!(json.contains("\"corruption_caught\":3"));
        assert!(json.contains("\"suspects_quarantined\":1"));
    }

    #[test]
    fn robustness_counters_accumulate_and_serialize() {
        let m = RuntimeMetrics::new();
        m.record_retry();
        m.record_retry();
        m.record_faults_injected(3);
        m.record_faults_injected(0); // no-op
        m.record_budget_rejection();
        m.record_worker_respawns(2);
        let mut s = m.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.faults_injected, 3);
        assert_eq!(s.budget_rejections, 1);
        assert_eq!(s.worker_respawns, 2);
        s.cache_evictions = 5;
        let json = s.to_json();
        assert!(json.contains("\"retries\":2"));
        assert!(json.contains("\"faults_injected\":3"));
        assert!(json.contains("\"budget_rejections\":1"));
        assert!(json.contains("\"worker_respawns\":2"));
        assert!(json.contains("\"cache_evictions\":5"));
    }

    #[test]
    fn journal_loss_counters_accumulate_and_serialize() {
        let m = RuntimeMetrics::new();
        m.record_journal_lost();
        m.record_journal_retries(4);
        m.record_journal_retries(0); // no-op
        m.record_journal_records(7);
        let s = m.snapshot();
        assert_eq!(s.journal_lost, 1);
        assert_eq!(s.journal_retries, 4);
        assert_eq!(s.journal_records, 7);
        let json = s.to_json();
        assert!(json.contains("\"journal_lost\":1"));
        assert!(json.contains("\"journal_retries\":4"));
        assert!(json.contains("\"journal_records\":7"));
    }
}

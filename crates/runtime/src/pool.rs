//! A channel-fed, self-healing worker pool on `std::thread` +
//! `std::sync::mpsc`.
//!
//! The build environment is offline, so the pool deliberately uses only
//! the standard library: one `mpsc` channel feeds boxed tasks to a set
//! of named worker threads that share the receiving end behind a mutex.
//! A worker holds the lock only for the dequeue handoff, so CPU-bound
//! fleet jobs (hundreds of microseconds and up) scale close to linearly
//! with the worker count.
//!
//! # Hardening
//!
//! Three failure modes are survivable instead of fatal:
//!
//! * **Spawn failure** — [`WorkerPool::try_new`] reports the OS error;
//!   [`WorkerPool::new`] keeps whatever threads it managed to spawn. A
//!   pool with zero live workers still makes progress by running tasks
//!   inline on the submitting thread.
//! * **Panicking task** — the worker catches the unwind, records the
//!   casualty, and *retires itself* (its post-panic state is suspect).
//!   The remaining workers keep draining the queue.
//! * **Dead workers** — [`WorkerPool::heal`] joins retired workers and
//!   spawns replacements, restoring the pool to its target size. The
//!   runtime calls it before every fleet run.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Task = Box<dyn FnOnce() -> TaskVerdict + Send + 'static>;

/// What a finished task tells its worker to do next.
///
/// Tasks that hit a cancelled/stalled state return
/// [`TaskVerdict::Retire`] so the worker that hosted the stall exits and
/// is replaced on the next [`WorkerPool::heal`] — its thread may still
/// carry lock or allocator state perturbed by the forced cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskVerdict {
    /// The task finished normally; the worker keeps dequeuing.
    Continue,
    /// The worker should retire after this task; `heal` replaces it.
    Retire,
}

/// Everything one worker thread needs; cloned per spawn so `heal` can
/// mint replacements.
#[derive(Debug, Clone)]
struct WorkerContext {
    receiver: Arc<Mutex<mpsc::Receiver<Task>>>,
    panics: Arc<AtomicU64>,
}

/// A fixed-target pool of worker threads executing boxed tasks in
/// submission order (FIFO dispatch, arbitrary completion order).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// use bios_runtime::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || {
///         counter.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// drop(pool); // joins all workers
/// assert_eq!(counter.load(Ordering::Relaxed), 100);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Task>>,
    context: WorkerContext,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    target: usize,
    /// Monotonic counter so respawned workers get fresh names.
    spawned: AtomicUsize,
    respawns: AtomicU64,
}

/// The body of one worker thread: dequeue, run behind `catch_unwind`,
/// retire on the first caught panic.
fn worker_loop(context: &WorkerContext) {
    loop {
        // Lock scope ends at the statement: the guard is held across
        // `recv` (the handoff pattern) but released before the task
        // runs, so a panicking task cannot poison the queue.
        let task = match context.receiver.lock() {
            // bios-audit: allow(L-lock) — deliberate handoff: the guard spans only the recv so exactly one worker dequeues; it is released before the task runs
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling died mid-dequeue
        };
        match task {
            Ok(task) => match catch_unwind(AssertUnwindSafe(task)) {
                Ok(TaskVerdict::Continue) => {}
                Ok(TaskVerdict::Retire) => return, // caller asked for a fresh thread
                Err(_) => {
                    // Record the casualty and retire: the thread exits
                    // cleanly and `heal` replaces it with a fresh one.
                    context.panics.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            },
            Err(_) => return, // channel closed: shutdown
        }
    }
}

impl WorkerPool {
    /// Spawns up to `workers` threads (target clamped to at least one),
    /// degrading gracefully: if the OS refuses a thread, the pool keeps
    /// the ones it has — down to zero, where [`WorkerPool::execute`]
    /// falls back to running tasks inline.
    #[must_use]
    pub fn new(workers: usize) -> WorkerPool {
        let target = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Task>();
        let context = WorkerContext {
            receiver: Arc::new(Mutex::new(receiver)),
            panics: Arc::new(AtomicU64::new(0)),
        };
        let pool = WorkerPool {
            sender: Some(sender),
            context,
            workers: Mutex::new(Vec::with_capacity(target)),
            target,
            spawned: AtomicUsize::new(0),
            respawns: AtomicU64::new(0),
        };
        if let Ok(mut handles) = pool.workers.lock() {
            for _ in 0..target {
                match pool.spawn_worker() {
                    Ok(handle) => handles.push(handle),
                    Err(_) => break, // keep what we have
                }
            }
        }
        pool
    }

    /// Like [`WorkerPool::new`] but strict: fails with the OS error if
    /// any of the `workers` threads cannot be spawned.
    ///
    /// # Errors
    ///
    /// Returns the `io::Error` from `thread::Builder::spawn` when the
    /// OS refuses a thread.
    pub fn try_new(workers: usize) -> io::Result<WorkerPool> {
        let target = workers.max(1);
        let pool = WorkerPool::new(target);
        if pool.live_workers() < target {
            return Err(io::Error::other(format!(
                "spawned only {}/{} worker threads",
                pool.live_workers(),
                target
            )));
        }
        Ok(pool)
    }

    /// Spawns one worker thread with a unique name.
    fn spawn_worker(&self) -> io::Result<thread::JoinHandle<()>> {
        let k = self.spawned.fetch_add(1, Ordering::Relaxed);
        let context = self.context.clone();
        thread::Builder::new()
            .name(format!("bios-worker-{k}"))
            .spawn(move || worker_loop(&context))
    }

    /// The worker count the pool aims to keep alive.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.target
    }

    /// Worker threads currently running (excludes retired ones that
    /// [`WorkerPool::heal`] has not yet replaced).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.workers.lock().map_or(0, |handles| {
            handles.iter().filter(|h| !h.is_finished()).count()
        })
    }

    /// Panics caught from executed tasks since pool creation.
    #[must_use]
    pub fn panics_caught(&self) -> u64 {
        self.context.panics.load(Ordering::Relaxed)
    }

    /// Workers respawned by [`WorkerPool::heal`] since pool creation.
    #[must_use]
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Joins every retired (finished) worker and spawns replacements up
    /// to the target size. Returns the number of workers respawned.
    pub fn heal(&self) -> usize {
        let mut retired = Vec::new();
        let mut respawned = 0;
        {
            let Ok(mut handles) = self.workers.lock() else {
                return 0;
            };
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    retired.push(handles.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            while handles.len() < self.target {
                match self.spawn_worker() {
                    Ok(handle) => {
                        handles.push(handle);
                        respawned += 1;
                    }
                    Err(_) => break, // OS still refusing threads; stay degraded
                }
            }
        }
        // Joins happen outside the lock: the retired threads are already
        // finished, but `join` can still block on OS cleanup, and holding
        // `workers` through it would stall `execute`'s liveness check.
        for handle in retired {
            let _ = handle.join();
        }
        self.respawns.fetch_add(respawned as u64, Ordering::Relaxed);
        respawned
    }

    /// Enqueues a task; it runs on the first free worker. If every
    /// worker has retired (or none could be spawned), the task runs
    /// inline on the calling thread so the pool never deadlocks.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        self.execute_judged(move || {
            task();
            TaskVerdict::Continue
        });
    }

    /// Like [`WorkerPool::execute`], but the task's return value decides
    /// whether its worker keeps running or retires. The runtime routes
    /// fleet chunks through this so a chunk that absorbed a watchdog
    /// cancellation can demand a fresh thread.
    pub fn execute_judged(&self, task: impl FnOnce() -> TaskVerdict + Send + 'static) {
        if self.live_workers() == 0 {
            // Inline fallback: still catch panics so the caller's
            // result-collection path sees the same semantics. A Retire
            // verdict is meaningless inline — there is no thread to
            // retire — so it is dropped.
            let _ = catch_unwind(AssertUnwindSafe(task));
            return;
        }
        if let Some(sender) = &self.sender {
            // Send fails only when every worker has died, which only
            // happens on shutdown; tasks submitted after that are
            // dropped, matching the pool's fail-quiet drain semantics.
            let _ = sender.send(Box::new(task));
        }
    }

    /// A sensible default worker count: the machine's available
    /// parallelism, leaving the caller's thread to collect results.
    #[must_use]
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    }
}

impl Drop for WorkerPool {
    /// Closes the queue and joins every worker, draining outstanding
    /// tasks first.
    fn drop(&mut self) {
        drop(self.sender.take());
        // Drain under the lock, join outside it: joining with `workers`
        // held would block any concurrent `heal`/`live_workers` caller
        // for the whole shutdown.
        let drained: Vec<_> = match self.workers.lock() {
            Ok(mut handles) => handles.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for worker in drained {
            // A worker that caught a panicking task already recorded
            // it; nothing useful to do with a join error here.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn clamps_zero_workers_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn try_new_succeeds_at_sane_sizes() {
        let pool = WorkerPool::try_new(2).expect("2 threads should spawn");
        assert_eq!(pool.live_workers(), 2);
    }

    #[test]
    fn uses_multiple_threads() {
        // Two tasks rendezvous on a barrier: they can only both reach it
        // if the pool runs them on two distinct workers concurrently.
        let pool = WorkerPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            pool.execute(move || {
                barrier.wait();
                let _ = tx.send(thread::current().name().map(str::to_owned));
            });
        }
        drop(tx);
        let names: std::collections::BTreeSet<_> = rx.iter().collect();
        drop(pool);
        assert_eq!(names.len(), 2, "tasks shared a worker: {names:?}");
    }

    #[test]
    fn survives_panicking_tasks_and_heals() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for _ in 0..2 {
            pool.execute(|| panic!("injected task panic"));
        }
        // Wait for both panics to be recorded (workers retire async).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.panics_caught() < 2 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.panics_caught(), 2);
        let respawned = pool.heal();
        assert_eq!(respawned, 2, "both retired workers replaced");
        assert_eq!(pool.respawns(), 2);
        assert_eq!(pool.live_workers(), 2);
        // The healed pool still executes tasks on worker threads.
        pool.execute(move || {
            let _ = tx.send(thread::current().name().map(str::to_owned));
        });
        let name = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("healed pool runs tasks");
        assert!(name.unwrap_or_default().starts_with("bios-worker-"));
    }

    #[test]
    fn fully_dead_pool_falls_back_to_inline_execution() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("kill the only worker"));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.live_workers() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.live_workers(), 0);
        // Without healing, execute degrades to inline — it must still
        // run (and still swallow panics) rather than deadlock.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        pool.execute(|| panic!("inline panic is swallowed too"));
    }

    #[test]
    fn retire_verdict_ends_the_worker_without_counting_a_panic() {
        let pool = WorkerPool::new(1);
        pool.execute_judged(|| TaskVerdict::Retire);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.live_workers() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.live_workers(), 0, "worker retired on verdict");
        assert_eq!(pool.panics_caught(), 0, "a verdict is not a panic");
        assert_eq!(pool.heal(), 1, "heal replaces the retired worker");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(WorkerPool::default_workers() >= 1);
    }
}

//! A channel-fed worker pool on `std::thread` + `std::sync::mpsc`.
//!
//! The build environment is offline, so the pool deliberately uses only
//! the standard library: one `mpsc` channel feeds boxed tasks to a set
//! of named worker threads that share the receiving end behind a mutex.
//! A worker holds the lock only for the dequeue handoff, so CPU-bound
//! fleet jobs (hundreds of microseconds and up) scale close to linearly
//! with the worker count.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed tasks in
/// submission order (FIFO dispatch, arbitrary completion order).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// use bios_runtime::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || {
///         counter.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// drop(pool); // joins all workers
/// assert_eq!(counter.load(Ordering::Relaxed), 100);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Task>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to at least one).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers)
            .map(|k| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("bios-worker-{k}"))
                    .spawn(move || loop {
                        // Lock scope ends at the statement: the guard is
                        // held across `recv` (the book's handoff pattern)
                        // but released before the task runs.
                        let task = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return, // a sibling panicked mid-dequeue
                        };
                        match task {
                            Ok(task) => task(),
                            Err(_) => return, // channel closed: shutdown
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task; it runs on the first free worker.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            // Send fails only when every worker has died, which only
            // happens on shutdown; tasks submitted after that are
            // dropped, matching the pool's fail-quiet drain semantics.
            let _ = sender.send(Box::new(task));
        }
    }

    /// A sensible default worker count: the machine's available
    /// parallelism, leaving the caller's thread to collect results.
    #[must_use]
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    }
}

impl Drop for WorkerPool {
    /// Closes the queue and joins every worker, draining outstanding
    /// tasks first.
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            // A worker that panicked already reported through its job's
            // result channel; nothing useful to do with the Err here.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use super::*;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn clamps_zero_workers_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn uses_multiple_threads() {
        // Two tasks rendezvous on a barrier: they can only both reach it
        // if the pool runs them on two distinct workers concurrently.
        let pool = WorkerPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            pool.execute(move || {
                barrier.wait();
                let _ = tx.send(thread::current().name().map(str::to_owned));
            });
        }
        drop(tx);
        let names: std::collections::BTreeSet<_> = rx.iter().collect();
        drop(pool);
        assert_eq!(names.len(), 2, "tasks shared a worker: {names:?}");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(WorkerPool::default_workers() >= 1);
    }
}

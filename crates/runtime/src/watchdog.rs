//! Hang watchdog: a supervisor thread that cancels silent jobs.
//!
//! Panics are loud; stalls are silent. A job that livelocks inside a
//! solver loop never returns to the worker loop, so the panic-healing
//! machinery in [`crate::pool`] cannot see it. The watchdog closes that
//! gap cooperatively:
//!
//! 1. A job [`WatchRegistry::begin`]s before entering solver code and
//!    receives a shared cancellation token (an `AtomicBool` implementing
//!    [`bios_electrochem::CheckPoint`]).
//! 2. The solver polls the token every
//!    [`bios_electrochem::checkpoint::POLL_INTERVAL`] steps.
//! 3. The supervisor thread wakes on a fraction of the deadline and
//!    trips the token of any job whose monotonic start mark is older
//!    than the soft deadline.
//! 4. The job observes the trip, unwinds with a typed cancellation, and
//!    the runtime converts the loss into the deterministic
//!    [`crate::JobError::Deadline`].
//!
//! The watchdog never kills threads; everything is cooperative, so the
//! result of a cancelled job is always a clean typed error, never a
//! leaked lock or a torn result. Wall-clock timing decides *which* jobs
//! get cancelled (that much is inherently nondeterministic), but the
//! *rendered* loss is identical at any worker count, and only jobs with
//! an injected stall can ever exceed the deadline in practice.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared table of in-flight watched jobs, keyed by job index.
#[derive(Debug)]
pub(crate) struct WatchRegistry {
    deadline: Duration,
    entries: Mutex<HashMap<usize, WatchEntry>>,
    /// Set once by [`Watchdog::drop`] to stop the supervisor.
    shutdown: AtomicBool,
}

#[derive(Debug)]
struct WatchEntry {
    started: Instant,
    token: Arc<AtomicBool>,
}

impl WatchRegistry {
    fn new(deadline: Duration) -> WatchRegistry {
        WatchRegistry {
            deadline,
            entries: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Registers a job as in-flight and returns its cancellation token.
    pub(crate) fn begin(&self, index: usize) -> Arc<AtomicBool> {
        let token = Arc::new(AtomicBool::new(false));
        if let Ok(mut entries) = self.entries.lock() {
            entries.insert(
                index,
                WatchEntry {
                    started: Instant::now(),
                    token: Arc::clone(&token),
                },
            );
        }
        token
    }

    /// Removes a finished job from supervision.
    pub(crate) fn end(&self, index: usize) {
        if let Ok(mut entries) = self.entries.lock() {
            entries.remove(&index);
        }
    }

    /// One supervisor sweep: trip the token of every job past deadline.
    fn sweep(&self) {
        let Ok(entries) = self.entries.lock() else {
            return;
        };
        let now = Instant::now();
        for entry in entries.values() {
            if now.duration_since(entry.started) > self.deadline {
                entry.token.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Handle owning the supervisor thread; dropping it shuts the thread
/// down and joins it.
#[derive(Debug)]
pub(crate) struct Watchdog {
    registry: Arc<WatchRegistry>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the supervisor. `deadline` must be non-zero (the runtime
    /// treats zero as "watchdog disabled" and never constructs one).
    pub(crate) fn spawn(deadline: Duration) -> Watchdog {
        let registry = Arc::new(WatchRegistry::new(deadline));
        // Tick well inside the deadline so a stalled job overshoots by
        // at most ~1/8 of it; floor keeps a tiny deadline from busy
        // spinning the supervisor.
        let tick = (deadline / 8).max(Duration::from_millis(1));
        let reg = Arc::clone(&registry);
        let supervisor = std::thread::Builder::new()
            .name("bios-watchdog".into())
            .spawn(move || {
                while !reg.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    reg.sweep();
                }
            })
            .ok();
        Watchdog {
            registry,
            supervisor,
        }
    }

    /// The shared registry workers report to.
    pub(crate) fn registry(&self) -> Arc<WatchRegistry> {
        Arc::clone(&self.registry)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervisor_trips_only_overdue_jobs() {
        let watchdog = Watchdog::spawn(Duration::from_millis(20));
        let registry = watchdog.registry();
        let stalled = registry.begin(0);
        // Job 0 "stalls": never calls end. Wait for the trip.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !stalled.load(Ordering::Relaxed) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(stalled.load(Ordering::Relaxed), "overdue token tripped");
        // A fresh job registered after the trip is not collateral.
        let fresh = registry.begin(1);
        assert!(!fresh.load(Ordering::Relaxed));
        registry.end(1);
        registry.end(0);
    }

    #[test]
    fn finished_jobs_are_never_tripped() {
        let watchdog = Watchdog::spawn(Duration::from_millis(5));
        let registry = watchdog.registry();
        let token = registry.begin(7);
        registry.end(7);
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            !token.load(Ordering::Relaxed),
            "ended before deadline: token must stay clear"
        );
    }

    #[test]
    fn drop_joins_the_supervisor() {
        let watchdog = Watchdog::spawn(Duration::from_millis(1));
        drop(watchdog); // must not hang or leak the thread
    }
}

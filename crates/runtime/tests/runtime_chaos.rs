//! Chaos-mode integration: an armed fault plan must degrade a fleet
//! *deterministically* — the same partial outcome, byte for byte, at
//! any worker count — while the runtime retries transients, contains
//! panics, enforces budgets, and never serves a faulted job a healthy
//! cached result.

use std::time::Duration;

use bios_core::catalog;
use bios_faults::{FaultKind, FaultPlan};
use bios_runtime::{Fleet, JobError, Runtime, RuntimeConfig};

/// A plan that exercises every robustness path at once: every job
/// glitches transiently twice (retried to success under the default
/// three attempts), a deterministic minority of jobs panics, and a
/// slice of the physics degrades.
fn stress_plan() -> FaultPlan {
    FaultPlan::builder("chaos-suite", 0xC0FFEE)
        .spec(FaultKind::TransientGlitch, 1.0, 0.4)
        .spec(FaultKind::WorkerPanic, 0.2, 1.0)
        .spec(FaultKind::FilmDenaturation, 0.5, 0.6)
        .spec(FaultKind::ReadoutSpike, 0.4, 0.5)
        .build()
}

fn stress_fleet(seed: u64) -> Fleet {
    Fleet::builder("chaos")
        .sensors(catalog::all_table2())
        .seed(seed)
        .fault_plan(stress_plan())
        .build()
}

fn config(workers: usize) -> RuntimeConfig {
    RuntimeConfig::default()
        .with_workers(workers)
        .with_cache(false)
        // Keep the retry storm fast: backoff is deterministic anyway.
        .with_retry_backoff(Duration::from_micros(10))
}

#[test]
fn armed_fleet_outcome_is_identical_across_worker_counts() {
    let fleet = stress_fleet(42);
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&workers| Runtime::new(config(workers)).run(&fleet))
        .collect();

    // The stress plan must actually bite: panics and retried
    // transients both present, plus surviving (degraded) channels.
    let outcome = reports[0].outcome_summary();
    assert!(outcome.failed >= 1, "expected ≥1 panicked job: {outcome}");
    assert!(outcome.degraded >= 1, "expected degraded jobs: {outcome}");
    assert_eq!(outcome.total(), fleet.len());
    assert!(
        reports[0]
            .failures()
            .any(|(_, e)| matches!(e, JobError::Panicked(_))),
        "injected WorkerPanic must surface as JobError::Panicked"
    );
    assert!(
        reports[0]
            .results
            .iter()
            .any(|r| r.outcome.is_ok() && r.attempts > 1),
        "transient glitches must be retried to success"
    );

    // Determinism: byte-identical digests and identical triage at any
    // worker count, panics and retries included.
    for report in &reports[1..] {
        assert_eq!(report.summaries_digest(), reports[0].summaries_digest());
        assert_eq!(report.outcome_summary(), outcome);
    }
}

#[test]
fn transient_retries_are_metered_and_bounded() {
    let fleet = Fleet::builder("retries")
        .sensors(catalog::glucose_sensors())
        .seed(7)
        .fault_plan(
            FaultPlan::builder("transient-only", 9)
                .spec(FaultKind::TransientGlitch, 1.0, 0.4)
                .build(),
        )
        .build();
    let runtime = Runtime::new(config(2));
    let report = runtime.run(&fleet);
    // Glitches at this intensity cost at most 2 attempts' worth of
    // retries, so every job recovers within the default 3 attempts.
    assert_eq!(report.failures().count(), 0, "all transients must recover");
    for result in &report.results {
        assert!(result.attempts > 1, "{}: expected retries", result.sensor);
        assert!(result.attempts <= 3, "{}: attempts bounded", result.sensor);
        assert!(result.injected.runtime >= 1);
    }
    let metrics = runtime.metrics();
    assert!(metrics.retries >= fleet.len() as u64);
    assert!(metrics.faults_injected >= fleet.len() as u64);
}

#[test]
fn exhausted_transients_fail_with_attempt_count() {
    let fleet = Fleet::builder("exhausted")
        .sensor(catalog::our_glucose_sensor())
        .seed(3)
        .fault_plan(
            FaultPlan::builder("glitch-storm", 11)
                // Intensity 1.0 → more consecutive failures than the
                // single allowed attempt.
                .spec(FaultKind::TransientGlitch, 1.0, 1.0)
                .build(),
        )
        .build();
    let runtime = Runtime::new(config(1).with_max_attempts(1));
    let report = runtime.run(&fleet);
    let (_, error) = report.failures().next().expect("must fail");
    match error {
        JobError::Transient { attempts, .. } => assert_eq!(*attempts, 1),
        other => panic!("expected Transient, got {other}"),
    }
    assert!(error.is_transient());
}

#[test]
fn runtime_survives_panicking_jobs_across_runs() {
    let panic_plan = FaultPlan::builder("all-panic", 1)
        .spec(FaultKind::WorkerPanic, 1.0, 1.0)
        .build();
    let poisoned = Fleet::builder("poisoned")
        .sensors(catalog::glucose_sensors())
        .seed(1)
        .fault_plan(panic_plan)
        .build();
    let healthy = Fleet::builder("healthy")
        .sensors(catalog::glucose_sensors())
        .seed(1)
        .build();
    let runtime = Runtime::new(config(2));
    let wrecked = runtime.run(&poisoned);
    assert_eq!(wrecked.failures().count(), poisoned.len());
    // The panics were contained inside the jobs; the same runtime must
    // calibrate a healthy fleet cleanly afterwards.
    let recovered = runtime.run(&healthy);
    assert_eq!(recovered.failures().count(), 0);
    assert_eq!(recovered.results.len(), healthy.len());
}

#[test]
fn budget_gate_rejects_oversized_jobs_deterministically() {
    let big = catalog::our_glucose_sensor()
        .with_id("glucose/oversized")
        .with_sweep_points(5000);
    let required = big.calibration_workload();
    let budget = required / 2;
    let fleet = Fleet::builder("budgeted")
        .sensor(catalog::our_glucose_sensor())
        .sensor(big)
        .seed(5)
        .build();
    let runtime = Runtime::new(config(2).with_job_budget(budget));
    let report = runtime.run(&fleet);
    assert_eq!(report.successes().count(), 1, "small job passes the gate");
    let (result, error) = report.failures().next().expect("big job rejected");
    assert_eq!(result.sensor, "glucose/oversized");
    assert_eq!(error, &JobError::Budget { required, budget });
    assert_eq!(runtime.metrics().budget_rejections, 1);
    // Rerun: the verdict is identical (the gate never consults the
    // cache, so memoized successes can't flip it).
    let rerun = runtime.run(&fleet);
    assert_eq!(rerun.failures().count(), 1);
    assert_eq!(runtime.metrics().budget_rejections, 2);
}

#[test]
fn faulted_jobs_never_alias_healthy_cache_entries() {
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_retry_backoff(Duration::ZERO),
    );
    let sensors = catalog::glucose_sensors;
    let healthy = Fleet::builder("healthy")
        .sensors(sensors())
        .seed(42)
        .build();
    let denatured = Fleet::builder("denatured")
        .sensors(sensors())
        .seed(42)
        .fault_plan(
            FaultPlan::builder("denature-all", 2)
                .spec(FaultKind::FilmDenaturation, 1.0, 0.8)
                .build(),
        )
        .build();
    let first = runtime.run(&healthy);
    let faulted = runtime.run(&denatured);
    // Same sensors, same seed — but the armed run must re-simulate,
    // not hit the healthy entries.
    assert_eq!(faulted.cache_hits(), 0);
    for (result, outcome) in faulted.successes() {
        let reference = first
            .outcome(&result.sensor, 42)
            .expect("healthy reference");
        assert!(
            outcome.summary.sensitivity < 0.7 * reference.summary.sensitivity,
            "{}: denatured sensitivity must collapse",
            result.sensor
        );
    }
    // And the faulted outcomes are themselves memoized under the plan
    // fingerprint: a rerun is all cache hits with the same digest.
    let rerun = runtime.run(&denatured);
    assert_eq!(rerun.cache_hits(), denatured.len());
    assert_eq!(rerun.summaries_digest(), faulted.summaries_digest());
}

#[test]
fn bounded_cache_evicts_and_reports() {
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_cache_capacity(16),
    );
    let fleet = Fleet::builder("churn")
        .sensor(catalog::our_glucose_sensor())
        .seeds(0..200)
        .build();
    let report = runtime.run(&fleet);
    assert_eq!(report.failures().count(), 0);
    assert!(
        runtime.cache_len() <= 16,
        "cache bounded: {}",
        runtime.cache_len()
    );
    let metrics = runtime.metrics();
    assert!(
        metrics.cache_evictions >= 184,
        "evictions: {}",
        metrics.cache_evictions
    );
    assert_eq!(report.metrics.cache_evictions, metrics.cache_evictions);
}

#[test]
fn chaos_intensity_zero_is_byte_identical_to_unarmed() {
    let runtime = Runtime::new(config(2));
    let unarmed = Fleet::builder("unarmed")
        .sensors(catalog::all_table2())
        .seed(17)
        .build();
    let armed_harmless = Fleet::builder("armed-harmless")
        .sensors(catalog::all_table2())
        .seed(17)
        .fault_plan(FaultPlan::chaos(99, 0.0))
        .build();
    let a = runtime.run(&unarmed);
    let b = runtime.run(&armed_harmless);
    assert_eq!(a.summaries_digest(), b.summaries_digest());
    assert_eq!(b.outcome_summary().degraded, 0);
    assert_eq!(b.outcome_summary().failed, 0);
    assert_eq!(runtime.metrics().faults_injected, 0);
}

#[test]
fn sequential_and_concurrent_chaos_agree() {
    let fleet = stress_fleet(23);
    let concurrent = Runtime::new(config(8)).run(&fleet);
    let sequential = Runtime::new(config(1)).run_sequential(&fleet);
    assert_eq!(concurrent.summaries_digest(), sequential.summaries_digest());
    assert_eq!(concurrent.outcome_summary(), sequential.outcome_summary());
}

//! Crash-resume integration: a journaled fleet killed mid-run must
//! resume to the **byte-identical** digest an uninterrupted run would
//! have produced, at any worker count; a damaged journal must yield a
//! typed error or a correct partial resume, never a panic; and an
//! armed watchdog must cancel injected stalls deterministically while
//! the fleet still completes.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use bios_core::catalog;
use bios_faults::{FaultKind, FaultPlan};
use bios_prng::cases;
use bios_runtime::journal::JournalError;
use bios_runtime::{Fleet, JobError, Runtime, RuntimeConfig};

/// Unique temp path per test so parallel tests never collide.
fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bios-recover-{tag}-{}.journal", std::process::id()))
}

/// A plan with enough variety that the journal sees all three
/// dispositions: clean completions, degraded survivors, and failures.
fn mixed_plan() -> FaultPlan {
    FaultPlan::builder("recover-suite", 0xDEC0DE)
        .spec(FaultKind::TransientGlitch, 0.6, 0.4)
        .spec(FaultKind::WorkerPanic, 0.2, 1.0)
        .spec(FaultKind::FilmDenaturation, 0.5, 0.6)
        .build()
}

fn mixed_fleet(seed: u64) -> Fleet {
    Fleet::builder("recover")
        .sensors(catalog::all_table2())
        .seed(seed)
        .fault_plan(mixed_plan())
        .build()
}

fn config(workers: usize) -> RuntimeConfig {
    RuntimeConfig::default()
        .with_workers(workers)
        .with_cache(false)
        .with_retry_backoff(Duration::from_micros(10))
}

/// Byte offsets of every frame boundary in a journal file: the end of
/// the magic, then the end of each `[u32 len][payload][u64 fnv]` frame.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![8]; // after magic
    let mut at = 8usize;
    while at + 4 <= bytes.len() {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let end = at + 4 + len + 8;
        if end > bytes.len() {
            break;
        }
        at = end;
        boundaries.push(at);
    }
    boundaries
}

#[test]
fn kill_and_resume_merges_to_byte_identical_digest() {
    let fleet = mixed_fleet(42);
    let ref_path = temp_journal("ref");
    let reference = Runtime::new(config(4))
        .run_journaled(&fleet, &ref_path)
        .expect("uninterrupted journaled run");
    let ref_digest = reference.summaries_digest();
    let ref_outcome = reference.outcome_summary();
    let sealed = fs::read(&ref_path).expect("read sealed journal");
    fs::remove_file(&ref_path).ok();

    let boundaries = frame_boundaries(&sealed);
    // boundaries = [magic, header, job1, .., jobN, seal]; crash points
    // must keep the header (a journal without one is not resumable).
    assert!(boundaries.len() >= fleet.len() + 3);
    let header_end = boundaries[1];
    let crash_points = [
        header_end,                           // died before any job landed
        boundaries[2],                        // exactly one job journaled
        boundaries[boundaries.len() / 2],     // mid-fleet
        boundaries[boundaries.len() - 2],     // all jobs, seal lost
        boundaries[boundaries.len() / 2] + 3, // torn mid-frame write
    ];

    for (i, &cut) in crash_points.iter().enumerate() {
        for workers in [1usize, 2, 8] {
            let path = temp_journal(&format!("cut{i}-w{workers}"));
            fs::write(&path, &sealed[..cut]).expect("write truncated journal");

            let runtime = Runtime::new(config(workers));
            let resumed = runtime
                .resume(&fleet, &path)
                .expect("resume from truncated journal");
            assert_eq!(
                resumed.summaries_digest(),
                ref_digest,
                "cut at {cut} bytes, {workers} workers: digest must be byte-identical"
            );
            assert_eq!(resumed.outcome, ref_outcome);
            assert_eq!(resumed.total_jobs, fleet.len());
            assert_eq!(resumed.resumed_jobs + resumed.executed_jobs, fleet.len());
            let metrics = runtime.metrics();
            assert_eq!(metrics.resumed_jobs, resumed.resumed_jobs as u64);
            assert!(metrics.journal_records > 0 || resumed.executed_jobs == 0);

            // The resume sealed the journal: a second resume is a pure
            // replay that executes nothing and agrees byte for byte.
            let replay = Runtime::new(config(workers))
                .resume(&fleet, &path)
                .expect("replay of sealed journal");
            assert_eq!(replay.executed_jobs, 0);
            assert_eq!(replay.resumed_jobs, fleet.len());
            assert_eq!(replay.summaries_digest(), ref_digest);
            fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn resume_of_foreign_journal_is_a_fingerprint_mismatch() {
    let path = temp_journal("foreign");
    let fleet = mixed_fleet(1);
    Runtime::new(config(2))
        .run_journaled(&fleet, &path)
        .expect("journaled run");

    // Same sensors, different seed: different run, same shape.
    let other_seed = mixed_fleet(2);
    match Runtime::new(config(2)).resume(&other_seed, &path) {
        Err(JournalError::FingerprintMismatch { journal, current }) => {
            assert_ne!(journal, current);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }

    // Same seed, different fault plan: also a different run.
    let other_plan = Fleet::builder("recover")
        .sensors(catalog::all_table2())
        .seed(1)
        .build();
    assert!(matches!(
        Runtime::new(config(2)).resume(&other_plan, &path),
        Err(JournalError::FingerprintMismatch { .. })
    ));
    fs::remove_file(&path).ok();
}

#[test]
fn damaged_journals_never_panic_and_resume_stays_correct() {
    let fleet = mixed_fleet(7);
    let ref_path = temp_journal("damage-ref");
    let reference = Runtime::new(config(2))
        .run_journaled(&fleet, &ref_path)
        .expect("journaled run");
    let ref_digest = reference.summaries_digest();
    let sealed = fs::read(&ref_path).expect("read sealed journal");
    fs::remove_file(&ref_path).ok();

    // Checksums make any in-place damage detectable, so a resume either
    // fails with a typed error (damage reached the magic or header) or
    // quarantines the damaged suffix and recomputes it — in which case
    // the merged digest must still be byte-identical to the reference.
    cases(0xBAD_5EED, 48, |rng| {
        let mut bytes = sealed.clone();
        match rng.index(3) {
            0 => {
                // Flip one bit anywhere.
                let at = rng.index(bytes.len());
                bytes[at] ^= 1 << rng.index(8);
            }
            1 => {
                // Truncate anywhere, including inside the magic.
                bytes.truncate(rng.index(bytes.len() + 1));
            }
            _ => {
                // Flip a bit, then truncate after it.
                let at = rng.index(bytes.len());
                bytes[at] ^= 1 << rng.index(8);
                let keep = rng.index_in(at.min(bytes.len() - 1), bytes.len() + 1);
                bytes.truncate(keep);
            }
        }
        let path = temp_journal(&format!("damage-{}", rng.next_u64()));
        fs::write(&path, &bytes).expect("write damaged journal");
        match Runtime::new(config(2)).resume(&fleet, &path) {
            Ok(resumed) => assert_eq!(
                resumed.summaries_digest(),
                ref_digest,
                "a resume that accepts a damaged journal must still be exact"
            ),
            Err(
                JournalError::BadMagic
                | JournalError::HeaderMissing
                | JournalError::Corrupt { .. }
                | JournalError::FingerprintMismatch { .. }
                | JournalError::Io(_),
            ) => {}
        }
        fs::remove_file(&path).ok();
    });
}

#[test]
fn stalled_workers_are_cancelled_and_the_fleet_completes() {
    let plan = FaultPlan::builder("stall-suite", 0x57A11)
        .spec(FaultKind::WorkerStall, 0.5, 1.0)
        .spec(FaultKind::FilmDenaturation, 0.4, 0.5)
        .build();
    let fleet = Fleet::builder("stall")
        .sensors(catalog::all_table2())
        .seed(9)
        .fault_plan(plan)
        .build();

    // Reference: watchdog unarmed (zero deadline) renders every injected
    // stall synchronously as the same typed loss, single-threaded.
    let unarmed = Runtime::new(config(1));
    let ref_report = unarmed.run_sequential(&fleet);
    let ref_digest = ref_report.summaries_digest();
    let stalled_jobs = ref_report
        .failures()
        .filter(|(_, e)| matches!(e, JobError::Deadline))
        .count();
    assert!(stalled_jobs > 0, "the stall plan must bite");
    assert!(
        stalled_jobs < fleet.len(),
        "some jobs must survive to prove the fleet kept running"
    );
    assert_eq!(unarmed.metrics().deadline_kills, stalled_jobs as u64);
    assert_eq!(unarmed.metrics().stalled_workers, 0);

    // Armed: stalls actually livelock in solver code until the
    // supervisor trips their token; the worker that absorbed the stall
    // retires and is healed. The rendered outcome is identical.
    for workers in [2usize, 8] {
        let runtime = Runtime::new(config(workers).with_job_deadline(Duration::from_millis(25)));
        let report = runtime.run(&fleet);
        assert_eq!(
            report.summaries_digest(),
            ref_digest,
            "{workers} workers, armed watchdog: digest must match unarmed sequential"
        );
        assert_eq!(report.outcome_summary().total(), fleet.len());
        let metrics = runtime.metrics();
        assert_eq!(metrics.deadline_kills, stalled_jobs as u64);
        assert!(
            metrics.stalled_workers > 0,
            "armed run must retire at least one stalled worker"
        );
    }
}

#[test]
fn crash_option_is_inert_when_unreached() {
    // crash_after_jobs beyond the fleet size must never fire; the run
    // seals normally and replays cleanly.
    let fleet = mixed_fleet(3);
    let path = temp_journal("inert");
    let report = Runtime::new(config(2))
        .run_journaled_with(
            &fleet,
            &path,
            bios_runtime::JournalOptions {
                crash_after_jobs: Some(u64::MAX),
            },
        )
        .expect("journaled run");
    let replay = Runtime::new(config(2))
        .resume(&fleet, &path)
        .expect("replay");
    assert_eq!(replay.executed_jobs, 0);
    assert_eq!(replay.summaries_digest(), report.summaries_digest());
    fs::remove_file(&path).ok();
}

//! Tenant-sharded fleet-of-fleets: bulkhead isolation, shard
//! supervision, and deterministic work-stealing over per-shard
//! runtimes.
//!
//! The gateway (PR 5) and stream engine (PR 6) feed every tenant into
//! a *single* [`Runtime`] — one tenant's chaos plan, breaker storm,
//! or brownout degrades every neighbor. `bios-shard` partitions the
//! fleet across N tenant-sharded runtimes, each with its own worker
//! pool, bounded memo cache, metrics, and journal segment:
//!
//! * **Routing** ([`route`]) — a tenant's home shard is FNV-1a of its
//!   id mod N; re-homing off a quarantined shard re-hashes over the
//!   ordered healthy set. Stateless and reproducible.
//! * **Bulkheads** — every tenant gets its *own*
//!   [`bios_gateway::GatewaySession`] (token bucket, breakers,
//!   queues, brownout state, counters) bound to its home shard, so a
//!   neighbor's chaos plan, breaker trips, or panics are physically
//!   and logically invisible to it.
//! * **Supervision** ([`supervisor`]) — a pure fold over logical
//!   health events quarantines wedged shards (deadline-kill storms),
//!   poisoned shards (respawn exhaustion), and lost shards
//!   ([`bios_faults::FaultKind::ShardLoss`]); pending work of a quarantined
//!   shard's tenants deterministically redistributes to healthy
//!   shards.
//! * **Work-stealing** — tick-aligned: when a home shard's logical
//!   backlog reaches [`ShardConfig::steal_batch`] and a healthy shard
//!   sits idle, the lowest-indexed idle shard hosts that tenant's
//!   dispatches for the tick. Placement only; never outcomes.
//!
//! The whole layer is a pure function of `(config, trace, chaos)`:
//! job outcomes are pure in `(entry, seed, plan)` (see
//! [`bios_runtime::JobStream::submit_on`]) and admission state is
//! per-tenant, so [`ShardedReport::digest`] is **byte-identical at
//! any (shard count × worker count)** — even mid-quarantine. CI pins
//! this with the `shard_gate` binary.
//!
//! ```
//! use bios_shard::{tenant_trace, ShardConfig, ShardedGateway};
//!
//! let trace = tenant_trace(2, 2, 2, 64, None);
//! let one = ShardedGateway::new(ShardConfig {
//!     shards: 1,
//!     ..ShardConfig::default()
//! })
//! .run(&trace);
//! let four = ShardedGateway::new(ShardConfig {
//!     shards: 4,
//!     ..ShardConfig::default()
//! })
//! .run(&trace);
//! assert_eq!(one.digest(), four.digest());
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bios_core::catalog;
use bios_faults::FaultPlan;
use bios_gateway::{Disposition, Gateway, GatewayConfig, GatewayCounters, Priority, Request};
use bios_quorum::{meter, QuorumConfig, QuorumScreen};
use bios_recover::{RealIo, StorageIo};
use bios_runtime::journal::{JournalError, JournalOptions};
use bios_runtime::{parse_env_value, Fleet, Job, JobError, Runtime, RuntimeConfig};

pub mod merge;
pub mod route;
pub mod supervisor;

pub use merge::{ShardPlacement, ShardedReport, TenantStats};
pub use route::{home_shard, redistribute};
pub use supervisor::{
    HealthEvent, QuarantineReason, ShardHealth, ShardSupervisor, SupervisorConfig,
};

/// Construction knobs for the sharded layer.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of tenant shards (each its own gateway + runtime).
    pub shards: usize,
    /// Minimum logical backlog (open requests homed on a shard)
    /// before an idle shard may steal that shard's dispatches.
    pub steal_batch: usize,
    /// Per-shard admission tuning (every shard gets a copy).
    pub gateway: GatewayConfig,
    /// Per-shard runtime template — `runtime.workers` is workers *per
    /// shard*.
    pub runtime: RuntimeConfig,
    /// Quarantine tuning for the shard supervisor.
    pub supervisor: SupervisorConfig,
}

impl Default for ShardConfig {
    /// Four shards, steal batch 4, default gateway/runtime/supervisor
    /// tuning.
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            steal_batch: 4,
            gateway: GatewayConfig::default(),
            runtime: RuntimeConfig::default(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

impl ShardConfig {
    /// Defaults layered with the environment: the nested gateway and
    /// runtime knobs come from their own `from_env` readers, the
    /// shard count from `BIOS_SHARDS`, and the steal threshold from
    /// `BIOS_STEAL_BATCH`. A set-but-malformed value keeps the
    /// default and prints one deterministic warning line to stderr
    /// (see [`parse_env_value`]).
    ///
    /// `BIOS_SHARDS` must be **positive**: a fleet-of-fleets needs at
    /// least one fleet, and an operator writing `BIOS_SHARDS=0` most
    /// likely meant "unsharded", which is spelled `BIOS_SHARDS=1`.
    /// Like the `BIOS_CACHE_CAP=0` case in `bios-runtime`, the zero
    /// is rejected with a warning rather than guessed at.
    #[must_use]
    pub fn from_env() -> ShardConfig {
        let mut config = ShardConfig {
            gateway: GatewayConfig::from_env(),
            runtime: RuntimeConfig::from_env(),
            ..ShardConfig::default()
        };
        match env_parsed::<usize>("BIOS_SHARDS", "a positive integer") {
            Some(0) => eprintln!(
                "warning: ignoring ambiguous BIOS_SHARDS=\"0\" (a sharded fleet needs at \
                 least one shard; write BIOS_SHARDS=1 for an unsharded layout)"
            ),
            Some(n) => config.shards = n,
            None => {}
        }
        match env_parsed::<usize>("BIOS_STEAL_BATCH", "a positive integer") {
            Some(0) => eprintln!(
                "warning: ignoring degenerate BIOS_STEAL_BATCH=\"0\" (a steal threshold must \
                 be positive; keeping the default of {})",
                ShardConfig::default().steal_batch
            ),
            Some(batch) => config.steal_batch = batch,
            None => {}
        }
        config
    }

    /// Overrides the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ShardConfig {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard worker count.
    #[must_use]
    pub fn with_workers_per_shard(mut self, workers: usize) -> ShardConfig {
        self.runtime.workers = workers;
        self
    }
}

/// [`parse_env_value`] applied to the process environment; unset
/// variables are silently `None`.
fn env_parsed<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    std::env::var(name)
        .ok()
        .and_then(|raw| parse_env_value(name, &raw, what))
}

/// The chaos inputs of a sharded run, all deterministic.
#[derive(Debug, Clone, Default)]
pub struct ShardChaos {
    /// Per-tenant fault plans: armed on that tenant's session only,
    /// so the bulkhead keeps them invisible to every neighbor.
    pub tenant_plans: BTreeMap<String, FaultPlan>,
    /// Infrastructure plan whose [`bios_faults::FaultKind::ShardLoss`] spec decides
    /// which shards are lost when (see
    /// [`FaultPlan::shard_loss_tick`]).
    pub infra: Option<FaultPlan>,
    /// Horizon handed to [`FaultPlan::shard_loss_tick`] — losses land
    /// in its first half.
    pub horizon_ticks: u64,
    /// Explicit `(shard, tick)` losses, injected in addition to the
    /// plan-derived ones; the deterministic hook tests and the CI
    /// gate use to force a quarantine.
    pub forced_losses: Vec<(usize, u64)>,
    /// Arms the redundancy screen over the whole fleet's completions:
    /// covered jobs are re-polled across replica lanes and
    /// majority-voted, disagreements strike the offending lane *and*
    /// the executing shard (see
    /// [`supervisor::HealthEvent::CorruptionSuspect`]), and the run's
    /// [`ShardedReport::quorum`] totals are filled. `None` leaves the
    /// screen off.
    pub quorum: Option<QuorumConfig>,
}

impl ShardChaos {
    /// No chaos at all.
    #[must_use]
    pub fn none() -> ShardChaos {
        ShardChaos::default()
    }

    /// Arms `plan` on `tenant`'s session (and no one else's).
    #[must_use]
    pub fn with_tenant_plan(mut self, tenant: &str, plan: FaultPlan) -> ShardChaos {
        self.tenant_plans.insert(tenant.to_string(), plan);
        self
    }

    /// Arms an infrastructure plan over `horizon_ticks`.
    #[must_use]
    pub fn with_infra(mut self, plan: FaultPlan, horizon_ticks: u64) -> ShardChaos {
        self.infra = Some(plan);
        self.horizon_ticks = horizon_ticks;
        self
    }

    /// Forces the loss of one shard at one tick.
    #[must_use]
    pub fn with_shard_loss_at(mut self, shard: usize, tick: u64) -> ShardChaos {
        self.forced_losses.push((shard, tick));
        self
    }

    /// Arms the redundancy screen with `config`.
    #[must_use]
    pub fn with_quorum(mut self, config: QuorumConfig) -> ShardChaos {
        self.quorum = Some(config);
        self
    }
}

/// The fleet-of-fleets front door: N per-shard [`Gateway`]s (each
/// owning its own [`Runtime`]) behind deterministic tenant routing,
/// supervision, and work-stealing.
#[derive(Debug)]
pub struct ShardedGateway {
    config: ShardConfig,
    gateways: Vec<Gateway>,
}

impl ShardedGateway {
    /// Builds `config.shards` shards, each a fresh gateway over a
    /// fresh runtime from the config's templates.
    #[must_use]
    pub fn new(config: ShardConfig) -> ShardedGateway {
        let gateways = (0..config.shards.max(1))
            .map(|_| Gateway::new(config.gateway.clone(), Runtime::new(config.runtime)))
            .collect();
        ShardedGateway { config, gateways }
    }

    /// The shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.gateways.len()
    }

    /// The construction config.
    #[must_use]
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// One shard's gateway, if in range.
    #[must_use]
    pub fn gateway(&self, shard: usize) -> Option<&Gateway> {
        self.gateways.get(shard)
    }

    /// Runs a trace with no chaos armed.
    #[must_use]
    pub fn run(&self, trace: &[Request]) -> ShardedReport {
        self.run_with(trace, &ShardChaos::none())
    }

    /// Runs a multi-tenant trace through the sharded fleet.
    ///
    /// Every tenant gets its own session on its home shard's gateway
    /// (bulkhead), with that tenant's chaos plan — if any — armed on
    /// it alone. The lockstep loop then advances all sessions through
    /// the globally merged tick sequence; before each tenant's tick
    /// the loop picks its execution host:
    ///
    /// 1. home shard quarantined → re-hash over the healthy set
    ///    ([`route::redistribute`]), falling back to home when no
    ///    shard is healthy;
    /// 2. home backlog ≥ [`ShardConfig::steal_batch`] and a healthy
    ///    shard has zero backlog → the lowest-indexed such idle shard
    ///    steals the dispatches;
    /// 3. otherwise → home.
    ///
    /// Sessions are advanced in ascending tenant order, and health
    /// events (deadline kills, panic losses, plan-derived and forced
    /// shard losses) fold into the supervisor in that same order —
    /// the whole run is a pure function of `(config, trace, chaos)`
    /// and its digest is placement-independent by construction.
    #[must_use]
    pub fn run_with(&self, trace: &[Request], chaos: &ShardChaos) -> ShardedReport {
        let shards = self.gateways.len();
        let mut tenant_names: Vec<String> = trace.iter().map(|r| r.tenant.clone()).collect();
        tenant_names.sort();
        tenant_names.dedup();
        let slot_of: BTreeMap<&str, usize> = tenant_names
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i))
            .collect();
        let homes: Vec<usize> = tenant_names
            .iter()
            .map(|t| route::home_shard(t, shards))
            .collect();

        // One bulkheaded session per tenant, on its home shard, with
        // only its own chaos plan armed.
        let mut sessions = Vec::with_capacity(tenant_names.len());
        for (slot, tenant) in tenant_names.iter().enumerate() {
            let mut session = self.gateways[homes[slot]].session();
            if let Some(plan) = chaos.tenant_plans.get(tenant) {
                session.set_fault_plan(Some(plan.clone()));
            }
            sessions.push(session);
        }

        // Offer the full trace up front; `(slot, k)` recovers global
        // offer order from the per-tenant reports at the end.
        let mut global_of: Vec<(usize, usize)> = Vec::with_capacity(trace.len());
        let mut offered = vec![0usize; tenant_names.len()];
        for request in trace {
            let slot = slot_of[request.tenant.as_str()];
            global_of.push((slot, offered[slot]));
            offered[slot] += 1;
            sessions[slot].offer(request.clone());
        }

        // Shard losses: plan-derived plus forced, fired as the global
        // tick passes them.
        let mut supervisor = ShardSupervisor::new(self.config.supervisor, shards);
        // One fleet-wide redundancy screen: replica lanes are logical
        // identities, so the scoreboard is shared across shards and the
        // verdict stream is placement-independent.
        let mut quorum = chaos.quorum.map(QuorumScreen::new);
        let mut losses: Vec<(usize, u64)> = (0..shards)
            .filter_map(|i| {
                chaos
                    .infra
                    .as_ref()
                    .and_then(|p| p.shard_loss_tick(i, chaos.horizon_ticks))
                    .map(|t| (i, t))
            })
            .collect();
        losses.extend(chaos.forced_losses.iter().copied());
        losses.sort_unstable_by_key(|&(shard, tick)| (tick, shard));
        let mut next_loss = 0usize;

        let mut completions = vec![0u64; shards];
        let mut steals_in = vec![0u64; shards];
        let mut redistributions_in = vec![0u64; shards];

        while let Some(tick) = sessions.iter().filter_map(|s| s.next_event_tick()).min() {
            while next_loss < losses.len() && losses[next_loss].1 <= tick {
                let (shard, loss_tick) = losses[next_loss];
                supervisor.observe(HealthEvent::ShardLost {
                    shard,
                    tick: loss_tick,
                });
                next_loss += 1;
            }
            // Logical backlog per home shard: open (non-terminal)
            // requests of the tenants homed there, measured before
            // anyone advances this tick.
            let mut backlog = vec![0usize; shards];
            for (slot, session) in sessions.iter().enumerate() {
                backlog[homes[slot]] += session.open();
            }
            let healthy = supervisor.healthy_shards();
            for slot in 0..sessions.len() {
                let due = sessions[slot].next_event_tick().is_some_and(|t| t <= tick);
                if !due {
                    continue;
                }
                let home = homes[slot];
                let host = if supervisor.is_quarantined(home) {
                    let target = route::redistribute(&tenant_names[slot], &healthy).unwrap_or(home);
                    if target != home {
                        redistributions_in[target] += 1;
                    }
                    target
                } else if backlog[home] >= self.config.steal_batch.max(1) {
                    match healthy
                        .iter()
                        .copied()
                        .find(|&i| i != home && backlog[i] == 0)
                    {
                        Some(idle) => {
                            steals_in[idle] += 1;
                            idle
                        }
                        None => home,
                    }
                } else {
                    home
                };
                sessions[slot].set_execution_host(if host == home {
                    None
                } else {
                    Some(self.gateways[host].runtime())
                });
                for outcome in sessions[slot].advance_to(tick) {
                    let Disposition::Executed {
                        done_tick, result, ..
                    } = &outcome.disposition
                    else {
                        continue;
                    };
                    completions[host] += 1;
                    match &result.outcome {
                        Err(JobError::Deadline) => supervisor.observe(HealthEvent::DeadlineKill {
                            shard: host,
                            tick: *done_tick,
                        }),
                        Err(JobError::Panicked(_)) => {
                            supervisor.observe(HealthEvent::PanicLoss {
                                shard: host,
                                tick: *done_tick,
                            });
                        }
                        _ => {}
                    }
                    if let Some(screen) = quorum.as_mut() {
                        let metrics = self.gateways[host].runtime().metrics_handle();
                        if !result.verify_integrity() {
                            // The produce-time checksum no longer
                            // matches the payload: refuse to treat the
                            // value as clean and suspect the executor.
                            metrics.record_corruption_caught(1);
                            supervisor.observe(HealthEvent::CorruptionSuspect {
                                shard: host,
                                tick: *done_tick,
                            });
                        } else {
                            let critical = outcome.priority == Priority::Recalibration;
                            let plan = chaos.tenant_plans.get(&tenant_names[slot]);
                            if let Some(verdict) = screen.screen_result(plan, result, critical) {
                                if verdict.disagreement {
                                    supervisor.observe(HealthEvent::CorruptionSuspect {
                                        shard: host,
                                        tick: *done_tick,
                                    });
                                }
                                meter(&verdict, &metrics);
                            }
                        }
                    }
                }
            }
        }

        let reports: Vec<bios_gateway::GatewayReport> =
            sessions.into_iter().map(|s| s.finish()).collect();
        let mut counters = GatewayCounters::default();
        let mut drained_tick = 0u64;
        for report in &reports {
            counters = merge_counters(counters, report.counters);
            drained_tick = drained_tick.max(report.drained_tick);
        }
        let outcomes = global_of
            .iter()
            .map(|&(slot, k)| reports[slot].outcomes[k].clone())
            .collect();
        let placement = (0..shards)
            .map(|i| ShardPlacement {
                shard: i,
                tenants_homed: homes.iter().filter(|&&h| h == i).count() as u64,
                completions: completions[i],
                steals_in: steals_in[i],
                redistributions_in: redistributions_in[i],
                health: supervisor.health(i),
            })
            .collect();
        let mut report = ShardedReport::new(outcomes, counters, drained_tick, placement);
        report.quorum = quorum.map(|screen| screen.summary());
        report
    }
}

/// Element-wise sum of two counter sets.
fn merge_counters(a: GatewayCounters, b: GatewayCounters) -> GatewayCounters {
    GatewayCounters {
        admission_rejected: a.admission_rejected + b.admission_rejected,
        rate_limited: a.rate_limited + b.rate_limited,
        breaker_trips: a.breaker_trips + b.breaker_trips,
        breaker_half_open_probes: a.breaker_half_open_probes + b.breaker_half_open_probes,
        browned_out: a.browned_out + b.browned_out,
        deadline_shed: a.deadline_shed + b.deadline_shed,
    }
}

/// Builds a deterministic multi-tenant trace: `tenants` wards
/// (`ward-00`, `ward-01`, …), `per_tenant` requests each, arriving
/// one per `base_interval` ticks within a tenant, sensors alternating
/// between the platform's glucose and lactate entries. With a `skew`
/// plan carrying a [`bios_faults::FaultKind::TenantHotspot`] spec, a
/// hot tenant contributes [`FaultPlan::hotspot_factor`] times the
/// baseline request count at proportionally tighter arrival spacing
/// (`base_interval / factor`, floored at one tick) — a genuine rate
/// hotspot, the arrival-skew input of the isolation ablation.
#[must_use]
pub fn tenant_trace(
    tenants: usize,
    per_tenant: usize,
    base_interval: u64,
    deadline_ticks: u64,
    skew: Option<&FaultPlan>,
) -> Vec<Request> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for t in 0..tenants {
        let tenant = format!("ward-{t:02}");
        let factor = skew.map_or(1, |p| p.hotspot_factor(&tenant));
        let count = per_tenant.saturating_mul(factor as usize);
        let interval = (base_interval / factor).max(1);
        for k in 0..count {
            let entry = if (t + k) % 2 == 0 {
                catalog::our_glucose_sensor()
            } else {
                catalog::our_lactate_sensor()
            };
            let seed = ((t as u64) << 32) | k as u64;
            out.push(Request::new(
                id,
                &tenant,
                entry,
                seed,
                k as u64 * interval,
                deadline_ticks,
            ));
            id += 1;
        }
    }
    out
}

/// What a sharded journaled run (or resume) produced: per-shard
/// segments merged back into one fleet-order digest.
#[derive(Debug)]
pub struct ShardedFleetReport {
    /// Jobs in the logical fleet.
    pub total_jobs: usize,
    /// Jobs replayed from journal segments instead of re-executing.
    pub resumed_jobs: usize,
    /// Jobs executed by this process.
    pub executed_jobs: usize,
    /// Jobs routed to each shard, ascending by shard index.
    pub per_shard_jobs: Vec<usize>,
    digest: String,
}

impl ShardedFleetReport {
    /// The canonical per-job digest of the whole fleet, segment lines
    /// merged back into fleet job order — byte-identical to
    /// `FleetReport::summaries_digest` of an unsharded run at any
    /// worker count.
    #[must_use]
    pub fn summaries_digest(&self) -> &str {
        &self.digest
    }

    /// FNV-1a of [`ShardedFleetReport::summaries_digest`].
    #[must_use]
    pub fn digest_fnv(&self) -> u64 {
        bios_recover::fnv1a(self.digest.as_bytes())
    }
}

/// N per-shard [`Runtime`]s for batch fleets: jobs are deterministically
/// partitioned across shards, each shard journals into its own segment
/// file, and resume re-verifies and merges the segments.
#[derive(Debug)]
pub struct ShardedRuntime {
    shards: Vec<Runtime>,
}

impl ShardedRuntime {
    /// Builds `config.shards` runtimes from the config's per-shard
    /// template.
    #[must_use]
    pub fn new(config: &ShardConfig) -> ShardedRuntime {
        ShardedRuntime {
            shards: (0..config.shards.max(1))
                .map(|_| Runtime::new(config.runtime))
                .collect(),
        }
    }

    /// The shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's runtime, if in range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> Option<&Runtime> {
        self.shards.get(shard)
    }

    /// The journal segment path of one shard under `dir`.
    #[must_use]
    pub fn segment_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}.journal"))
    }

    /// Deterministically partitions a fleet: job → shard is FNV-1a of
    /// `"{sensor id} {seed:016x}"` mod N, so the split depends only
    /// on job identity — never on job order, shard load, or timing —
    /// and a resume recomputes exactly the same segments. Returns the
    /// dense per-shard sub-jobs plus the map back to fleet indexes.
    fn partition(&self, fleet: &Fleet) -> Vec<(Vec<Job>, Vec<usize>)> {
        let mut parts: Vec<(Vec<Job>, Vec<usize>)> = (0..self.shards.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for job in fleet.jobs() {
            let key = format!("{} {:016x}", job.entry.id(), job.seed);
            let shard = (bios_recover::fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize;
            let (jobs, orig_of) = &mut parts[shard];
            jobs.push(Job {
                index: jobs.len(),
                entry: job.entry.clone(),
                seed: job.seed,
            });
            orig_of.push(job.index);
        }
        parts
    }

    /// Runs a fleet with one write-ahead journal segment per shard
    /// (`dir/shard-<i>.journal`) and merges the per-shard digest
    /// lines back into fleet job order.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when a segment cannot be created,
    /// appended, or sealed.
    pub fn run_journaled(
        &self,
        fleet: &Fleet,
        dir: impl AsRef<Path>,
    ) -> Result<ShardedFleetReport, JournalError> {
        self.run_journaled_on(&RealIo, fleet, dir)
    }

    /// [`ShardedRuntime::run_journaled`] on an explicit storage
    /// backend: every per-shard segment goes through `backend`, so the
    /// torture gate can crash or degrade individual segments
    /// deterministically.
    ///
    /// # Errors
    ///
    /// As [`ShardedRuntime::run_journaled`].
    pub fn run_journaled_on(
        &self,
        backend: &dyn StorageIo,
        fleet: &Fleet,
        dir: impl AsRef<Path>,
    ) -> Result<ShardedFleetReport, JournalError> {
        let dir = dir.as_ref();
        let mut lines: Vec<Option<String>> = vec![None; fleet.len()];
        let mut per_shard_jobs = vec![0usize; self.shards.len()];
        for (shard, (jobs, orig_of)) in self.partition(fleet).into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            per_shard_jobs[shard] = jobs.len();
            let sub_fleet = fleet.with_jobs(jobs);
            let report = self.shards[shard].run_journaled_on(
                backend,
                &sub_fleet,
                Self::segment_path(dir, shard),
                JournalOptions::default(),
            )?;
            for result in &report.results {
                if let Some(&orig) = orig_of.get(result.index) {
                    lines[orig] = Some(result.digest_line());
                }
            }
        }
        let executed_jobs = fleet.len();
        Ok(ShardedFleetReport {
            total_jobs: fleet.len(),
            resumed_jobs: 0,
            executed_jobs,
            per_shard_jobs,
            digest: join_lines(lines),
        })
    }

    /// Resumes a sharded journaled run: every present segment is
    /// fingerprint-verified against its shard's sub-fleet and
    /// replayed/completed exactly like [`Runtime::resume`]; a
    /// **missing** segment (the crash predated its creation) and a
    /// **headerless** one (`BadMagic`/`HeaderMissing`: the crash
    /// predated the durable header, so the file holds nothing
    /// trustworthy) are tolerated by executing that shard's jobs
    /// fresh under a new segment. The merged digest is byte-identical
    /// to an uninterrupted unsharded run.
    ///
    /// # Errors
    ///
    /// * [`JournalError::FingerprintMismatch`] — a segment belongs to
    ///   a different fleet; resuming would alias its results;
    /// * other [`JournalError`]s as in [`Runtime::resume`].
    pub fn resume(
        &self,
        fleet: &Fleet,
        dir: impl AsRef<Path>,
    ) -> Result<ShardedFleetReport, JournalError> {
        self.resume_on(&RealIo, fleet, dir)
    }

    /// [`ShardedRuntime::resume`] on an explicit storage backend; the
    /// per-segment existence check consults the backend, so a SimIo
    /// disk is honored end to end.
    ///
    /// # Errors
    ///
    /// As [`ShardedRuntime::resume`].
    pub fn resume_on(
        &self,
        backend: &dyn StorageIo,
        fleet: &Fleet,
        dir: impl AsRef<Path>,
    ) -> Result<ShardedFleetReport, JournalError> {
        let dir = dir.as_ref();
        let mut lines: Vec<Option<String>> = vec![None; fleet.len()];
        let mut per_shard_jobs = vec![0usize; self.shards.len()];
        let mut resumed_jobs = 0usize;
        let mut executed_jobs = 0usize;
        for (shard, (jobs, orig_of)) in self.partition(fleet).into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            per_shard_jobs[shard] = jobs.len();
            let sub_fleet = fleet.with_jobs(jobs);
            let path = Self::segment_path(dir, shard);
            let needs_fresh_run = if backend.exists(&path) {
                match self.shards[shard].resume_on(backend, &sub_fleet, &path) {
                    Ok(report) => {
                        resumed_jobs += report.resumed_jobs;
                        executed_jobs += report.executed_jobs;
                        for (sub_index, line) in report.summaries_digest().lines().enumerate() {
                            if let Some(&orig) = orig_of.get(sub_index) {
                                lines[orig] = Some(line.to_string());
                            }
                        }
                        false
                    }
                    // A crash can predate the segment's durable
                    // header: the magic or header frame never hit the
                    // platter, so the file carries nothing
                    // trustworthy. Treat it exactly like a missing
                    // segment — execute the shard fresh. A
                    // fingerprint mismatch or corrupt body still
                    // propagates: those mean the bytes are *foreign*,
                    // not merely torn.
                    Err(JournalError::BadMagic | JournalError::HeaderMissing) => true,
                    Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => true,
                    Err(e) => return Err(e),
                }
            } else {
                true
            };
            if needs_fresh_run {
                let report = self.shards[shard].run_journaled_on(
                    backend,
                    &sub_fleet,
                    &path,
                    JournalOptions::default(),
                )?;
                executed_jobs += sub_fleet.len();
                for result in &report.results {
                    if let Some(&orig) = orig_of.get(result.index) {
                        lines[orig] = Some(result.digest_line());
                    }
                }
            }
        }
        Ok(ShardedFleetReport {
            total_jobs: fleet.len(),
            resumed_jobs,
            executed_jobs,
            per_shard_jobs,
            digest: join_lines(lines),
        })
    }
}

/// Joins per-job digest lines (fleet order) into the canonical digest
/// string; unfilled slots are unreachable but skipped rather than
/// trusted.
fn join_lines(lines: Vec<Option<String>>) -> String {
    let mut out = String::new();
    for line in lines.into_iter().flatten() {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_faults::FaultKind;

    fn shard_config(shards: usize, workers: usize) -> ShardConfig {
        ShardConfig::default()
            .with_shards(shards)
            .with_workers_per_shard(workers)
    }

    #[test]
    fn digest_is_identical_across_shard_and_worker_configs() {
        let trace = tenant_trace(6, 4, 2, 64, None);
        let digests: Vec<String> = [(1usize, 1usize), (4, 2), (8, 8)]
            .iter()
            .map(|&(s, w)| ShardedGateway::new(shard_config(s, w)).run(&trace).digest())
            .collect();
        assert!(!digests[0].is_empty());
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn bulkhead_chaos_on_one_tenant_leaves_neighbors_untouched() {
        // The golden bulkhead test: arm worker panics and stalls on
        // ward-01 alone; every other ward's digest lines *and*
        // latency statistics must be byte-identical to a run with no
        // chaos anywhere.
        let trace = tenant_trace(4, 5, 2, 64, None);
        let quiet = ShardedGateway::new(shard_config(4, 2)).run(&trace);
        let chaos = ShardChaos::none().with_tenant_plan(
            "ward-01",
            FaultPlan::builder("tenant-chaos", 77)
                .spec(FaultKind::WorkerPanic, 0.6, 1.0)
                .spec(FaultKind::WorkerStall, 0.3, 1.0)
                .build(),
        );
        let noisy = ShardedGateway::new(shard_config(4, 2)).run_with(&trace, &chaos);
        // The victim tenant really did take damage…
        assert_ne!(
            quiet.tenant_digest_lines("ward-01"),
            noisy.tenant_digest_lines("ward-01"),
            "the armed plan must actually bite ward-01"
        );
        // …and no neighbor saw any of it.
        for neighbor in ["ward-00", "ward-02", "ward-03"] {
            assert_eq!(
                quiet.tenant_digest_lines(neighbor),
                noisy.tenant_digest_lines(neighbor),
                "{neighbor} digest lines moved under a neighbor's chaos"
            );
            let (q, n) = match (quiet.tenant(neighbor), noisy.tenant(neighbor)) {
                (Some(q), Some(n)) => (q, n),
                other => panic!("missing stats for {neighbor}: {other:?}"),
            };
            assert_eq!(q.latencies, n.latencies, "{neighbor} latencies moved");
            assert_eq!(q.p99(), n.p99());
        }
    }

    #[test]
    fn a_quarantined_shard_redistributes_without_touching_the_digest() {
        let trace = tenant_trace(6, 4, 3, 64, None);
        let healthy = ShardedGateway::new(shard_config(4, 2)).run(&trace);
        // Lose ward-00's home shard right after the run starts.
        let victim_home = route::home_shard("ward-00", 4);
        let chaos = ShardChaos::none().with_shard_loss_at(victim_home, 1);
        let lossy = ShardedGateway::new(shard_config(4, 2)).run_with(&trace, &chaos);
        assert_eq!(lossy.quarantined_shards(), vec![victim_home]);
        assert!(
            lossy
                .placement
                .iter()
                .map(|p| p.redistributions_in)
                .sum::<u64>()
                > 0,
            "pending work of the lost shard's tenants must re-home"
        );
        assert_eq!(
            healthy.digest(),
            lossy.digest(),
            "placement (even mid-quarantine) must never reach the digest"
        );
    }

    #[test]
    fn idle_shards_steal_deterministically_and_digest_neutrally() {
        // Two tenants over eight shards: at least six shards are
        // idle, and a steal batch of 1 lets them host from tick 0.
        let trace = tenant_trace(2, 6, 1, 64, None);
        let mut config = shard_config(8, 1);
        config.steal_batch = 1;
        let report = ShardedGateway::new(config).run(&trace);
        assert!(report.steals() > 0, "idle shards must steal");
        let reference = ShardedGateway::new(shard_config(1, 1)).run(&trace);
        assert_eq!(report.digest(), reference.digest());
        // And the placement fold itself is deterministic.
        let mut config2 = shard_config(8, 1);
        config2.steal_batch = 1;
        let again = ShardedGateway::new(config2).run(&trace);
        assert_eq!(report.steals(), again.steals());
    }

    #[test]
    fn hotspot_skew_shapes_the_trace_not_the_jobs() {
        let skew = FaultPlan::builder("skew", 0x5EED)
            .spec(FaultKind::TenantHotspot, 0.5, 1.0)
            .build();
        let flat = tenant_trace(6, 3, 2, 64, None);
        let skewed = tenant_trace(6, 3, 2, 64, Some(&skew));
        assert!(
            skewed.len() > flat.len(),
            "a hotspot plan must inflate someone's volume"
        );
        let again = tenant_trace(6, 3, 2, 64, Some(&skew));
        assert_eq!(skewed.len(), again.len());
        for (a, b) in skewed.iter().zip(&again) {
            assert_eq!(
                (a.id, &a.tenant, a.seed, a.arrival_tick),
                (b.id, &b.tenant, b.seed, b.arrival_tick)
            );
        }
    }

    #[test]
    fn an_empty_trace_drains_to_an_empty_report() {
        let report = ShardedGateway::new(shard_config(4, 1)).run(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.drained_tick, 0);
        assert_eq!(report.executed(), 0);
        assert!(report.digest().starts_with("drained_tick=0 "));
    }

    #[test]
    fn from_env_reads_shard_knobs_and_rejects_zero_shards() {
        // Env tests share a process; this is the only test touching
        // BIOS_SHARDS / BIOS_STEAL_BATCH.
        std::env::set_var("BIOS_SHARDS", "0");
        assert_eq!(
            ShardConfig::from_env().shards,
            ShardConfig::default().shards,
            "BIOS_SHARDS=0 must keep the default"
        );
        std::env::set_var("BIOS_SHARDS", "6");
        std::env::set_var("BIOS_STEAL_BATCH", "9");
        let config = ShardConfig::from_env();
        assert_eq!(config.shards, 6);
        assert_eq!(config.steal_batch, 9);
        std::env::set_var("BIOS_SHARDS", "not-a-number");
        std::env::set_var("BIOS_STEAL_BATCH", "0");
        let config = ShardConfig::from_env();
        assert_eq!(config.shards, ShardConfig::default().shards);
        assert_eq!(config.steal_batch, ShardConfig::default().steal_batch);
        std::env::remove_var("BIOS_SHARDS");
        std::env::remove_var("BIOS_STEAL_BATCH");
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bios-shard-{name}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    fn demo_fleet() -> Fleet {
        Fleet::builder("sharded")
            .sensors(catalog::cyp_sensors())
            .seeds([1, 2, 3])
            .build()
    }

    #[test]
    fn sharded_journaled_run_matches_the_monolithic_digest() {
        let dir = scratch_dir("journal");
        let fleet = demo_fleet();
        let sharded = ShardedRuntime::new(&shard_config(4, 2));
        let report = match sharded.run_journaled(&fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("journaled run failed: {e:?}"),
        };
        assert_eq!(report.total_jobs, fleet.len());
        assert_eq!(report.per_shard_jobs.iter().sum::<usize>(), fleet.len());
        assert!(
            report.per_shard_jobs.iter().filter(|&&n| n > 0).count() > 1,
            "partitioning should spread this fleet over shards"
        );
        let monolithic = Runtime::with_workers(2).run(&fleet);
        assert_eq!(report.summaries_digest(), monolithic.summaries_digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_merges_segments_and_tolerates_a_missing_one() {
        let dir = scratch_dir("resume");
        let fleet = demo_fleet();
        let sharded = ShardedRuntime::new(&shard_config(4, 2));
        let first = match sharded.run_journaled(&fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("journaled run failed: {e:?}"),
        };
        // A pure replay resumes everything and executes nothing.
        let replay = match sharded.resume(&fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("replay failed: {e:?}"),
        };
        assert_eq!(replay.executed_jobs, 0);
        assert_eq!(replay.resumed_jobs, fleet.len());
        assert_eq!(replay.summaries_digest(), first.summaries_digest());
        // Delete one populated segment: its shard re-executes fresh,
        // everyone else replays, and the digest is still identical.
        let victim = match first.per_shard_jobs.iter().position(|&n| n > 0) {
            Some(v) => v,
            None => panic!("no populated shard"),
        };
        std::fs::remove_file(ShardedRuntime::segment_path(&dir, victim)).ok();
        let partial = match sharded.resume(&fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("partial resume failed: {e:?}"),
        };
        assert_eq!(partial.executed_jobs, first.per_shard_jobs[victim]);
        assert_eq!(
            partial.resumed_jobs,
            fleet.len() - first.per_shard_jobs[victim]
        );
        assert_eq!(partial.summaries_digest(), first.summaries_digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Walks journal frames (`[u32 len][payload][u64 sum]` after the
    /// 8-byte magic) and returns the byte offset after each complete
    /// frame, starting with the magic boundary itself.
    fn frame_ends(bytes: &[u8]) -> Vec<usize> {
        let mut ends = vec![8usize];
        let mut at = 8usize;
        while at + 4 <= bytes.len() {
            let Some(len_buf) = bytes.get(at..at + 4) else {
                break;
            };
            let Ok(len_arr) = <[u8; 4]>::try_from(len_buf) else {
                break;
            };
            let end = at + 4 + u32::from_le_bytes(len_arr) as usize + 8;
            if end > bytes.len() {
                break;
            }
            at = end;
            ends.push(at);
        }
        ends
    }

    #[test]
    fn mixed_health_segments_resume_to_the_golden_digest() {
        use bios_recover::SimIo;
        // One sealed segment, one torn tail, one ENOSPC-style clean
        // unsealed prefix: resume must recover exactly the journaled
        // jobs, re-execute the rest, and land on the golden digest.
        let fleet = demo_fleet();
        let golden = Runtime::with_workers(2).run(&fleet).summaries_digest();
        let dir = PathBuf::from("/sim/mixed-health");
        let sharded = ShardedRuntime::new(&shard_config(3, 2));
        let io = SimIo::perfect(0xD15C_0BAD);
        let first = match sharded.run_journaled_on(&io, &fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("journaled run failed: {e:?}"),
        };
        assert_eq!(first.summaries_digest(), golden);
        // Rank populated shards by job count: the biggest becomes the
        // ENOSPC casualty (a retired journal is a valid unsealed
        // prefix of complete frames), the runner-up tears mid-frame,
        // everyone else stays sealed.
        let mut populated: Vec<(usize, usize)> = first
            .per_shard_jobs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        populated.sort_by_key(|&(shard, n)| (std::cmp::Reverse(n), shard));
        let (&(prefix_shard, prefix_jobs), &(torn_shard, torn_jobs)) =
            match (populated.first(), populated.get(1)) {
                (Some(a), Some(b)) => (a, b),
                other => panic!("need two populated shards, got {other:?}"),
            };
        assert!(
            populated.len() >= 3,
            "need a third, still-sealed shard: {populated:?}"
        );
        assert!(prefix_jobs >= 2, "prefix shard needs a job to lose");
        assert!(torn_jobs >= 1);
        // ENOSPC aftermath: keep the header frame plus one job record.
        let prefix_path = ShardedRuntime::segment_path(&dir, prefix_shard);
        let bytes = match io.file_bytes(&prefix_path) {
            Some(b) => b,
            None => panic!("missing segment {prefix_path:?}"),
        };
        let ends = frame_ends(&bytes);
        let keep = match ends.get(2) {
            Some(&k) => k as u64,
            None => panic!("segment too short: {ends:?}"),
        };
        if let Err(e) = io.open_truncated(&prefix_path, keep) {
            panic!("truncating prefix segment failed: {e:?}");
        }
        // Torn tail: cut three bytes into the last job frame so both
        // the seal and that record are lost mid-byte.
        let torn_path = ShardedRuntime::segment_path(&dir, torn_shard);
        let tbytes = match io.file_bytes(&torn_path) {
            Some(b) => b,
            None => panic!("missing segment {torn_path:?}"),
        };
        let tends = frame_ends(&tbytes);
        let cut = match tends.len().checked_sub(2).and_then(|i| tends.get(i)) {
            Some(&end_last_job) => (end_last_job - 3) as u64,
            None => panic!("torn segment too short: {tends:?}"),
        };
        if let Err(e) = io.open_truncated(&torn_path, cut) {
            panic!("tearing segment failed: {e:?}");
        }
        // Fresh runtimes resume the mixed-health directory.
        let resumed = match ShardedRuntime::new(&shard_config(3, 2)).resume_on(&io, &fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("mixed-health resume failed: {e:?}"),
        };
        assert_eq!(
            resumed.summaries_digest(),
            golden,
            "mixed-health resume must converge to the golden digest"
        );
        // Exactly the journaled jobs were recovered: the prefix shard
        // lost all but its first record, the torn shard lost one.
        let lost = (prefix_jobs - 1) + 1;
        assert_eq!(resumed.executed_jobs, lost);
        assert_eq!(resumed.resumed_jobs, fleet.len() - lost);
    }

    #[test]
    fn enospc_mid_run_degrades_metered_and_still_resumes_to_golden() {
        use bios_recover::{IoFaultScript, SimIo};
        // A live ENOSPC on a segment append retires that shard's
        // journal (metered via `journal_lost`), the degraded run still
        // produces the golden digest, and a later resume over the
        // half-journaled directory converges to it too. Seeds are
        // scanned deterministically: some hit ENOSPC on `create`,
        // which is the typed-error branch and simply skipped.
        let fleet = demo_fleet();
        let golden = Runtime::with_workers(2).run(&fleet).summaries_digest();
        let mut exercised = false;
        for seed in 0..64u64 {
            let io = SimIo::new(IoFaultScript::healthy(seed).with_rates(0, 30, 0, 0));
            let dir = PathBuf::from(format!("/sim/enospc-{seed}"));
            let sharded = ShardedRuntime::new(&shard_config(3, 2));
            let report = match sharded.run_journaled_on(&io, &fleet, &dir) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let lost: u64 = (0..sharded.shards())
                .filter_map(|i| sharded.shard(i))
                .map(|rt| rt.metrics().journal_lost)
                .sum();
            if lost == 0 {
                continue;
            }
            assert_eq!(
                report.summaries_digest(),
                golden,
                "seed {seed}: a degraded run must still be correct"
            );
            io.set_script(IoFaultScript::healthy(seed));
            let resumed =
                match ShardedRuntime::new(&shard_config(3, 2)).resume_on(&io, &fleet, &dir) {
                    Ok(r) => r,
                    Err(e) => panic!("seed {seed}: resume failed: {e:?}"),
                };
            assert_eq!(
                resumed.summaries_digest(),
                golden,
                "seed {seed}: resume after degradation diverged"
            );
            exercised = true;
            break;
        }
        assert!(exercised, "no seed in 0..64 produced a metered ENOSPC");
    }

    #[test]
    fn quorum_armed_digests_are_identical_across_layouts_while_votes_fire() {
        // The tentpole determinism contract: with silent corruption
        // armed on every tenant and the redundancy screen voting on
        // every completion, the digest AND the quorum totals must be
        // byte-identical at 1/2/8 workers and across shard layouts —
        // and equal to a run with no screen at all.
        let trace = tenant_trace(4, 5, 2, 64, None);
        let plan = FaultPlan::builder("silent-corrupter", 0xC0DE)
            .spec(FaultKind::SilentCorruption, 0.45, 0.8)
            .build();
        let mut chaos = ShardChaos::none().with_quorum(QuorumConfig {
            sampling: 1.0,
            ..QuorumConfig::default()
        });
        for ward in ["ward-00", "ward-01", "ward-02", "ward-03"] {
            chaos = chaos.with_tenant_plan(ward, plan.clone());
        }
        let baseline = ShardedGateway::new(shard_config(1, 1)).run(&trace);
        let mut digests = Vec::new();
        let mut summaries = Vec::new();
        for &(s, w) in &[(1usize, 1usize), (1, 2), (1, 8), (4, 2)] {
            let report = ShardedGateway::new(shard_config(s, w)).run_with(&trace, &chaos);
            let q = match report.quorum {
                Some(q) => q,
                None => panic!("({s}x{w}): armed run must carry a quorum summary"),
            };
            assert!(q.votes > 0, "({s}x{w}): the screen must vote");
            assert!(q.disagreements > 0, "({s}x{w}): the drill must bite");
            assert!(q.injected > 0, "({s}x{w}): corruption must realize");
            assert_eq!(q.caught, q.injected, "({s}x{w}): every corruption caught");
            assert_eq!(q.escaped, 0, "({s}x{w}): nothing may escape the vote");
            digests.push(report.digest());
            summaries.push(q);
        }
        for (d, s) in digests.iter().zip(&summaries) {
            assert_eq!(d, &digests[0], "digest moved across layouts");
            assert_eq!(s, &summaries[0], "quorum totals moved across layouts");
        }
        assert_eq!(
            digests[0],
            baseline.digest(),
            "arming the screen must never move the digest"
        );
    }

    #[test]
    fn silent_corrupters_quarantine_lanes_and_suspect_the_host_shard() {
        // High-rate corruption: offending lanes accumulate strikes and
        // are quarantined, the executing shard collects
        // CorruptionSuspect events until the supervisor pulls it, and
        // the digest still never moves.
        let trace = tenant_trace(2, 12, 2, 64, None);
        let plan = FaultPlan::builder("corrupt-flood", 0xBAD)
            .spec(FaultKind::SilentCorruption, 0.9, 1.0)
            .build();
        let chaos = ShardChaos::none()
            .with_quorum(QuorumConfig {
                sampling: 1.0,
                ..QuorumConfig::default()
            })
            .with_tenant_plan("ward-00", plan.clone())
            .with_tenant_plan("ward-01", plan);
        let report = ShardedGateway::new(shard_config(1, 2)).run_with(&trace, &chaos);
        let q = match report.quorum {
            Some(q) => q,
            None => panic!("armed run must carry a quorum summary"),
        };
        assert!(
            q.quarantined > 0,
            "repeat-offender lanes must be quarantined: {q:?}"
        );
        assert!(q.disagreements >= 3, "the flood must disagree repeatedly");
        assert_eq!(
            report.quarantined_shards(),
            vec![0],
            "the lone executing shard must be pulled after repeated suspicion"
        );
        let quiet = ShardedGateway::new(shard_config(1, 2)).run(&trace);
        assert_eq!(
            quiet.digest(),
            report.digest(),
            "corruption screening (and shard quarantine) must be digest-neutral"
        );
    }

    #[test]
    fn a_bit_flip_in_a_sealed_segment_surfaces_a_checksum_error_on_resume() {
        // End-to-end integrity: flip one bit inside a sealed journal
        // record's payload and the merged resume must refuse with a
        // checksum error — deterministically — instead of merging the
        // corrupt record.
        let dir = scratch_dir("bitflip");
        let fleet = demo_fleet();
        let sharded = ShardedRuntime::new(&shard_config(4, 2));
        let first = match sharded.run_journaled(&fleet, &dir) {
            Ok(r) => r,
            Err(e) => panic!("journaled run failed: {e:?}"),
        };
        let victim = match first.per_shard_jobs.iter().position(|&n| n > 0) {
            Some(v) => v,
            None => panic!("no populated shard"),
        };
        let path = ShardedRuntime::segment_path(&dir, victim);
        let mut bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => panic!("segment unreadable: {e}"),
        };
        // Target the last job record's digest-line payload (well past
        // the header frame, well before nothing — the seal follows).
        let needle = b"seed=";
        let pos = match bytes.windows(needle.len()).rposition(|w| w == needle) {
            Some(p) => p,
            None => panic!("no digest line in segment"),
        };
        bytes[pos + needle.len()] ^= 0x01;
        if let Err(e) = std::fs::write(&path, &bytes) {
            panic!("rewrite failed: {e}");
        }
        for attempt in 0..2 {
            match sharded.resume(&fleet, &dir) {
                Err(JournalError::Corrupt(_)) => {}
                Err(e) => panic!("attempt {attempt}: expected Corrupt, got {e:?}"),
                Ok(_) => panic!("attempt {attempt}: resume merged a bit-flipped record"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_fleet() {
        let dir = scratch_dir("foreign");
        let sharded = ShardedRuntime::new(&shard_config(2, 1));
        if let Err(e) = sharded.run_journaled(&demo_fleet(), &dir) {
            panic!("journaled run failed: {e:?}");
        }
        let other = Fleet::builder("other")
            .sensors(catalog::cyp_sensors())
            .seeds([9, 10, 11])
            .build();
        match sharded.resume(&other, &dir) {
            Err(JournalError::FingerprintMismatch { .. }) => {}
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

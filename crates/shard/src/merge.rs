//! Merging per-tenant session reports into one [`ShardedReport`].
//!
//! The digest contract is the platform's strictest: the merged digest
//! must be **byte-identical at any (shard count × worker count)**,
//! including runs where a shard was quarantined mid-trace and its
//! tenants redistributed. That holds because everything the digest
//! contains is placement-independent by construction:
//!
//! * request lines are [`RequestOutcome::digest_line`]s in global
//!   offer order — job outcomes are pure functions of
//!   `(entry, seed, plan)` and admission is per-tenant, so neither
//!   depends on which shard executed;
//! * tenant latency lines are derived from logical
//!   `done_tick − arrival_tick` spans of those same outcomes;
//! * the footer merges counters that are sums of per-tenant counters.
//!
//! Placement — which shard hosted what, who stole, who was
//! quarantined — is reported in [`ShardedReport::placement`] for
//! humans and benches, and deliberately kept **out** of the digest.

use std::collections::BTreeMap;

use bios_gateway::{Disposition, GatewayCounters, RequestOutcome};
use bios_quorum::QuorumSummary;
use bios_recover::fnv1a;

use crate::supervisor::ShardHealth;

/// Per-tenant logical-latency and outcome statistics, derived purely
/// from the tenant's own request outcomes.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// Requests that executed (at any quality).
    pub executed: u64,
    /// Requests the gateway rejected.
    pub rejected: u64,
    /// Logical latency (`done_tick − arrival_tick`) of every executed
    /// request, sorted ascending.
    pub latencies: Vec<u64>,
}

impl TenantStats {
    /// Nearest-rank quantile over the sorted logical latencies
    /// (0 when the tenant executed nothing). Integer in, integer out:
    /// no float formatting can wobble the digest.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }

    /// Median logical latency in ticks.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.latency_quantile(0.50)
    }

    /// 99th-percentile logical latency in ticks.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.latency_quantile(0.99)
    }

    /// Worst logical latency in ticks.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.latencies.last().copied().unwrap_or(0)
    }

    /// This tenant's line in the sharded digest (no trailing newline).
    #[must_use]
    pub fn digest_line(&self) -> String {
        format!(
            "tenant {} executed={} rejected={} p50={} p99={} max={}",
            self.tenant,
            self.executed,
            self.rejected,
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

/// Where work physically ran — the placement summary. Deterministic
/// (the lockstep loop derives it from logical state only) but
/// *placement-dependent*, so it never enters the digest.
#[derive(Debug, Clone)]
pub struct ShardPlacement {
    /// The shard index.
    pub shard: usize,
    /// Tenants whose home shard this is.
    pub tenants_homed: u64,
    /// Executed outcomes that surfaced while this shard was the
    /// tenant's execution host.
    pub completions: u64,
    /// Tenant-ticks this shard hosted as a work-stealing target.
    pub steals_in: u64,
    /// Tenant-ticks this shard hosted for tenants re-homed off a
    /// quarantined shard.
    pub redistributions_in: u64,
    /// The shard's final health.
    pub health: ShardHealth,
}

/// The merged result of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Every request outcome, in global offer (= trace) order.
    pub outcomes: Vec<RequestOutcome>,
    /// Admission counters summed across every tenant session.
    pub counters: GatewayCounters,
    /// Latest tick any tenant's last in-flight job completed.
    pub drained_tick: u64,
    /// Per-shard placement summary, ascending by shard index.
    pub placement: Vec<ShardPlacement>,
    /// Totals of the redundancy screen when the run armed one
    /// ([`crate::ShardChaos::quorum`]); `None` otherwise. Deliberately
    /// *not* part of [`ShardedReport::digest`]: the vote validates
    /// already-committed values, so arming a screen never moves the
    /// digest — the summary is observability, not payload.
    pub quorum: Option<QuorumSummary>,
}

impl ShardedReport {
    /// Builds the report from merged outcomes and the run's placement
    /// summary. Outcomes must already be in global offer order.
    #[must_use]
    pub fn new(
        outcomes: Vec<RequestOutcome>,
        counters: GatewayCounters,
        drained_tick: u64,
        placement: Vec<ShardPlacement>,
    ) -> ShardedReport {
        ShardedReport {
            outcomes,
            counters,
            drained_tick,
            placement,
            quorum: None,
        }
    }

    /// Per-tenant statistics, ascending by tenant id — pure function
    /// of the outcomes, so identical at any placement.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut by_tenant: BTreeMap<&str, TenantStats> = BTreeMap::new();
        for outcome in &self.outcomes {
            let stats = by_tenant
                .entry(outcome.tenant.as_str())
                .or_insert_with(|| TenantStats {
                    tenant: outcome.tenant.clone(),
                    executed: 0,
                    rejected: 0,
                    latencies: Vec::new(),
                });
            match &outcome.disposition {
                Disposition::Executed { done_tick, .. } => {
                    stats.executed += 1;
                    stats
                        .latencies
                        .push(done_tick.saturating_sub(outcome.arrival_tick));
                }
                Disposition::Rejected(_) => stats.rejected += 1,
            }
        }
        let mut stats: Vec<TenantStats> = by_tenant.into_values().collect();
        for s in &mut stats {
            s.latencies.sort_unstable();
        }
        stats
    }

    /// The statistics of one tenant, if it appears in the trace.
    #[must_use]
    pub fn tenant(&self, tenant: &str) -> Option<TenantStats> {
        self.tenant_stats().into_iter().find(|s| s.tenant == tenant)
    }

    /// The digest lines of one tenant's requests, in offer order —
    /// the unit of the bulkhead invariant: arming chaos on a
    /// *different* tenant must leave these bytes untouched.
    #[must_use]
    pub fn tenant_digest_lines(&self, tenant: &str) -> String {
        let mut out = String::new();
        for outcome in self.outcomes.iter().filter(|o| o.tenant == tenant) {
            out.push_str(&outcome.digest_line());
            out.push('\n');
        }
        out
    }

    /// The canonical sharded digest: every request line in global
    /// offer order, one latency line per tenant (ascending), then the
    /// merged-counters footer. Contains no placement, wall-clock, or
    /// shard-count field, so equal `(config, trace, plans)` produce
    /// byte-equal digests at any (shard count × worker count) — the
    /// `shard_gate` contract.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for outcome in &self.outcomes {
            out.push_str(&outcome.digest_line());
            out.push('\n');
        }
        for stats in self.tenant_stats() {
            out.push_str(&stats.digest_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "drained_tick={} {}\n",
            self.drained_tick, self.counters
        ));
        out
    }

    /// FNV-1a of [`ShardedReport::digest`] — the value the CI gate
    /// compares across shard × worker configurations.
    #[must_use]
    pub fn digest_fnv(&self) -> u64 {
        fnv1a(self.digest().as_bytes())
    }

    /// Total executed outcomes.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.executed()).count() as u64
    }

    /// Tenant-ticks hosted by steal targets, summed across shards.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.placement.iter().map(|p| p.steals_in).sum()
    }

    /// Shards that ended the run quarantined.
    #[must_use]
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.placement
            .iter()
            .filter(|p| matches!(p.health, ShardHealth::Quarantined { .. }))
            .map(|p| p.shard)
            .collect()
    }
}

//! Deterministic tenant → shard routing.
//!
//! A tenant's **home shard** is a pure function of its id and the
//! shard count — FNV-1a of the tenant id modulo N, the same hash the
//! rest of the platform uses for fingerprints — so routing needs no
//! table, no coordination, and no state that could drift between a
//! run and its resume. When a home shard is quarantined, its tenants
//! are re-homed by re-hashing over the ordered list of *healthy*
//! shards ([`redistribute`]): still a pure function of
//! `(tenant, healthy set)`, so every participant computes the same
//! answer without talking to each other.
//!
//! Routing only ever decides *where* a job physically executes. Job
//! outcomes are pure functions of `(entry, seed, plan)` — see
//! `bios_runtime::JobStream::submit_on` — so no routing decision can
//! reach a digest.

use bios_recover::fnv1a;

/// The home shard for `tenant` among `shards` shards: FNV-1a of the
/// tenant id mod N. Pure, stateless, and stable across runs; a
/// degenerate `shards == 0` routes everything to shard 0 rather than
/// dividing by zero.
#[must_use]
pub fn home_shard(tenant: &str, shards: usize) -> usize {
    (fnv1a(tenant.as_bytes()) % shards.max(1) as u64) as usize
}

/// Re-homes a quarantined tenant onto one of the `healthy` shards
/// (ordered ascending, as `ShardSupervisor::healthy_shards` yields
/// them): FNV-1a of the tenant id mod the healthy count, indexing
/// into the healthy list. `None` when no shard is healthy — the
/// caller falls back to the home shard, which is always safe because
/// placement never changes what a job computes.
#[must_use]
pub fn redistribute(tenant: &str, healthy: &[usize]) -> Option<usize> {
    if healthy.is_empty() {
        return None;
    }
    Some(healthy[(fnv1a(tenant.as_bytes()) % healthy.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_shard_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for i in 0..64 {
                let tenant = format!("ward-{i:02}");
                let home = home_shard(&tenant, shards);
                assert_eq!(home, home_shard(&tenant, shards));
                assert!(home < shards);
            }
        }
        assert_eq!(home_shard("anything", 0), 0);
        assert_eq!(home_shard("anything", 1), 0);
    }

    #[test]
    fn enough_tenants_reach_every_shard() {
        let shards = 8;
        let mut hit = vec![false; shards];
        for i in 0..256 {
            hit[home_shard(&format!("ward-{i:03}"), shards)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never homed a tenant");
    }

    #[test]
    fn redistribute_lands_on_a_healthy_shard_only() {
        let healthy = vec![0usize, 2, 5];
        for i in 0..64 {
            let tenant = format!("ward-{i:02}");
            let target = redistribute(&tenant, &healthy).unwrap();
            assert!(healthy.contains(&target));
            assert_eq!(Some(target), redistribute(&tenant, &healthy));
        }
        assert_eq!(redistribute("ward-00", &[]), None);
        assert_eq!(redistribute("ward-00", &[3]), Some(3));
    }
}

//! The shard supervisor: a deterministic health fold that detects
//! wedged or poisoned shards and quarantines them.
//!
//! The supervisor never probes, times, or threads anything — it is a
//! pure fold over [`HealthEvent`]s that the sharded gateway derives
//! from *logical* outcomes (a deadline-killed job, a panicked worker,
//! an armed [`bios_faults::FaultKind::ShardLoss`] realization). Fed
//! the same event sequence it always reaches the same
//! [`ShardHealth`] per shard, so quarantine decisions — and the
//! redistribution they trigger — are as reproducible as everything
//! else in the platform.
//!
//! Three conditions quarantine a shard:
//!
//! * **Deadline-kill storm** — at least
//!   [`SupervisorConfig::storm_threshold`] deadline kills inside a
//!   sliding [`SupervisorConfig::storm_window_ticks`] window: the
//!   signature of a wedged pool (livelocked jobs, stalled bus).
//! * **Respawn exhaustion** — cumulative panic losses reach
//!   [`SupervisorConfig::respawn_budget`]: the pool keeps burning
//!   threads on poisoned work and should stop taking new tenants.
//! * **Shard loss** — the infrastructure fault layer says the shard
//!   is gone ([`HealthEvent::ShardLost`]); quarantine is immediate.
//!
//! Quarantine is terminal for a run: a lost or poisoned shard does
//! not silently rejoin mid-trace, which keeps the host sequence of
//! every tenant deterministic.

use std::collections::VecDeque;

/// Tuning for the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Deadline kills inside the sliding window that quarantine a
    /// shard.
    pub storm_threshold: u32,
    /// Width (in logical ticks) of the deadline-kill storm window.
    pub storm_window_ticks: u64,
    /// Cumulative panic losses a shard may absorb before it is
    /// declared poisoned.
    pub respawn_budget: u32,
    /// Cumulative corruption strikes (a quorum vote this shard lost,
    /// see `bios-quorum`) a shard may absorb before it is declared a
    /// silent corrupter. Strikes never expire: a shard that keeps
    /// producing finite-but-wrong values is defective hardware, not a
    /// transient.
    pub corruption_strikes: u32,
}

impl Default for SupervisorConfig {
    /// Eight deadline kills inside 32 ticks, sixteen panics total, or
    /// three lost quorum votes total.
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            storm_threshold: 8,
            storm_window_ticks: 32,
            respawn_budget: 16,
            corruption_strikes: 3,
        }
    }
}

/// One observed shard-health event, attributed to the shard that was
/// physically executing the work at the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// A job on this shard was reclaimed by the deadline/watchdog
    /// layer at `tick`.
    DeadlineKill {
        /// The executing shard.
        shard: usize,
        /// Logical tick the kill surfaced.
        tick: u64,
    },
    /// A job on this shard panicked (and its worker had to respawn)
    /// at `tick`.
    PanicLoss {
        /// The executing shard.
        shard: usize,
        /// Logical tick the panic surfaced.
        tick: u64,
    },
    /// The infrastructure layer lost the shard outright at `tick`
    /// (see [`bios_faults::FaultPlan::shard_loss_tick`]).
    ShardLost {
        /// The lost shard.
        shard: usize,
        /// Logical tick of the loss.
        tick: u64,
    },
    /// A quorum vote attributed a silently corrupted result to this
    /// shard at `tick` (see `bios-quorum`): the value was finite —
    /// past every NonFinite guard — but disagreed with the redundant
    /// replicas and lost the vote.
    CorruptionSuspect {
        /// The suspected shard.
        shard: usize,
        /// Logical tick the disagreement surfaced.
        tick: u64,
    },
}

/// Why a shard was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Deadline-kill storm: the shard looked wedged.
    DeadlineStorm,
    /// Panic budget exhausted: the shard looked poisoned.
    RespawnExhausted,
    /// The shard was lost at the infrastructure level.
    ShardLost,
    /// The shard exhausted its corruption-strike budget: repeated
    /// quorum votes attributed silently corrupted results to it.
    SilentCorrupter,
}

impl QuarantineReason {
    /// Stable lowercase label for logs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::DeadlineStorm => "deadline-storm",
            QuarantineReason::RespawnExhausted => "respawn-exhausted",
            QuarantineReason::ShardLost => "shard-lost",
            QuarantineReason::SilentCorrupter => "silent-corrupter",
        }
    }
}

/// A shard's current health as the supervisor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Accepting home and stolen work.
    Healthy,
    /// Removed from the routing and stealing sets.
    Quarantined {
        /// Tick the quarantine took effect.
        since_tick: u64,
        /// What tripped it.
        reason: QuarantineReason,
    },
}

/// Per-shard fold state.
#[derive(Debug)]
struct ShardState {
    /// Ticks of recent deadline kills, oldest first, pruned to the
    /// storm window.
    recent_kills: VecDeque<u64>,
    /// Cumulative panic losses.
    panics: u32,
    /// Cumulative corruption strikes (lost quorum votes).
    strikes: u32,
    health: ShardHealth,
}

/// The supervisor itself: one fold state per shard, folded forward by
/// [`ShardSupervisor::observe`].
#[derive(Debug)]
pub struct ShardSupervisor {
    config: SupervisorConfig,
    states: Vec<ShardState>,
}

impl ShardSupervisor {
    /// A supervisor over `shards` healthy shards.
    #[must_use]
    pub fn new(config: SupervisorConfig, shards: usize) -> ShardSupervisor {
        ShardSupervisor {
            config,
            states: (0..shards.max(1))
                .map(|_| ShardState {
                    recent_kills: VecDeque::new(),
                    panics: 0,
                    strikes: 0,
                    health: ShardHealth::Healthy,
                })
                .collect(),
        }
    }

    /// Shards under supervision.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// Folds one event. Events must be fed in the deterministic order
    /// the sharded gateway derives them (tick-ascending); an event for
    /// an already-quarantined shard is a no-op, and an out-of-range
    /// shard index is ignored rather than trusted.
    pub fn observe(&mut self, event: HealthEvent) {
        let (shard, tick) = match event {
            HealthEvent::DeadlineKill { shard, tick }
            | HealthEvent::PanicLoss { shard, tick }
            | HealthEvent::ShardLost { shard, tick }
            | HealthEvent::CorruptionSuspect { shard, tick } => (shard, tick),
        };
        let Some(state) = self.states.get_mut(shard) else {
            return;
        };
        if matches!(state.health, ShardHealth::Quarantined { .. }) {
            return;
        }
        match event {
            HealthEvent::DeadlineKill { .. } => {
                let floor = tick.saturating_sub(self.config.storm_window_ticks);
                while state.recent_kills.front().is_some_and(|&t| t < floor) {
                    state.recent_kills.pop_front();
                }
                state.recent_kills.push_back(tick);
                if state.recent_kills.len() as u32 >= self.config.storm_threshold.max(1) {
                    state.health = ShardHealth::Quarantined {
                        since_tick: tick,
                        reason: QuarantineReason::DeadlineStorm,
                    };
                }
            }
            HealthEvent::PanicLoss { .. } => {
                state.panics += 1;
                if state.panics >= self.config.respawn_budget.max(1) {
                    state.health = ShardHealth::Quarantined {
                        since_tick: tick,
                        reason: QuarantineReason::RespawnExhausted,
                    };
                }
            }
            HealthEvent::ShardLost { .. } => {
                state.health = ShardHealth::Quarantined {
                    since_tick: tick,
                    reason: QuarantineReason::ShardLost,
                };
            }
            HealthEvent::CorruptionSuspect { .. } => {
                state.strikes += 1;
                if state.strikes >= self.config.corruption_strikes.max(1) {
                    state.health = ShardHealth::Quarantined {
                        since_tick: tick,
                        reason: QuarantineReason::SilentCorrupter,
                    };
                }
            }
        }
    }

    /// This shard's health (out-of-range indexes read as quarantined
    /// so nothing routes to them).
    #[must_use]
    pub fn health(&self, shard: usize) -> ShardHealth {
        self.states.get(shard).map_or(
            ShardHealth::Quarantined {
                since_tick: 0,
                reason: QuarantineReason::ShardLost,
            },
            |s| s.health,
        )
    }

    /// Whether this shard is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, shard: usize) -> bool {
        matches!(self.health(shard), ShardHealth::Quarantined { .. })
    }

    /// The healthy shards, ascending — the redistribution domain of
    /// [`crate::route::redistribute`].
    #[must_use]
    pub fn healthy_shards(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.health, ShardHealth::Healthy))
            .map(|(i, _)| i)
            .collect()
    }

    /// Every quarantined shard as `(shard, since_tick, reason)`,
    /// ascending by shard.
    #[must_use]
    pub fn quarantined(&self) -> Vec<(usize, u64, QuarantineReason)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.health {
                ShardHealth::Quarantined { since_tick, reason } => Some((i, since_tick, reason)),
                ShardHealth::Healthy => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            storm_threshold: 3,
            storm_window_ticks: 10,
            respawn_budget: 2,
            corruption_strikes: 2,
        }
    }

    #[test]
    fn a_deadline_storm_inside_the_window_quarantines() {
        let mut sup = ShardSupervisor::new(config(), 4);
        sup.observe(HealthEvent::DeadlineKill { shard: 1, tick: 5 });
        sup.observe(HealthEvent::DeadlineKill { shard: 1, tick: 7 });
        assert!(!sup.is_quarantined(1), "two kills are below threshold");
        sup.observe(HealthEvent::DeadlineKill { shard: 1, tick: 9 });
        assert_eq!(
            sup.health(1),
            ShardHealth::Quarantined {
                since_tick: 9,
                reason: QuarantineReason::DeadlineStorm
            }
        );
        assert_eq!(sup.healthy_shards(), vec![0, 2, 3]);
    }

    #[test]
    fn kills_outside_the_window_slide_off() {
        let mut sup = ShardSupervisor::new(config(), 2);
        sup.observe(HealthEvent::DeadlineKill { shard: 0, tick: 0 });
        sup.observe(HealthEvent::DeadlineKill { shard: 0, tick: 1 });
        // Tick 40 is far past the 10-tick window: both old kills
        // slide off before the new one counts.
        sup.observe(HealthEvent::DeadlineKill { shard: 0, tick: 40 });
        assert!(!sup.is_quarantined(0), "stale kills must not storm");
    }

    #[test]
    fn respawn_exhaustion_quarantines_cumulatively() {
        let mut sup = ShardSupervisor::new(config(), 2);
        sup.observe(HealthEvent::PanicLoss { shard: 0, tick: 3 });
        assert!(!sup.is_quarantined(0));
        // Panics never expire: the budget is cumulative.
        sup.observe(HealthEvent::PanicLoss {
            shard: 0,
            tick: 900,
        });
        assert_eq!(
            sup.health(0),
            ShardHealth::Quarantined {
                since_tick: 900,
                reason: QuarantineReason::RespawnExhausted
            }
        );
    }

    #[test]
    fn corruption_strikes_accumulate_to_quarantine() {
        let mut sup = ShardSupervisor::new(config(), 3);
        sup.observe(HealthEvent::CorruptionSuspect { shard: 1, tick: 4 });
        assert!(!sup.is_quarantined(1), "one strike is below the budget");
        // Strikes never expire, like panics: a corrupter stays guilty.
        sup.observe(HealthEvent::CorruptionSuspect {
            shard: 1,
            tick: 800,
        });
        assert_eq!(
            sup.health(1),
            ShardHealth::Quarantined {
                since_tick: 800,
                reason: QuarantineReason::SilentCorrupter
            }
        );
        assert_eq!(sup.healthy_shards(), vec![0, 2]);
    }

    #[test]
    fn shard_loss_quarantines_immediately_and_is_terminal() {
        let mut sup = ShardSupervisor::new(config(), 3);
        sup.observe(HealthEvent::ShardLost { shard: 2, tick: 11 });
        assert!(sup.is_quarantined(2));
        // Later events cannot overwrite the quarantine record.
        sup.observe(HealthEvent::DeadlineKill { shard: 2, tick: 12 });
        assert_eq!(
            sup.quarantined(),
            vec![(2, 11, QuarantineReason::ShardLost)]
        );
    }

    #[test]
    fn out_of_range_shards_are_ignored_but_read_quarantined() {
        let mut sup = ShardSupervisor::new(config(), 2);
        sup.observe(HealthEvent::ShardLost { shard: 9, tick: 1 });
        assert_eq!(sup.healthy_shards(), vec![0, 1]);
        assert!(sup.is_quarantined(9), "nothing may route off the map");
    }

    #[test]
    fn the_fold_is_deterministic() {
        let events = [
            HealthEvent::DeadlineKill { shard: 0, tick: 1 },
            HealthEvent::PanicLoss { shard: 1, tick: 2 },
            HealthEvent::DeadlineKill { shard: 0, tick: 3 },
            HealthEvent::DeadlineKill { shard: 0, tick: 4 },
            HealthEvent::PanicLoss { shard: 1, tick: 5 },
        ];
        let run = |events: &[HealthEvent]| {
            let mut sup = ShardSupervisor::new(config(), 2);
            for &e in events {
                sup.observe(e);
            }
            (sup.quarantined(), sup.healthy_shards())
        };
        assert_eq!(run(&events), run(&events));
        let (quarantined, healthy) = run(&events);
        assert_eq!(quarantined.len(), 2, "both shards should trip");
        assert!(healthy.is_empty());
    }
}

//! Seeded synthetic patient cohorts.
//!
//! A [`PatientCohort`] expands one `(seed, n)` pair into `n` patients,
//! each carrying a catalog sensor, a physiological concentration
//! model, and two derived seed streams (measurement noise and
//! calibration runs). Every field is a pure function of the cohort
//! seed and the patient index, so cohorts regenerate bit-identically
//! on any machine at any worker count.

use bios_core::catalog::{self, CatalogEntry};
use bios_prng::{Rng, SplitMix64};
use bios_units::Molar;

/// Ticks per simulated day; one tick ≈ 5 minutes of wear.
pub const TICKS_PER_DAY: u64 = 288;

/// The physiological model generating a patient's true analyte
/// concentration over logical ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum Physiology {
    /// Sinusoidal circadian rhythm around a personal baseline —
    /// glucose-style continuous monitoring.
    Circadian {
        /// Personal fasting baseline, mM.
        baseline_milli_molar: f64,
        /// Meal-cycle swing amplitude, mM.
        amplitude_milli_molar: f64,
        /// Rhythm period in ticks (one day).
        period_ticks: u64,
        /// Personal phase offset in ticks.
        phase_ticks: f64,
    },
    /// One-compartment pharmacokinetics under repeated bolus dosing —
    /// therapeutic drug monitoring. Concentration is the closed-form
    /// superposition of all past doses with exponential elimination.
    OneCompartment {
        /// Concentration added by one dose, mM.
        dose_milli_molar: f64,
        /// Ticks between doses.
        interval_ticks: u64,
        /// Per-tick retention factor in (0, 1); elimination is
        /// `C → C · decay` each tick.
        decay_per_tick: f64,
    },
}

impl Physiology {
    /// The true concentration at `tick`.
    #[must_use]
    pub fn concentration_at(&self, tick: u64) -> Molar {
        match *self {
            Physiology::Circadian {
                baseline_milli_molar,
                amplitude_milli_molar,
                period_ticks,
                phase_ticks,
            } => {
                let period = period_ticks.max(1) as f64;
                let angle = std::f64::consts::TAU * ((tick as f64 + phase_ticks) / period);
                let c = baseline_milli_molar + amplitude_milli_molar * angle.sin();
                Molar::from_milli_molar(c.max(0.0))
            }
            Physiology::OneCompartment {
                dose_milli_molar,
                interval_ticks,
                decay_per_tick,
            } => {
                let tau = interval_ticks.max(1);
                let d = decay_per_tick.clamp(1e-6, 1.0 - 1e-9);
                // Doses at 0, τ, 2τ, …, mτ (m = ⌊t/τ⌋): the geometric
                // series Σ dose·d^(t−kτ) has the closed form below, so
                // evaluation is O(1) at any tick.
                let m = tick / tau;
                let d_tau = d.powf(tau as f64);
                let series = (1.0 - d_tau.powf(m as f64 + 1.0)) / (1.0 - d_tau);
                let c = dose_milli_molar * d.powf((tick - m * tau) as f64) * series;
                Molar::from_milli_molar(c.max(0.0))
            }
        }
    }
}

/// One synthetic patient: a worn sensor plus the seeded streams that
/// make their longitudinal trace reproducible.
#[derive(Debug, Clone)]
pub struct Patient {
    /// Stable id, `p000000`-style, unique within the cohort.
    pub id: String,
    /// The catalog sensor this patient wears.
    pub entry: CatalogEntry,
    /// The model generating the patient's true concentration.
    pub physiology: Physiology,
    /// Seed stream for per-tick measurement noise.
    pub noise_seed: u64,
    /// Seed stream for calibration runs (bootstrap and every
    /// recalibration epoch derive from it).
    pub cal_seed: u64,
}

/// A generated cohort of synthetic patients.
#[derive(Debug, Clone)]
pub struct PatientCohort {
    patients: Vec<Patient>,
}

impl PatientCohort {
    /// Generates `n` patients from `seed`. Three of every four wear
    /// the glucose sensor under a circadian rhythm; the fourth wears a
    /// multi-panel drug sensor under repeated-dose pharmacokinetics.
    #[must_use]
    pub fn generate(seed: u64, n: usize) -> PatientCohort {
        let panel = catalog::multi_panel_sensors();
        let patients = (0..n)
            .map(|i| {
                let base = SplitMix64::new(seed).derive(i as u64);
                let mut rng = Rng::seed_from_u64(base);
                let noise_seed = SplitMix64::new(base).derive(1);
                let cal_seed = SplitMix64::new(base).derive(2);
                let (entry, physiology) = if i % 4 == 3 && !panel.is_empty() {
                    let entry = panel[(i / 4) % panel.len()].clone();
                    let high = entry.sweep().high().as_milli_molar();
                    // Half-life 3–5 hours of 5-minute ticks; dose sized
                    // so the steady-state peak sits inside the sweep.
                    let half_life = rng.uniform_in(36.0, 60.0);
                    let decay = 0.5_f64.powf(1.0 / half_life);
                    let tau = TICKS_PER_DAY / 3;
                    let peak_fraction = rng.uniform_in(0.5, 0.8);
                    let dose = peak_fraction * high * (1.0 - decay.powf(tau as f64));
                    (
                        entry,
                        Physiology::OneCompartment {
                            dose_milli_molar: dose,
                            interval_ticks: tau,
                            decay_per_tick: decay,
                        },
                    )
                } else {
                    (
                        catalog::our_glucose_sensor(),
                        Physiology::Circadian {
                            baseline_milli_molar: rng.uniform_in(0.45, 0.55),
                            amplitude_milli_molar: rng.uniform_in(0.15, 0.30),
                            period_ticks: TICKS_PER_DAY,
                            phase_ticks: rng.uniform_in(0.0, TICKS_PER_DAY as f64),
                        },
                    )
                };
                Patient {
                    id: format!("p{i:06}"),
                    entry,
                    physiology,
                    noise_seed,
                    cal_seed,
                }
            })
            .collect();
        PatientCohort { patients }
    }

    /// The generated patients, in index order.
    #[must_use]
    pub fn patients(&self) -> &[Patient] {
        &self.patients
    }

    /// Patients in the cohort.
    #[must_use]
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// Whether the cohort is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohorts_regenerate_bit_identically() {
        let a = PatientCohort::generate(42, 16);
        let b = PatientCohort::generate(42, 16);
        for (x, y) in a.patients().iter().zip(b.patients()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.entry.id(), y.entry.id());
            assert_eq!(x.noise_seed, y.noise_seed);
            assert_eq!(x.cal_seed, y.cal_seed);
            assert_eq!(x.physiology, y.physiology);
        }
    }

    #[test]
    fn cohorts_mix_glucose_and_drug_patients() {
        let cohort = PatientCohort::generate(7, 16);
        let drug = cohort
            .patients()
            .iter()
            .filter(|p| matches!(p.physiology, Physiology::OneCompartment { .. }))
            .count();
        assert_eq!(drug, 4, "every fourth patient is a drug patient");
        assert!(cohort
            .patients()
            .iter()
            .step_by(4)
            .all(|p| p.entry.id() == "glucose/ours"));
    }

    #[test]
    fn circadian_truth_stays_inside_the_calibrated_sweep() {
        let cohort = PatientCohort::generate(3, 8);
        for p in cohort.patients() {
            let high = p.entry.sweep().high().as_milli_molar();
            for tick in 0..TICKS_PER_DAY {
                let c = p.physiology.concentration_at(tick).as_milli_molar();
                assert!(c >= 0.0, "{}: negative concentration at {tick}", p.id);
                assert!(
                    c <= high * 1.05,
                    "{}: {c} mM escapes the sweep high {high} at {tick}",
                    p.id
                );
            }
        }
    }

    #[test]
    fn one_compartment_accumulates_to_a_bounded_steady_state() {
        let phys = Physiology::OneCompartment {
            dose_milli_molar: 0.02,
            interval_ticks: 96,
            decay_per_tick: 0.99,
        };
        let first_peak = phys.concentration_at(0).as_milli_molar();
        let late_peak = phys.concentration_at(96 * 10).as_milli_molar();
        let later_peak = phys.concentration_at(96 * 20).as_milli_molar();
        assert!(late_peak > first_peak, "doses accumulate");
        assert!(
            (later_peak - late_peak).abs() < 1e-6,
            "steady state reached"
        );
        let trough = phys.concentration_at(96 * 10 + 95).as_milli_molar();
        assert!(trough < late_peak, "elimination between doses");
    }
}

//! The longitudinal stream engine: per-tick patient simulation, online
//! drift monitoring, and deterministic drift-triggered re-calibration
//! through the gateway's admission path.
//!
//! Each tick, every monitored patient produces one reading from their
//! true physiology, the active aging profile, and a seeded noise draw.
//! The standardized residual against the patient's active calibration
//! epoch feeds their [`DriftMonitor`]; a trip enqueues a
//! [`Priority::Recalibration`]-class request (full-resolution sweep +
//! figure-of-merit re-extraction) through the normal
//! admission/breaker path, and the completed job swaps the patient's
//! epoch. Everything is a pure function of `(config, cohort seed,
//! tick)` — see `StreamReport::digest`.

use std::collections::BTreeMap;

use bios_analytics::DriftMonitor;
use bios_core::catalog::CalibrationOutcome;
use bios_faults::{AgingProfile, FaultKind, FaultPlan};
use bios_gateway::{
    Disposition, Gateway, GatewayCounters, Priority, Quality, Request, RequestOutcome,
};
use bios_prng::{Rng, SplitMix64};
use bios_runtime::Fleet;

use crate::cohort::PatientCohort;
use crate::epoch::{CalibrationEpoch, PatientState};

/// Stream construction options. Everything is logical ticks and seeds;
/// the engine has no wall-clock inputs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Synthetic patients in the cohort.
    pub patients: usize,
    /// Ticks to stream (one tick ≈ 5 minutes of wear).
    pub horizon_ticks: u64,
    /// Seed the cohort, noise, and aging streams derive from.
    pub cohort_seed: u64,
    /// Rolling window of the per-patient drift monitor.
    pub monitor_window: usize,
    /// Trip threshold on the window-mean standardized residual.
    pub monitor_threshold: f64,
    /// Deadline budget (ticks) each recalibration request carries.
    pub recal_deadline_ticks: u64,
    /// Recalibration requests allowed per patient over the horizon.
    pub max_recalibrations: u32,
    /// Ticks a patient waits after a failed or rejected recalibration
    /// before re-requesting.
    pub retry_backoff_ticks: u64,
    /// The sensor-aging plan; its `FilmDenaturation` spec decides who
    /// ages, when, and how fast (see [`FaultPlan::aging_profile`]).
    pub aging: FaultPlan,
    /// Tenant id stamped on every recalibration request the engine
    /// offers to the gateway. The default (`"stream"`) preserves the
    /// historical digests; a sharded deployment sets one tenant per
    /// stream so `bios-shard` can home and bulkhead it.
    pub tenant: String,
}

impl StreamConfig {
    /// A config for `patients` over `horizon_ticks` from `seed`: window
    /// 12 / threshold 4 monitors, 64-tick recalibration deadlines, at
    /// most 4 recalibrations per patient with 16-tick retry backoff,
    /// and an aging plan denaturating ~35 % of films at intensity 0.8.
    #[must_use]
    pub fn new(patients: usize, horizon_ticks: u64, seed: u64) -> StreamConfig {
        StreamConfig {
            patients,
            horizon_ticks,
            cohort_seed: seed,
            monitor_window: 12,
            monitor_threshold: 4.0,
            recal_deadline_ticks: 64,
            max_recalibrations: 4,
            retry_backoff_ticks: 16,
            aging: FaultPlan::builder("stream-aging", seed)
                .spec(FaultKind::FilmDenaturation, 0.35, 0.8)
                .build(),
            tenant: "stream".to_string(),
        }
    }

    /// Overrides the tenant id carried by recalibration requests.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> StreamConfig {
        self.tenant = tenant.to_string();
        self
    }

    /// Overrides the aging plan.
    #[must_use]
    pub fn with_aging(mut self, aging: FaultPlan) -> StreamConfig {
        self.aging = aging;
        self
    }

    /// Overrides the drift-monitor window and threshold.
    #[must_use]
    pub fn with_monitor(mut self, window: usize, threshold: f64) -> StreamConfig {
        self.monitor_window = window;
        self.monitor_threshold = threshold;
        self
    }

    /// Overrides the per-patient recalibration cap.
    #[must_use]
    pub fn with_max_recalibrations(mut self, max: u32) -> StreamConfig {
        self.max_recalibrations = max;
        self
    }

    /// Overrides the post-failure retry backoff.
    #[must_use]
    pub fn with_retry_backoff_ticks(mut self, ticks: u64) -> StreamConfig {
        self.retry_backoff_ticks = ticks;
        self
    }
}

/// Everything one stream run produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Patients in the cohort.
    pub patients: usize,
    /// Ticks streamed.
    pub horizon_ticks: u64,
    /// Patients whose bootstrap calibration failed (unmonitored).
    pub bootstrap_failed: u64,
    /// Monitored patients whose aging profile actually degrades the
    /// film inside the horizon.
    pub drift_injected: u64,
    /// Injected drifts the monitors caught (first detections).
    pub drift_detected: u64,
    /// Monitor trips with no injected drift behind them.
    pub false_trips: u64,
    /// Recalibration requests offered to the gateway.
    pub recal_enqueued: u64,
    /// Recalibration jobs that executed and returned a usable epoch.
    pub recal_completed: u64,
    /// Recalibration jobs that executed but failed (or produced an
    /// unusable gain).
    pub recal_failed: u64,
    /// Recalibration requests the gateway rejected.
    pub recal_rejected: u64,
    /// Recalibrations executed at degraded quality — must stay 0; the
    /// recalibration class is never browned out.
    pub recal_degraded: u64,
    /// Calibration epochs swapped in during the horizon.
    pub epoch_swaps: u64,
    /// Detection latency in ticks (trip tick − aging onset tick), one
    /// entry per first detection.
    pub detection_latencies: Vec<u64>,
    /// Mean absolute relative deviation of ĉ vs true c across every
    /// reading of every monitored patient.
    pub mean_mard: f64,
    /// The gateway's admission counters for the recalibration traffic.
    pub gateway: GatewayCounters,
    /// Tick the last in-flight recalibration completed.
    pub drained_tick: u64,
    /// Deterministic event log (bootstrap failures, detections,
    /// enqueues, swaps, failures), in occurrence order.
    pub events: Vec<String>,
}

impl StreamReport {
    /// Mean detection latency in ticks (0 when nothing was detected).
    #[must_use]
    pub fn mean_detection_latency(&self) -> f64 {
        if self.detection_latencies.is_empty() {
            0.0
        } else {
            self.detection_latencies.iter().sum::<u64>() as f64
                / self.detection_latencies.len() as f64
        }
    }

    /// Largest detection latency in ticks.
    #[must_use]
    pub fn max_detection_latency(&self) -> u64 {
        self.detection_latencies.iter().copied().max().unwrap_or(0)
    }

    /// The canonical stream digest: every event line in occurrence
    /// order, then one footer with the counters. No wall-clock fields,
    /// so equal configurations produce byte-equal digests at any
    /// worker count.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(event);
            out.push('\n');
        }
        out.push_str(&format!(
            "patients={} horizon={} boot_failed={} injected={} detected={} false_trips={} \
             enqueued={} completed={} failed={} rejected={} degraded={} swaps={} \
             mard={:.6} latency_mean={:.3} latency_max={} drained_tick={} {}\n",
            self.patients,
            self.horizon_ticks,
            self.bootstrap_failed,
            self.drift_injected,
            self.drift_detected,
            self.false_trips,
            self.recal_enqueued,
            self.recal_completed,
            self.recal_failed,
            self.recal_rejected,
            self.recal_degraded,
            self.epoch_swaps,
            self.mean_mard,
            self.mean_detection_latency(),
            self.max_detection_latency(),
            self.drained_tick,
            self.gateway,
        ));
        out
    }
}

/// Whole-electrode gain of a calibration outcome, µA per mM; ≤ 0 means
/// the outcome is unusable as an epoch.
fn epoch_gain(outcome: &CalibrationOutcome) -> f64 {
    outcome
        .summary
        .sensitivity
        .as_micro_amps_per_milli_molar_square_cm()
        * outcome.curve.electrode_area().as_square_cm()
}

/// The stream engine: a cohort in front of a gateway.
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    gateway: Gateway,
}

impl StreamEngine {
    /// An engine streaming `config`'s cohort through `gateway`.
    #[must_use]
    pub fn new(config: StreamConfig, gateway: Gateway) -> StreamEngine {
        StreamEngine { config, gateway }
    }

    /// The stream configuration.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Runs the stream to its horizon, drains outstanding
    /// recalibrations, and reports.
    #[must_use]
    pub fn run(&self) -> StreamReport {
        let cfg = &self.config;
        let cohort = PatientCohort::generate(cfg.cohort_seed, cfg.patients);
        let mut events: Vec<String> = Vec::new();

        // Phase A — bootstrap: calibrate every patient's sensor once,
        // as a plain batch fleet (epoch 0 predates admission control).
        let mut builder = Fleet::builder("stream-bootstrap");
        for p in cohort.patients() {
            builder = builder.job(p.entry.clone(), p.cal_seed);
        }
        let boot = self.gateway.runtime().run(&builder.build());
        let mut states: Vec<PatientState> = Vec::with_capacity(cohort.len());
        let mut boot_gain: Vec<f64> = Vec::with_capacity(cohort.len());
        let mut sigma: Vec<f64> = Vec::with_capacity(cohort.len());
        let mut bootstrap_failed = 0u64;
        for (p, result) in cohort.patients().iter().zip(&boot.results) {
            let mut state =
                PatientState::new(DriftMonitor::new(cfg.monitor_window, cfg.monitor_threshold));
            let gain = match &result.outcome {
                Ok(outcome) => epoch_gain(outcome),
                Err(_) => 0.0,
            };
            if gain > 0.0 {
                state.epoch = Some(CalibrationEpoch {
                    index: 0,
                    calibrated_tick: 0,
                    sensitivity_micro_amps_per_milli_molar: gain,
                });
            } else {
                bootstrap_failed += 1;
                events.push(format!("boot {} failed", p.id));
            }
            boot_gain.push(gain);
            sigma.push(p.entry.readout_noise().as_micro_amps());
            states.push(state);
        }

        // Phase B — arm the aging plans. A profile is "injected" drift
        // only if the patient is monitored and degradation starts
        // inside the horizon.
        let profiles: Vec<AgingProfile> = cohort
            .patients()
            .iter()
            .map(|p| cfg.aging.aging_profile(&p.id, cfg.horizon_ticks))
            .collect();
        let drift_injected = profiles
            .iter()
            .zip(&states)
            .filter(|(prof, state)| {
                state.epoch.is_some()
                    && prof.ages()
                    && prof.onset_tick.is_some_and(|t| t < cfg.horizon_ticks)
            })
            .count() as u64;

        // Phase C — the tick loop.
        let mut session = self.gateway.session();
        let mut rid_map: BTreeMap<u64, usize> = BTreeMap::new();
        let mut next_rid = 0u64;
        let mut drift_detected = 0u64;
        let mut false_trips = 0u64;
        let mut recal_enqueued = 0u64;
        let mut recal_completed = 0u64;
        let mut recal_failed = 0u64;
        let mut recal_rejected = 0u64;
        let mut recal_degraded = 0u64;
        let mut epoch_swaps = 0u64;
        let mut latencies: Vec<u64> = Vec::new();
        for tick in 0..cfg.horizon_ticks {
            // C1 — recalibration outcomes whose logical tick has come.
            for outcome in session.advance_to(tick) {
                let Some(&pi) = rid_map.get(&outcome.id) else {
                    continue;
                };
                self.settle(
                    &outcome,
                    pi,
                    &cohort,
                    &mut states[pi],
                    tick,
                    &mut events,
                    &mut recal_completed,
                    &mut recal_failed,
                    &mut recal_rejected,
                    &mut recal_degraded,
                    &mut epoch_swaps,
                    true,
                );
            }
            // C2 — one reading per monitored patient, in index order.
            for (pi, p) in cohort.patients().iter().enumerate() {
                let Some(epoch) = states[pi].epoch else {
                    continue;
                };
                let activity = profiles[pi].activity_at(tick);
                let c = p.physiology.concentration_at(tick).as_milli_molar();
                let i_true = activity * boot_gain[pi] * c;
                let noise =
                    Rng::seed_from_u64(SplitMix64::new(p.noise_seed).derive(tick)).gaussian();
                let i_obs = i_true + sigma[pi] * noise;
                let s_epoch = epoch.sensitivity_micro_amps_per_milli_molar;
                let state = &mut states[pi];
                if c > 1e-9 {
                    let c_hat = i_obs / s_epoch;
                    state.abs_rel_err_sum += (c_hat - c).abs() / c;
                    state.readings += 1;
                }
                let z = (i_obs - s_epoch * c) / sigma[pi];
                let _ = state.monitor.observe(z);
                let may_request = state.monitor.tripped()
                    && state.inflight.is_none()
                    && state.recal_attempts < cfg.max_recalibrations
                    && tick >= state.next_eligible_tick;
                if !may_request {
                    continue;
                }
                if state.detected_tick.is_none() {
                    match profiles[pi].onset_tick {
                        Some(onset) if onset <= tick => {
                            drift_detected += 1;
                            latencies.push(tick - onset);
                            state.detected_tick = Some(tick);
                            events.push(format!("detect {} t{tick} lat={}", p.id, tick - onset));
                        }
                        _ => {
                            false_trips += 1;
                            events.push(format!("falsetrip {} t{tick}", p.id));
                        }
                    }
                }
                let rid = next_rid;
                next_rid += 1;
                // The recal job sweeps the sensor in its *current* aged
                // state; rounding the activity keeps the entry's
                // protocol fingerprint stable across re-renders.
                let aged = p
                    .entry
                    .clone()
                    .with_film_activity((activity * 1e6).round() / 1e6);
                let seed = SplitMix64::new(p.cal_seed).derive(u64::from(epoch.index) + 1);
                session.offer(
                    Request::new(
                        rid,
                        &cfg.tenant,
                        aged,
                        seed,
                        tick + 1,
                        cfg.recal_deadline_ticks,
                    )
                    .with_priority(Priority::Recalibration),
                );
                rid_map.insert(rid, pi);
                state.inflight = Some(rid);
                state.recal_attempts += 1;
                recal_enqueued += 1;
                events.push(format!("recal {} rid={rid} t{tick}", p.id));
            }
        }

        // Phase D — drain stragglers still in flight past the horizon:
        // they count, but the stream is over so no epoch swaps.
        let gate_report = session.finish();
        for outcome in &gate_report.outcomes {
            let Some(&pi) = rid_map.get(&outcome.id) else {
                continue;
            };
            if states[pi].inflight != Some(outcome.id) {
                continue; // already settled inside the horizon
            }
            self.settle(
                outcome,
                pi,
                &cohort,
                &mut states[pi],
                cfg.horizon_ticks,
                &mut events,
                &mut recal_completed,
                &mut recal_failed,
                &mut recal_rejected,
                &mut recal_degraded,
                &mut epoch_swaps,
                false,
            );
        }

        let (err_sum, readings) = states.iter().fold((0.0f64, 0u64), |(e, n), s| {
            (e + s.abs_rel_err_sum, n + s.readings)
        });
        StreamReport {
            patients: cohort.len(),
            horizon_ticks: cfg.horizon_ticks,
            bootstrap_failed,
            drift_injected,
            drift_detected,
            false_trips,
            recal_enqueued,
            recal_completed,
            recal_failed,
            recal_rejected,
            recal_degraded,
            epoch_swaps,
            detection_latencies: latencies,
            mean_mard: if readings == 0 {
                0.0
            } else {
                err_sum / readings as f64
            },
            gateway: gate_report.counters,
            drained_tick: gate_report.drained_tick,
            events,
        }
    }

    /// Applies one terminal recalibration outcome to its patient:
    /// completed jobs swap the epoch (when `swap` — i.e. inside the
    /// horizon — and the gain is usable), failures and rejections back
    /// off and re-arm the monitor so persistent drift re-trips.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        outcome: &RequestOutcome,
        pi: usize,
        cohort: &PatientCohort,
        state: &mut PatientState,
        tick: u64,
        events: &mut Vec<String>,
        recal_completed: &mut u64,
        recal_failed: &mut u64,
        recal_rejected: &mut u64,
        recal_degraded: &mut u64,
        epoch_swaps: &mut u64,
        swap: bool,
    ) {
        let id = &cohort.patients()[pi].id;
        let backoff = self.config.retry_backoff_ticks;
        match &outcome.disposition {
            Disposition::Executed {
                quality,
                done_tick,
                result,
                ..
            } => {
                if matches!(quality, Quality::Degraded) {
                    *recal_degraded += 1;
                }
                let gain = match &result.outcome {
                    Ok(oc) => epoch_gain(oc),
                    Err(_) => 0.0,
                };
                if gain > 0.0 {
                    *recal_completed += 1;
                    if swap {
                        let index = state.epoch.map_or(0, |e| e.index) + 1;
                        state.swap_epoch(CalibrationEpoch {
                            index,
                            calibrated_tick: *done_tick,
                            sensitivity_micro_amps_per_milli_molar: gain,
                        });
                        *epoch_swaps += 1;
                        events.push(format!("swap {id} e{index} t{done_tick}"));
                    } else {
                        state.inflight = None;
                    }
                } else {
                    *recal_failed += 1;
                    state.inflight = None;
                    state.next_eligible_tick = tick + backoff;
                    state.monitor.rearm();
                    events.push(format!("recalfail {id} t{tick}"));
                }
            }
            Disposition::Rejected(reason) => {
                *recal_rejected += 1;
                state.inflight = None;
                state.next_eligible_tick = tick + backoff;
                state.monitor.rearm();
                events.push(format!("recalreject {id} t{tick} {reason}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_gateway::GatewayConfig;
    use bios_runtime::{Runtime, RuntimeConfig};

    fn engine(config: StreamConfig, workers: usize) -> StreamEngine {
        let runtime = Runtime::new(RuntimeConfig {
            workers,
            ..RuntimeConfig::default()
        });
        StreamEngine::new(config, Gateway::new(GatewayConfig::default(), runtime))
    }

    #[test]
    fn tenant_override_is_digest_neutral() {
        // The tenant id only decides where a sharded deployment homes
        // the stream's recalibrations; it must never reach outcomes.
        let a = engine(StreamConfig::new(6, 96, 11), 2).run();
        let b = engine(StreamConfig::new(6, 96, 11).with_tenant("ward-07"), 2).run();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn aggressive_aging_is_detected_and_recalibrated() {
        let seed = 11;
        let aging = FaultPlan::builder("stream-aging", seed)
            .spec(FaultKind::FilmDenaturation, 1.0, 1.0)
            .build();
        let report = engine(StreamConfig::new(12, 96, seed).with_aging(aging), 2).run();
        assert_eq!(report.bootstrap_failed, 0);
        assert!(report.drift_injected >= 8, "p=1.0 ages nearly everyone");
        assert!(
            report.drift_detected >= report.drift_injected / 2,
            "monitors catch injected drift: {} of {}",
            report.drift_detected,
            report.drift_injected
        );
        assert_eq!(report.false_trips, 0, "no trips without injected drift");
        assert!(report.epoch_swaps >= 1, "completed recals swap epochs");
        assert_eq!(report.recal_degraded, 0, "recals never brown out");
        assert!(
            report
                .detection_latencies
                .iter()
                .all(|&l| (1..96).contains(&l)),
            "latencies are positive and inside the horizon: {:?}",
            report.detection_latencies
        );
    }

    #[test]
    fn a_healthy_cohort_never_trips_or_recalibrates() {
        let seed = 5;
        let healthy = FaultPlan::builder("stream-aging", seed)
            .spec(FaultKind::FilmDenaturation, 0.0, 1.0)
            .build();
        let report = engine(StreamConfig::new(10, 96, seed).with_aging(healthy), 2).run();
        assert_eq!(report.drift_injected, 0);
        assert_eq!(report.drift_detected, 0);
        assert_eq!(report.false_trips, 0);
        assert_eq!(report.recal_enqueued, 0);
        assert_eq!(report.epoch_swaps, 0);
        assert!(
            report.mean_mard < 0.1,
            "healthy tracking error stays small: {}",
            report.mean_mard
        );
    }

    #[test]
    fn recalibration_restores_tracking_accuracy() {
        // Same aged cohort, with and without recalibration. The run
        // that swaps epochs must track concentration better.
        let seed = 23;
        let aging = || {
            FaultPlan::builder("stream-aging", seed)
                .spec(FaultKind::FilmDenaturation, 1.0, 1.0)
                .build()
        };
        let with = engine(StreamConfig::new(8, 144, seed).with_aging(aging()), 2).run();
        let without = engine(
            StreamConfig::new(8, 144, seed)
                .with_aging(aging())
                .with_max_recalibrations(0),
            2,
        )
        .run();
        assert!(with.epoch_swaps >= 1);
        assert_eq!(without.epoch_swaps, 0);
        assert!(
            with.mean_mard < without.mean_mard,
            "recalibrated {} vs stale {}",
            with.mean_mard,
            without.mean_mard
        );
    }
}

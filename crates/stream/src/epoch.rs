//! Per-patient calibration epochs and streaming state.
//!
//! A patient's current is converted to concentration by whichever
//! *calibration epoch* is active. Epoch 0 comes from the bootstrap
//! fleet; each drift-triggered recalibration that completes swaps in
//! the next epoch at a known tick. The swap is the only mutation, so
//! every reading is attributable to exactly one `(epoch, tick)` pair —
//! the determinism argument in DESIGN.md §13 leans on this.

use bios_analytics::DriftMonitor;

/// One calibration epoch: the gain the stream uses to invert currents
/// into concentrations from `calibrated_tick` onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationEpoch {
    /// 0 for bootstrap, +1 per completed recalibration.
    pub index: u32,
    /// Logical tick the epoch became active.
    pub calibrated_tick: u64,
    /// Whole-electrode sensitivity, µA per mM.
    pub sensitivity_micro_amps_per_milli_molar: f64,
}

/// Everything the stream engine tracks per patient.
#[derive(Debug)]
pub struct PatientState {
    /// Online drift monitor over standardized residuals.
    pub monitor: DriftMonitor,
    /// Active calibration epoch; `None` when bootstrap failed and the
    /// patient is unmonitored.
    pub epoch: Option<CalibrationEpoch>,
    /// Recalibrations requested so far (caps retries).
    pub recal_attempts: u32,
    /// Request id of the in-flight recalibration, if any.
    pub inflight: Option<u64>,
    /// Earliest tick the next recalibration may be requested (backoff
    /// after failures/rejections).
    pub next_eligible_tick: u64,
    /// First tick the monitor tripped, if it has.
    pub detected_tick: Option<u64>,
    /// Σ |ĉ − c| / c over readings with c > 0 (MARD numerator).
    pub abs_rel_err_sum: f64,
    /// Readings accumulated into the MARD (denominator).
    pub readings: u64,
}

impl PatientState {
    /// Fresh state around `monitor`, with no epoch yet.
    #[must_use]
    pub fn new(monitor: DriftMonitor) -> PatientState {
        PatientState {
            monitor,
            epoch: None,
            recal_attempts: 0,
            inflight: None,
            next_eligible_tick: 0,
            detected_tick: None,
            abs_rel_err_sum: 0.0,
            readings: 0,
        }
    }

    /// Installs a new epoch and re-baselines the drift monitor against
    /// it. The monitor must re-learn its reference level because the
    /// new gain changes what a "zero residual" looks like.
    pub fn swap_epoch(&mut self, epoch: CalibrationEpoch) {
        self.epoch = Some(epoch);
        self.monitor.rebaseline();
        self.inflight = None;
    }

    /// The patient's mean absolute relative deviation so far (0 when
    /// no readings have accumulated).
    #[must_use]
    pub fn mard(&self) -> f64 {
        if self.readings == 0 {
            0.0
        } else {
            self.abs_rel_err_sum / self.readings as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_epoch_rebaselines_and_clears_inflight() {
        let mut state = PatientState::new(DriftMonitor::new(4, 3.0));
        state.inflight = Some(9);
        for _ in 0..4 {
            state.monitor.observe(0.0);
        }
        for _ in 0..8 {
            state.monitor.observe(10.0);
        }
        assert!(state.monitor.tripped());
        state.swap_epoch(CalibrationEpoch {
            index: 1,
            calibrated_tick: 40,
            sensitivity_micro_amps_per_milli_molar: 5.0,
        });
        assert!(!state.monitor.tripped(), "rebaseline clears the trip");
        assert!(!state.monitor.warmed(), "baseline re-learns");
        assert_eq!(state.inflight, None);
        assert_eq!(state.epoch.map(|e| e.index), Some(1));
    }

    #[test]
    fn mard_averages_relative_errors() {
        let mut state = PatientState::new(DriftMonitor::new(4, 3.0));
        state.abs_rel_err_sum = 0.3;
        state.readings = 3;
        assert!((state.mard() - 0.1).abs() < 1e-12);
        assert!(PatientState::new(DriftMonitor::new(4, 3.0)).mard().abs() < 1e-12);
    }
}

//! # bios-stream — the longitudinal patient-stream engine
//!
//! Everything below the gateway calibrates a sensor *once*. This crate
//! closes the loop the paper's personalized-medicine pitch actually
//! needs: a sensor lives on a patient for weeks, its enzyme film ages,
//! its calibration silently goes stale, and somebody has to notice and
//! re-calibrate — without ever taking the fleet down.
//!
//! Three pieces, all `std`-only and deterministic:
//!
//! * [`cohort`] — seeded synthetic patients: circadian glucose or
//!   one-compartment drug pharmacokinetics, one catalog sensor each,
//!   derived noise/calibration seed streams.
//! * [`epoch`] — the per-patient calibration state: which calibration
//!   *epoch* converts current to concentration, plus the online
//!   [`bios_analytics::DriftMonitor`] watching standardized residuals.
//! * [`engine`] — the tick loop: simulate every patient's reading,
//!   feed residuals to the monitors, and when one trips, enqueue a
//!   recalibration-class request through the normal
//!   `bios-gateway` admission path. On completion the patient's epoch
//!   is swapped and the monitor re-baselined.
//!
//! ## Determinism
//!
//! The whole stream is a pure function of `(config, cohort seed,
//! tick)`. Patient truth, sensor noise, aging onset, and every
//! admission decision derive from seeded streams and logical ticks —
//! never wall time — so [`engine::StreamReport::digest`] is
//! byte-identical at any worker count. The integration suite pins this
//! at 1, 2, and 8 workers.
//!
//! ```
//! use bios_gateway::{Gateway, GatewayConfig};
//! use bios_runtime::{Runtime, RuntimeConfig};
//! use bios_stream::{StreamConfig, StreamEngine};
//!
//! let runtime = Runtime::new(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
//! let gateway = Gateway::new(GatewayConfig::default(), runtime);
//! let engine = StreamEngine::new(StreamConfig::new(8, 48, 7), gateway);
//! let report = engine.run();
//! assert_eq!(report.patients, 8);
//! assert_eq!(report.recal_degraded, 0, "recalibrations never brown out");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod engine;
pub mod epoch;

pub use cohort::{Patient, PatientCohort, Physiology};
pub use engine::{StreamConfig, StreamEngine, StreamReport};
pub use epoch::{CalibrationEpoch, PatientState};

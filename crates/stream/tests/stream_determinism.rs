//! The stream-layer determinism pin: one seeded cohort with drift
//! faults armed must produce a byte-identical `StreamReport::digest`
//! at 1, 2, and 8 workers. This is the crate's contract — detection
//! ticks, recalibration dispatch, and epoch swaps are pure functions
//! of (config, cohort seed, tick), never of physical parallelism.

use bios_faults::{FaultKind, FaultPlan};
use bios_gateway::{Gateway, GatewayConfig};
use bios_runtime::{Runtime, RuntimeConfig};
use bios_stream::{StreamConfig, StreamEngine};

fn run_at(workers: usize) -> bios_stream::StreamReport {
    let seed = 0x57AE_A11E;
    let config = StreamConfig::new(64, 96, seed).with_aging(
        FaultPlan::builder("stream-aging", seed)
            .spec(FaultKind::FilmDenaturation, 0.8, 0.9)
            .build(),
    );
    let runtime = Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    StreamEngine::new(config, Gateway::new(GatewayConfig::default(), runtime)).run()
}

#[test]
fn stream_digest_is_byte_identical_across_worker_counts() {
    let one = run_at(1);
    let two = run_at(2);
    let eight = run_at(8);
    assert_eq!(one.digest(), two.digest());
    assert_eq!(two.digest(), eight.digest());
    // The run must actually exercise the drift loop, or the pin is
    // vacuous.
    assert!(one.drift_injected > 0, "aging plan must inject drift");
    assert!(one.drift_detected > 0, "monitors must detect it");
    assert!(one.epoch_swaps > 0, "recalibrations must swap epochs");
    assert_eq!(one.false_trips, 0, "no false alarms at this threshold");
    assert_eq!(one.recal_degraded, 0, "recals are never browned out");
}

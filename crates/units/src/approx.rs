//! Epsilon comparisons for floating-point quantities.
//!
//! Exact `==`/`!=` on floats is banned in solver and analytics code by
//! the `F-eq` audit rule (DESIGN.md §11): after any arithmetic, two
//! mathematically equal values may differ in their last bits, and an
//! exact comparison silently turns that rounding into a control-flow
//! change. These helpers spell out the tolerance instead.
//!
//! Two regimes:
//!
//! * [`nearly_zero`] — an *absolute* test against [`ABS_EPS`], for
//!   degeneracy guards (`sxx`, determinants, denominators) where the
//!   natural scale of a genuinely non-degenerate input is far above
//!   the tolerance (unitless, or whatever unit the caller's quantity
//!   carries).
//! * [`approx_eq`] — a mixed absolute/relative test: true when the
//!   difference is within [`ABS_EPS`] absolutely *or* within
//!   [`REL_EPS`] of the larger magnitude, so it works for values of
//!   any scale (unitless tolerance on the relative branch).
//!
//! Exact sentinel semantics ("this field was never set") should use an
//! `Option` or an explicit flag, not a float compare; where a legacy
//! exact compare is genuinely intended, waive the audit rule with a
//! reason instead of reaching for these helpers.

/// Absolute tolerance: values this close to zero are treated as zero.
/// Chosen far below any physical quantity this workspace computes
/// (currents are ≥ pA ≈ 1e-12 A, concentrations ≥ pM ≈ 1e-12 M) so
/// replacing an exact guard with [`nearly_zero`] never changes the
/// outcome for legitimate inputs (unitless threshold).
pub const ABS_EPS: f64 = 1e-300;

/// Relative tolerance for [`approx_eq`]: ~2⁻⁴⁴, about 1000 ulps at
/// unit scale — tight enough to distinguish physics, loose enough to
/// absorb accumulated rounding (unitless).
pub const REL_EPS: f64 = 6e-14;

/// True when `x` is within [`ABS_EPS`] of zero (absolute test,
/// unitless threshold). Non-finite inputs are never nearly zero.
#[must_use]
pub fn nearly_zero(x: f64) -> bool {
    x.abs() <= ABS_EPS
}

/// True when `a` and `b` agree within [`ABS_EPS`] absolutely or
/// [`REL_EPS`] relatively (unitless tolerances). NaNs never compare
/// equal; equal infinities do.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        // Covers equal infinities and exact hits without arithmetic.
        return true;
    }
    let diff = (a - b).abs();
    if !diff.is_finite() {
        return false;
    }
    diff <= ABS_EPS || diff <= REL_EPS * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_guards() {
        assert!(nearly_zero(0.0));
        assert!(nearly_zero(-0.0));
        assert!(nearly_zero(1e-301));
        assert!(!nearly_zero(1e-12), "picoscale physics is not zero");
        assert!(!nearly_zero(f64::NAN));
        assert!(!nearly_zero(f64::INFINITY));
    }

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-15));
        assert!(!approx_eq(1.0, 1.0 + 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-15)));
        assert!(!approx_eq(0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-301));
    }

    #[test]
    fn approx_eq_edge_cases() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1e300));
    }
}

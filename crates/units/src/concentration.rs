//! Bulk concentration and electrode-surface loading quantities.

use std::fmt;

use crate::error::{ensure_non_negative, Result};
use crate::macros::quantity_ops;

/// Amount-of-substance concentration, stored canonically in mol · L⁻¹ (M).
///
/// The biosensing literature quotes analyte levels in mM or µM; both have
/// dedicated constructors and accessors so call sites read like the paper.
///
/// # Examples
///
/// ```
/// use bios_units::Molar;
///
/// // Physiological glucose is ~5 mM.
/// let glucose = Molar::from_milli_molar(5.0);
/// assert_eq!(glucose.as_micro_molar(), 5000.0);
/// assert_eq!(glucose.as_molar(), 5.0e-3);
///
/// // Detection limits are quoted in µM.
/// let lod = Molar::from_micro_molar(2.0);
/// assert!(lod < glucose);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Molar(f64);

quantity_ops!(Molar);

impl Molar {
    /// Zero concentration (a blank sample).
    pub const ZERO: Molar = Molar(0.0);

    /// Creates a concentration from a value in mol · L⁻¹.
    ///
    /// Negative or non-finite inputs are clamped to the caller via the
    /// `try_` variants; this constructor is intended for literals and
    /// computed values known to be valid. Prefer [`Molar::try_from_molar`]
    /// when the value comes from user input.
    #[must_use]
    pub const fn from_molar(molar: f64) -> Molar {
        Molar(molar)
    }

    /// Creates a concentration from a value in mmol · L⁻¹.
    #[must_use]
    pub fn from_milli_molar(milli_molar: f64) -> Molar {
        Molar(milli_molar * 1e-3)
    }

    /// Creates a concentration from a value in µmol · L⁻¹.
    #[must_use]
    pub fn from_micro_molar(micro_molar: f64) -> Molar {
        Molar(micro_molar * 1e-6)
    }

    /// Creates a concentration from a value in nmol · L⁻¹.
    #[must_use]
    pub fn from_nano_molar(nano_molar: f64) -> Molar {
        Molar(nano_molar * 1e-9)
    }

    /// Fallible constructor from mol · L⁻¹.
    ///
    /// # Errors
    ///
    /// Returns [`crate::QuantityError::Negative`] for negative values and
    /// [`crate::QuantityError::NonFinite`] for NaN/infinite values.
    pub fn try_from_molar(molar: f64) -> Result<Molar> {
        ensure_non_negative("concentration", molar).map(Molar)
    }

    /// Fallible constructor from mmol · L⁻¹.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Molar::try_from_molar`].
    pub fn try_from_milli_molar(milli_molar: f64) -> Result<Molar> {
        ensure_non_negative("concentration", milli_molar).map(|v| Molar(v * 1e-3))
    }

    /// Returns the concentration in mol · L⁻¹.
    #[must_use]
    pub fn as_molar(self) -> f64 {
        self.0
    }

    /// Returns the concentration in mmol · L⁻¹.
    #[must_use]
    pub fn as_milli_molar(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the concentration in µmol · L⁻¹.
    #[must_use]
    pub fn as_micro_molar(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the concentration in nmol · L⁻¹.
    #[must_use]
    pub fn as_nano_molar(self) -> f64 {
        self.0 * 1e9
    }
}

impl fmt::Display for Molar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the most readable unit for the magnitude.
        let abs = self.0.abs();
        if abs >= 1e-3 || abs == 0.0 {
            write!(f, "{:.4} mM", self.as_milli_molar())
        } else if abs >= 1e-6 {
            write!(f, "{:.4} µM", self.as_micro_molar())
        } else {
            write!(f, "{:.4} nM", self.as_nano_molar())
        }
    }
}

/// Surface loading of an immobilized species, mol · cm⁻².
///
/// Enzyme films are characterized by how many moles of active protein are
/// anchored per unit of electrode area; typical monolayer coverages are
/// 10⁻¹²–10⁻¹⁰ mol · cm⁻².
///
/// # Examples
///
/// ```
/// use bios_units::SurfaceLoading;
///
/// let gamma = SurfaceLoading::from_pico_mol_per_square_cm(20.0);
/// assert!((gamma.as_mol_per_square_cm() - 2.0e-11).abs() < 1e-24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SurfaceLoading(f64);

quantity_ops!(SurfaceLoading);

impl SurfaceLoading {
    /// Creates a loading from mol · cm⁻².
    #[must_use]
    pub fn from_mol_per_square_cm(value: f64) -> SurfaceLoading {
        SurfaceLoading(value)
    }

    /// Creates a loading from pmol · cm⁻² (the natural unit for enzyme
    /// monolayers).
    #[must_use]
    pub fn from_pico_mol_per_square_cm(value: f64) -> SurfaceLoading {
        SurfaceLoading(value * 1e-12)
    }

    /// Fallible constructor from mol · cm⁻².
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite inputs.
    pub fn try_from_mol_per_square_cm(value: f64) -> Result<SurfaceLoading> {
        ensure_non_negative("surface loading", value).map(SurfaceLoading)
    }

    /// Returns the loading in mol · cm⁻².
    #[must_use]
    pub fn as_mol_per_square_cm(self) -> f64 {
        self.0
    }

    /// Returns the loading in pmol · cm⁻².
    #[must_use]
    pub fn as_pico_mol_per_square_cm(self) -> f64 {
        self.0 * 1e12
    }
}

impl fmt::Display for SurfaceLoading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} pmol/cm²", self.as_pico_mol_per_square_cm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milli_and_micro_round_trip() {
        let c = Molar::from_milli_molar(2.5);
        assert!((c.as_micro_molar() - 2500.0).abs() < 1e-9);
        assert!((c.as_molar() - 0.0025).abs() < 1e-15);
        let c = Molar::from_micro_molar(78.0);
        assert!((c.as_milli_molar() - 0.078).abs() < 1e-12);
    }

    #[test]
    fn nano_molar_round_trip() {
        let c = Molar::from_nano_molar(400.0);
        assert!((c.as_micro_molar() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn try_constructors_reject_bad_input() {
        assert!(Molar::try_from_molar(-1.0).is_err());
        assert!(Molar::try_from_milli_molar(f64::NAN).is_err());
        assert!(Molar::try_from_milli_molar(1.0).is_ok());
    }

    #[test]
    fn arithmetic_behaves_linearly() {
        let a = Molar::from_milli_molar(1.0);
        let b = Molar::from_milli_molar(2.0);
        assert_eq!((a + b).as_milli_molar(), 3.0);
        assert_eq!((b - a).as_milli_molar(), 1.0);
        assert_eq!((a * 4.0).as_milli_molar(), 4.0);
        assert_eq!((b / 2.0).as_milli_molar(), 1.0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_follows_magnitude() {
        assert!(Molar::from_micro_molar(10.0) < Molar::from_milli_molar(1.0));
        assert_eq!(
            Molar::from_micro_molar(10.0).max(Molar::from_milli_molar(1.0)),
            Molar::from_milli_molar(1.0)
        );
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Molar::from_milli_molar(5.0).to_string(), "5.0000 mM");
        assert_eq!(Molar::from_micro_molar(2.0).to_string(), "2.0000 µM");
        assert_eq!(Molar::from_nano_molar(300.0).to_string(), "300.0000 nM");
    }

    #[test]
    fn surface_loading_units() {
        let g = SurfaceLoading::from_pico_mol_per_square_cm(150.0);
        assert!((g.as_mol_per_square_cm() - 1.5e-10).abs() < 1e-22);
        assert!(SurfaceLoading::try_from_mol_per_square_cm(-1e-12).is_err());
    }

    #[test]
    fn sum_of_concentrations() {
        let total: Molar = [1.0, 2.0, 3.0]
            .iter()
            .map(|&v| Molar::from_milli_molar(v))
            .sum();
        assert!((total.as_milli_molar() - 6.0).abs() < 1e-12);
    }
}

//! Electrical quantities: current, potential, resistance, current density,
//! and voltammetric scan rate.

use std::fmt;

use crate::error::{ensure_finite, Result};
use crate::geometry::SquareCm;
use crate::macros::quantity_ops;

/// Electric current, stored canonically in amperes.
///
/// Biosensor currents live in the nA–µA decade, so µA/nA constructors are
/// provided.
///
/// # Examples
///
/// ```
/// use bios_units::Amperes;
///
/// let i = Amperes::from_nano_amps(250.0);
/// assert!((i.as_micro_amps() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Amperes(f64);

quantity_ops!(Amperes);

impl Amperes {
    /// Zero current.
    pub const ZERO: Amperes = Amperes(0.0);

    /// Creates a current from amperes.
    #[must_use]
    pub fn from_amps(amps: f64) -> Amperes {
        Amperes(amps)
    }

    /// Creates a current from milliamperes.
    #[must_use]
    pub fn from_milli_amps(milli_amps: f64) -> Amperes {
        Amperes(milli_amps * 1e-3)
    }

    /// Creates a current from microamperes.
    #[must_use]
    pub fn from_micro_amps(micro_amps: f64) -> Amperes {
        Amperes(micro_amps * 1e-6)
    }

    /// Creates a current from nanoamperes.
    #[must_use]
    pub fn from_nano_amps(nano_amps: f64) -> Amperes {
        Amperes(nano_amps * 1e-9)
    }

    /// Creates a current from picoamperes.
    #[must_use]
    pub fn from_pico_amps(pico_amps: f64) -> Amperes {
        Amperes(pico_amps * 1e-12)
    }

    /// Fallible constructor from amperes (currents may be negative —
    /// cathodic vs anodic — but must be finite).
    ///
    /// # Errors
    ///
    /// Returns [`crate::QuantityError::NonFinite`] for NaN/infinite inputs.
    pub fn try_from_amps(amps: f64) -> Result<Amperes> {
        ensure_finite("current", amps).map(Amperes)
    }

    /// Returns the current in amperes.
    #[must_use]
    pub fn as_amps(self) -> f64 {
        self.0
    }

    /// Returns the current in milliamperes.
    #[must_use]
    pub fn as_milli_amps(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the current in microamperes.
    #[must_use]
    pub fn as_micro_amps(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the current in nanoamperes.
    #[must_use]
    pub fn as_nano_amps(self) -> f64 {
        self.0 * 1e9
    }
}

impl fmt::Display for Amperes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 1e-3 {
            write!(f, "{:.4} mA", self.as_milli_amps())
        } else if abs >= 1e-6 || abs == 0.0 {
            write!(f, "{:.4} µA", self.as_micro_amps())
        } else {
            write!(f, "{:.4} nA", self.as_nano_amps())
        }
    }
}

/// Current divided by electrode area gives a current density.
impl std::ops::Div<SquareCm> for Amperes {
    type Output = CurrentDensity;
    fn div(self, rhs: SquareCm) -> CurrentDensity {
        CurrentDensity::from_amps_per_square_cm(self.0 / rhs.as_square_cm())
    }
}

/// Current density, A · cm⁻².
///
/// # Examples
///
/// ```
/// use bios_units::{Amperes, SquareCm};
///
/// let j = Amperes::from_micro_amps(13.0) / SquareCm::from_square_mm(13.0);
/// assert!((j.as_micro_amps_per_square_cm() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CurrentDensity(f64);

quantity_ops!(CurrentDensity);

impl CurrentDensity {
    /// Creates a current density from A · cm⁻².
    #[must_use]
    pub fn from_amps_per_square_cm(value: f64) -> CurrentDensity {
        CurrentDensity(value)
    }

    /// Creates a current density from µA · cm⁻².
    #[must_use]
    pub fn from_micro_amps_per_square_cm(value: f64) -> CurrentDensity {
        CurrentDensity(value * 1e-6)
    }

    /// Returns the density in A · cm⁻².
    #[must_use]
    pub fn as_amps_per_square_cm(self) -> f64 {
        self.0
    }

    /// Returns the density in µA · cm⁻².
    #[must_use]
    pub fn as_micro_amps_per_square_cm(self) -> f64 {
        self.0 * 1e6
    }

    /// Multiplies back by an area to recover a current.
    #[must_use]
    pub fn over_area(self, area: SquareCm) -> Amperes {
        Amperes::from_amps(self.0 * area.as_square_cm())
    }
}

impl fmt::Display for CurrentDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} µA/cm²", self.as_micro_amps_per_square_cm())
    }
}

/// Electric potential, stored canonically in volts.
///
/// Working-electrode biases are quoted in mV in the paper (+650 mV for the
/// oxidase sensors).
///
/// # Examples
///
/// ```
/// use bios_units::Volts;
///
/// let bias = Volts::from_milli_volts(650.0);
/// assert_eq!(bias.as_volts(), 0.65);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(f64);

quantity_ops!(Volts);

impl Volts {
    /// Zero potential (vs the reference electrode).
    pub const ZERO: Volts = Volts(0.0);

    /// Creates a potential from volts.
    #[must_use]
    pub fn from_volts(volts: f64) -> Volts {
        Volts(volts)
    }

    /// Creates a potential from millivolts.
    #[must_use]
    pub fn from_milli_volts(milli_volts: f64) -> Volts {
        Volts(milli_volts * 1e-3)
    }

    /// Fallible constructor from volts.
    ///
    /// # Errors
    ///
    /// Returns [`crate::QuantityError::NonFinite`] for NaN/infinite inputs.
    pub fn try_from_volts(volts: f64) -> Result<Volts> {
        ensure_finite("potential", volts).map(Volts)
    }

    /// Returns the potential in volts.
    #[must_use]
    pub fn as_volts(self) -> f64 {
        self.0
    }

    /// Returns the potential in millivolts.
    #[must_use]
    pub fn as_milli_volts(self) -> f64 {
        self.0 * 1e3
    }
}

impl std::ops::Neg for Volts {
    type Output = Volts;
    fn neg(self) -> Volts {
        Volts(-self.0)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.1} mV", self.as_milli_volts())
    }
}

/// Electrical resistance, ohms.
///
/// Used by the instrument crate for transimpedance gains and by the
/// impedimetric classification entries.
///
/// # Examples
///
/// ```
/// use bios_units::{Ohms, Amperes};
///
/// let feedback = Ohms::from_mega_ohms(1.0);
/// let v = feedback.voltage_for(Amperes::from_micro_amps(2.0));
/// assert!((v.as_volts() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ohms(f64);

quantity_ops!(Ohms);

impl Ohms {
    /// Creates a resistance from ohms.
    #[must_use]
    pub fn from_ohms(ohms: f64) -> Ohms {
        Ohms(ohms)
    }

    /// Creates a resistance from kΩ.
    #[must_use]
    pub fn from_kilo_ohms(kilo_ohms: f64) -> Ohms {
        Ohms(kilo_ohms * 1e3)
    }

    /// Creates a resistance from MΩ.
    #[must_use]
    pub fn from_mega_ohms(mega_ohms: f64) -> Ohms {
        Ohms(mega_ohms * 1e6)
    }

    /// Returns the resistance in ohms.
    #[must_use]
    pub fn as_ohms(self) -> f64 {
        self.0
    }

    /// Ohm's law: the voltage developed by `current` across this resistance.
    #[must_use]
    pub fn voltage_for(self, current: Amperes) -> Volts {
        Volts::from_volts(self.0 * current.as_amps())
    }
}

impl fmt::Display for Ohms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 1e6 {
            write!(f, "{:.3} MΩ", self.0 / 1e6)
        } else if abs >= 1e3 {
            write!(f, "{:.3} kΩ", self.0 / 1e3)
        } else {
            write!(f, "{:.3} Ω", self.0)
        }
    }
}

/// Voltammetric scan rate, V · s⁻¹.
///
/// Cyclic voltammetry experiments are parameterized by how fast the
/// potential ramp sweeps; peak currents grow with √(scan rate)
/// (Randles–Ševčík).
///
/// # Examples
///
/// ```
/// use bios_units::ScanRate;
///
/// let v = ScanRate::from_milli_volts_per_second(50.0);
/// assert_eq!(v.as_volts_per_second(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ScanRate(f64);

quantity_ops!(ScanRate);

impl ScanRate {
    /// Creates a scan rate from V · s⁻¹.
    #[must_use]
    pub fn from_volts_per_second(value: f64) -> ScanRate {
        ScanRate(value)
    }

    /// Creates a scan rate from mV · s⁻¹ (the usual experimental unit).
    #[must_use]
    pub fn from_milli_volts_per_second(value: f64) -> ScanRate {
        ScanRate(value * 1e-3)
    }

    /// Returns the rate in V · s⁻¹.
    #[must_use]
    pub fn as_volts_per_second(self) -> f64 {
        self.0
    }

    /// Returns the rate in mV · s⁻¹.
    #[must_use]
    pub fn as_milli_volts_per_second(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for ScanRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mV/s", self.as_milli_volts_per_second())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_unit_ladder() {
        let i = Amperes::from_milli_amps(1.0);
        assert_eq!(i.as_micro_amps(), 1000.0);
        assert_eq!(i.as_nano_amps(), 1_000_000.0);
        assert_eq!(Amperes::from_pico_amps(1000.0).as_nano_amps(), 1.0);
    }

    #[test]
    fn current_can_be_negative_but_not_nan() {
        assert!(Amperes::try_from_amps(-1e-6).is_ok());
        assert!(Amperes::try_from_amps(f64::NAN).is_err());
    }

    #[test]
    fn current_density_round_trip() {
        let area = SquareCm::from_square_cm(0.5);
        let j = Amperes::from_micro_amps(10.0) / area;
        assert!((j.as_micro_amps_per_square_cm() - 20.0).abs() < 1e-9);
        let back = j.over_area(area);
        assert!((back.as_micro_amps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn potential_conversions_and_negation() {
        let e = Volts::from_milli_volts(-250.0);
        assert_eq!((-e).as_milli_volts(), 250.0);
        assert_eq!(e.as_volts(), -0.25);
    }

    #[test]
    fn ohms_law() {
        let r = Ohms::from_kilo_ohms(100.0);
        let v = r.voltage_for(Amperes::from_micro_amps(10.0));
        assert!((v.as_volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scan_rate_units() {
        let v = ScanRate::from_milli_volts_per_second(100.0);
        assert!((v.as_volts_per_second() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Amperes::from_micro_amps(2.5).to_string(), "2.5000 µA");
        assert_eq!(Amperes::from_nano_amps(3.0).to_string(), "3.0000 nA");
        assert_eq!(Volts::from_milli_volts(650.0).to_string(), "+650.0 mV");
        assert_eq!(Ohms::from_mega_ohms(2.0).to_string(), "2.000 MΩ");
        assert_eq!(
            ScanRate::from_milli_volts_per_second(20.0).to_string(),
            "20.0 mV/s"
        );
    }
}

//! Error type shared by fallible quantity constructors.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, QuantityError>;

/// Error returned when a physical quantity is constructed from an
/// invalid numeric value.
///
/// # Examples
///
/// ```
/// use bios_units::{Molar, QuantityError};
///
/// let err = Molar::try_from_milli_molar(-1.0).unwrap_err();
/// assert!(matches!(err, QuantityError::Negative { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QuantityError {
    /// The value was negative but the quantity is physically non-negative.
    Negative {
        /// Name of the quantity being constructed.
        quantity: &'static str,
        /// The offending value, in the unit it was supplied in.
        value: f64,
    },
    /// The value was NaN or infinite.
    NonFinite {
        /// Name of the quantity being constructed.
        quantity: &'static str,
    },
    /// A range was constructed with `low > high`.
    InvertedRange {
        /// Supplied lower bound (canonical unit).
        low: f64,
        /// Supplied upper bound (canonical unit).
        high: f64,
    },
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantityError::Negative { quantity, value } => {
                write!(f, "{quantity} must be non-negative, got {value}")
            }
            QuantityError::NonFinite { quantity } => {
                write!(f, "{quantity} must be finite")
            }
            QuantityError::InvertedRange { low, high } => {
                write!(f, "range lower bound {low} exceeds upper bound {high}")
            }
        }
    }
}

impl Error for QuantityError {}

/// Validates that `value` is finite, returning [`QuantityError::NonFinite`]
/// otherwise.
pub(crate) fn ensure_finite(quantity: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(QuantityError::NonFinite { quantity })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(quantity: &'static str, value: f64) -> Result<f64> {
    let value = ensure_finite(quantity, value)?;
    if value < 0.0 {
        Err(QuantityError::Negative { quantity, value })
    } else {
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = QuantityError::Negative {
            quantity: "concentration",
            value: -3.0,
        };
        assert_eq!(e.to_string(), "concentration must be non-negative, got -3");
        let e = QuantityError::NonFinite { quantity: "area" };
        assert_eq!(e.to_string(), "area must be finite");
        let e = QuantityError::InvertedRange {
            low: 2.0,
            high: 1.0,
        };
        assert_eq!(e.to_string(), "range lower bound 2 exceeds upper bound 1");
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert_eq!(ensure_finite("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn ensure_non_negative_rejects_negatives() {
        assert!(ensure_non_negative("x", -0.1).is_err());
        assert_eq!(ensure_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantityError>();
    }
}

//! Geometric quantities: length and area.

use std::fmt;

use crate::error::{ensure_non_negative, Result};
use crate::macros::quantity_ops;

/// Length, stored canonically in centimeters (the CGS habit of
/// electrochemistry: diffusion coefficients are cm² · s⁻¹).
///
/// # Examples
///
/// ```
/// use bios_units::Centimeters;
///
/// let film = Centimeters::from_micro_meters(5.0);
/// assert!((film.as_cm() - 5.0e-4).abs() < 1e-16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Centimeters(f64);

quantity_ops!(Centimeters);

impl Centimeters {
    /// Creates a length from centimeters.
    #[must_use]
    pub fn from_cm(cm: f64) -> Centimeters {
        Centimeters(cm)
    }

    /// Creates a length from millimeters.
    #[must_use]
    pub fn from_mm(mm: f64) -> Centimeters {
        Centimeters(mm * 0.1)
    }

    /// Creates a length from micrometers.
    #[must_use]
    pub fn from_micro_meters(um: f64) -> Centimeters {
        Centimeters(um * 1e-4)
    }

    /// Creates a length from nanometers.
    #[must_use]
    pub fn from_nano_meters(nm: f64) -> Centimeters {
        Centimeters(nm * 1e-7)
    }

    /// Fallible constructor from centimeters.
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input.
    pub fn try_from_cm(cm: f64) -> Result<Centimeters> {
        ensure_non_negative("length", cm).map(Centimeters)
    }

    /// Returns the length in centimeters.
    #[must_use]
    pub fn as_cm(self) -> f64 {
        self.0
    }

    /// Returns the length in micrometers.
    #[must_use]
    pub fn as_micro_meters(self) -> f64 {
        self.0 * 1e4
    }

    /// Returns the length in nanometers.
    #[must_use]
    pub fn as_nano_meters(self) -> f64 {
        self.0 * 1e7
    }

    /// Squares the length into an area.
    #[must_use]
    pub fn squared(self) -> SquareCm {
        SquareCm(self.0 * self.0)
    }
}

impl fmt::Display for Centimeters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 0.1 {
            write!(f, "{:.3} cm", self.0)
        } else if abs >= 1e-4 {
            write!(f, "{:.2} µm", self.as_micro_meters())
        } else {
            write!(f, "{:.1} nm", self.as_nano_meters())
        }
    }
}

/// Area, stored canonically in cm².
///
/// Electrode areas in the paper: the screen-printed working electrode is
/// 13 mm² (0.13 cm²); each microfabricated Au electrode is 0.25 mm²
/// (0.0025 cm²).
///
/// # Examples
///
/// ```
/// use bios_units::SquareCm;
///
/// let spe = SquareCm::from_square_mm(13.0);
/// let micro = SquareCm::from_square_mm(0.25);
/// assert!((spe / micro - 52.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SquareCm(pub(crate) f64);

quantity_ops!(SquareCm);

impl SquareCm {
    /// Creates an area from cm².
    #[must_use]
    pub fn from_square_cm(value: f64) -> SquareCm {
        SquareCm(value)
    }

    /// Creates an area from mm².
    #[must_use]
    pub fn from_square_mm(value: f64) -> SquareCm {
        SquareCm(value * 0.01)
    }

    /// Fallible constructor from cm².
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input.
    pub fn try_from_square_cm(value: f64) -> Result<SquareCm> {
        ensure_non_negative("area", value).map(SquareCm)
    }

    /// Returns the area in cm².
    #[must_use]
    pub fn as_square_cm(self) -> f64 {
        self.0
    }

    /// Returns the area in square millimetres (1 cm² = 100 mm²).
    #[must_use]
    pub fn as_square_mm(self) -> f64 {
        self.0 * 100.0
    }
}

impl fmt::Display for SquareCm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mm²", self.as_square_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_ladder() {
        assert!((Centimeters::from_mm(10.0).as_cm() - 1.0).abs() < 1e-12);
        assert!((Centimeters::from_micro_meters(10_000.0).as_cm() - 1.0).abs() < 1e-12);
        assert!((Centimeters::from_nano_meters(10.0).as_micro_meters() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn paper_electrode_areas() {
        let spe = SquareCm::from_square_mm(13.0);
        assert!((spe.as_square_cm() - 0.13).abs() < 1e-12);
        let micro = SquareCm::from_square_mm(0.25);
        assert!((micro.as_square_cm() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn squared_length_is_area() {
        let l = Centimeters::from_cm(0.5);
        assert!((l.squared().as_square_cm() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fallible_constructors() {
        assert!(Centimeters::try_from_cm(-1.0).is_err());
        assert!(SquareCm::try_from_square_cm(f64::INFINITY).is_err());
        assert!(SquareCm::try_from_square_cm(0.13).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(SquareCm::from_square_mm(13.0).to_string(), "13.0000 mm²");
        assert_eq!(Centimeters::from_nano_meters(10.0).to_string(), "10.0 nm");
        assert_eq!(Centimeters::from_micro_meters(1.5).to_string(), "1.50 µm");
    }
}

//! Kinetic quantities: diffusion coefficients and first-order rate
//! constants.

use std::fmt;

use crate::error::{ensure_non_negative, Result};
use crate::macros::quantity_ops;

/// Diffusion coefficient, cm² · s⁻¹.
///
/// Small molecules in water diffuse at roughly 10⁻⁶–10⁻⁵ cm² · s⁻¹;
/// glucose is ≈ 6.7 × 10⁻⁶ cm² · s⁻¹, H₂O₂ ≈ 1.4 × 10⁻⁵ cm² · s⁻¹.
///
/// # Examples
///
/// ```
/// use bios_units::DiffusionCoefficient;
///
/// let d = DiffusionCoefficient::from_square_cm_per_second(6.7e-6);
/// assert!(d.as_square_cm_per_second() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct DiffusionCoefficient(f64);

quantity_ops!(DiffusionCoefficient);

impl DiffusionCoefficient {
    /// Creates a diffusion coefficient from cm² · s⁻¹.
    ///
    /// `const` so transport tables can be declared as constants.
    #[must_use]
    pub const fn from_square_cm_per_second(value: f64) -> DiffusionCoefficient {
        DiffusionCoefficient(value)
    }

    /// Fallible constructor from cm² · s⁻¹.
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input.
    pub fn try_from_square_cm_per_second(value: f64) -> Result<DiffusionCoefficient> {
        ensure_non_negative("diffusion coefficient", value).map(DiffusionCoefficient)
    }

    /// Returns the coefficient in cm² · s⁻¹.
    #[must_use]
    pub fn as_square_cm_per_second(self) -> f64 {
        self.0
    }
}

impl fmt::Display for DiffusionCoefficient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} cm²/s", self.0)
    }
}

/// First-order rate constant, s⁻¹.
///
/// Used for enzyme turnover numbers (k_cat) and heterogeneous electron
/// transfer rates (after normalization).
///
/// # Examples
///
/// ```
/// use bios_units::RateConstant;
///
/// // Glucose oxidase turns over ~700 substrate molecules per second.
/// let kcat = RateConstant::from_per_second(700.0);
/// assert_eq!(kcat.as_per_second(), 700.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct RateConstant(f64);

quantity_ops!(RateConstant);

impl RateConstant {
    /// Creates a rate constant from s⁻¹.
    #[must_use]
    pub fn from_per_second(value: f64) -> RateConstant {
        RateConstant(value)
    }

    /// Fallible constructor from s⁻¹.
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input.
    pub fn try_from_per_second(value: f64) -> Result<RateConstant> {
        ensure_non_negative("rate constant", value).map(RateConstant)
    }

    /// Returns the rate in s⁻¹.
    #[must_use]
    pub fn as_per_second(self) -> f64 {
        self.0
    }
}

impl fmt::Display for RateConstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s⁻¹", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_coefficient_validation() {
        assert!(DiffusionCoefficient::try_from_square_cm_per_second(-1e-6).is_err());
        assert!(DiffusionCoefficient::try_from_square_cm_per_second(6.7e-6).is_ok());
    }

    #[test]
    fn rate_constant_validation() {
        assert!(RateConstant::try_from_per_second(f64::NAN).is_err());
        assert!(RateConstant::try_from_per_second(700.0).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            DiffusionCoefficient::from_square_cm_per_second(6.7e-6).to_string(),
            "6.700e-6 cm²/s"
        );
        assert_eq!(
            RateConstant::from_per_second(700.0).to_string(),
            "700.000 s⁻¹"
        );
    }

    #[test]
    fn scaling_is_linear() {
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-5) * 0.5;
        assert!((d.as_square_cm_per_second() - 5e-6).abs() < 1e-18);
    }
}

//! # bios-units
//!
//! Strongly-typed physical quantities for electrochemical biosensor
//! simulation.
//!
//! Every quantity is a newtype over `f64` with an explicit canonical unit,
//! so a concentration can never be confused with a potential, and unit
//! conversions are spelled out at construction or extraction time
//! (Rust API guideline C-NEWTYPE).
//!
//! Canonical storage units:
//!
//! | Type | Canonical unit |
//! |---|---|
//! | [`Molar`] | mol · L⁻¹ |
//! | [`Amperes`] | A |
//! | [`Volts`] | V |
//! | [`SquareCm`] | cm² |
//! | [`Centimeters`] | cm |
//! | [`Seconds`] | s |
//! | [`Kelvin`] | K |
//! | [`Sensitivity`] | µA · mM⁻¹ · cm⁻² |
//! | [`CurrentDensity`] | A · cm⁻² |
//! | [`SurfaceLoading`] | mol · cm⁻² |
//! | [`DiffusionCoefficient`] | cm² · s⁻¹ |
//! | [`RateConstant`] | s⁻¹ |
//! | [`ScanRate`] | V · s⁻¹ |
//!
//! # Examples
//!
//! ```
//! use bios_units::{Molar, Amperes, SquareCm, Sensitivity};
//!
//! let glucose = Molar::from_milli_molar(5.0);
//! assert_eq!(glucose.as_milli_molar(), 5.0);
//!
//! let area = SquareCm::from_square_mm(13.0);
//! let current = Amperes::from_micro_amps(7.2);
//! let density = current / area;
//! assert!((density.as_micro_amps_per_square_cm() - 7.2 / 0.13).abs() < 1e-9);
//!
//! // Sensitivity is a calibration slope normalized by electrode area.
//! let s = Sensitivity::new(55.5);
//! assert_eq!(s.as_micro_amps_per_milli_molar_square_cm(), 55.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
mod concentration;
mod electrical;
mod error;
mod geometry;
mod kinetic;
mod macros;
mod range;
mod sensitivity;
mod temperature;
mod time;

pub use approx::{approx_eq, nearly_zero};
pub use concentration::{Molar, SurfaceLoading};
pub use electrical::{Amperes, CurrentDensity, Ohms, ScanRate, Volts};
pub use error::{QuantityError, Result};
pub use geometry::{Centimeters, SquareCm};
pub use kinetic::{DiffusionCoefficient, RateConstant};
pub use range::ConcentrationRange;
pub use sensitivity::Sensitivity;
pub use temperature::Kelvin;
pub use time::Seconds;

/// Faraday constant, C · mol⁻¹.
pub const FARADAY: f64 = 96_485.332_12;

/// Molar gas constant, J · mol⁻¹ · K⁻¹.
pub const GAS_CONSTANT: f64 = 8.314_462_618;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_codata_values() {
        assert!((FARADAY - 96485.33212).abs() < 1e-4);
        assert!((GAS_CONSTANT - 8.314462618).abs() < 1e-9);
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        // RT/F ≈ 25.7 mV at 25 °C — the number every electrochemist knows.
        let t = Kelvin::from_celsius(25.0);
        let vt = GAS_CONSTANT * t.as_kelvin() / FARADAY;
        assert!((vt - 0.02569).abs() < 1e-4);
    }
}

//! Private helper macro generating the arithmetic and trait boilerplate
//! shared by all quantity newtypes.

/// Implements `Add`, `Sub`, scalar `Mul`/`Div`, quantity-ratio `Div`,
/// `Neg`-free ordering helpers, and `Sum` for a `f64` newtype.
///
/// The newtype must expose its raw value through a field named `0`.
macro_rules! quantity_ops {
    ($ty:ident) => {
        impl std::ops::Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl std::ops::Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl std::ops::Div for $ty {
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|q| q.0).sum())
            }
        }

        impl $ty {
            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: $ty) -> $ty {
                $ty(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: $ty) -> $ty {
                $ty(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> $ty {
                $ty(self.0.abs())
            }

            /// Returns `true` when the stored value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }
    };
}

pub(crate) use quantity_ops;

//! Concentration intervals — linear ranges and sweep windows.

use std::fmt;

use crate::error::{QuantityError, Result};
use crate::Molar;

/// A closed concentration interval `[low, high]`.
///
/// Used both for the *linear range* figure of merit (Table 2 of the paper)
/// and for specifying calibration sweep windows.
///
/// # Examples
///
/// ```
/// use bios_units::{ConcentrationRange, Molar};
///
/// // The paper's glucose sensor is linear from 0 to 1 mM.
/// let range = ConcentrationRange::new(
///     Molar::ZERO,
///     Molar::from_milli_molar(1.0),
/// )?;
/// assert!(range.contains(Molar::from_micro_molar(500.0)));
/// assert!(!range.contains(Molar::from_milli_molar(2.0)));
/// assert_eq!(range.width().as_milli_molar(), 1.0);
/// # Ok::<(), bios_units::QuantityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcentrationRange {
    low: Molar,
    high: Molar,
}

impl ConcentrationRange {
    /// Creates a range from its bounds.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::InvertedRange`] when `low > high`.
    pub fn new(low: Molar, high: Molar) -> Result<ConcentrationRange> {
        if low > high {
            Err(QuantityError::InvertedRange {
                low: low.as_molar(),
                high: high.as_molar(),
            })
        } else {
            Ok(ConcentrationRange { low, high })
        }
    }

    /// Convenience constructor from bounds in mM.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::InvertedRange`] when `low > high`.
    pub fn from_milli_molar(low: f64, high: f64) -> Result<ConcentrationRange> {
        ConcentrationRange::new(Molar::from_milli_molar(low), Molar::from_milli_molar(high))
    }

    /// Convenience constructor from bounds in µM.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::InvertedRange`] when `low > high`.
    pub fn from_micro_molar(low: f64, high: f64) -> Result<ConcentrationRange> {
        ConcentrationRange::new(Molar::from_micro_molar(low), Molar::from_micro_molar(high))
    }

    /// Lower bound.
    #[must_use]
    pub fn low(&self) -> Molar {
        self.low
    }

    /// Upper bound.
    #[must_use]
    pub fn high(&self) -> Molar {
        self.high
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> Molar {
        self.high - self.low
    }

    /// Whether `c` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, c: Molar) -> bool {
        c >= self.low && c <= self.high
    }

    /// Whether this range entirely contains `other`.
    #[must_use]
    pub fn covers(&self, other: &ConcentrationRange) -> bool {
        self.low <= other.low && self.high >= other.high
    }

    /// Intersection of two ranges, or `None` when disjoint.
    #[must_use]
    pub fn intersection(&self, other: &ConcentrationRange) -> Option<ConcentrationRange> {
        let low = self.low.max(other.low);
        let high = self.high.min(other.high);
        ConcentrationRange::new(low, high).ok()
    }

    /// `n` evenly spaced concentrations from `low` to `high` inclusive.
    ///
    /// The workhorse of calibration sweeps: `n ≥ 2` yields both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — a calibration needs at least two points.
    #[must_use]
    pub fn linspace(&self, n: usize) -> Vec<Molar> {
        assert!(n >= 2, "a concentration sweep needs at least 2 points");
        let lo = self.low.as_molar();
        let hi = self.high.as_molar();
        (0..n)
            .map(|k| Molar::from_molar(lo + (hi - lo) * k as f64 / (n - 1) as f64))
            .collect()
    }

    /// Jaccard-style overlap score with a reference range: intersection
    /// width divided by union width. 1.0 means identical ranges, 0.0 means
    /// disjoint. Used by the harness to score simulated linear ranges
    /// against the paper's.
    #[must_use]
    pub fn overlap_score(&self, reference: &ConcentrationRange) -> f64 {
        let inter = match self.intersection(reference) {
            Some(r) => r.width().as_molar(),
            None => return 0.0,
        };
        let union = self.width().as_molar() + reference.width().as_molar() - inter;
        if union == 0.0 {
            1.0
        } else {
            inter / union
        }
    }
}

impl fmt::Display for ConcentrationRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Use the unit of the upper bound for both ends, as the paper does.
        let hi = self.high.as_molar().abs();
        if hi >= 1e-3 {
            write!(
                f,
                "{:.3} – {:.3} mM",
                self.low.as_milli_molar(),
                self.high.as_milli_molar()
            )
        } else {
            write!(
                f,
                "{:.2} – {:.2} µM",
                self.low.as_micro_molar(),
                self.high.as_micro_molar()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(v: f64) -> Molar {
        Molar::from_milli_molar(v)
    }

    #[test]
    fn rejects_inverted_bounds() {
        assert!(ConcentrationRange::new(mm(2.0), mm(1.0)).is_err());
        assert!(ConcentrationRange::new(mm(1.0), mm(1.0)).is_ok());
    }

    #[test]
    fn contains_and_covers() {
        let outer = ConcentrationRange::from_milli_molar(0.0, 2.0).unwrap();
        let inner = ConcentrationRange::from_milli_molar(0.5, 1.0).unwrap();
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert!(outer.contains(mm(2.0)));
        assert!(!outer.contains(mm(2.0001)));
    }

    #[test]
    fn intersection_of_overlapping_ranges() {
        let a = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let b = ConcentrationRange::from_milli_molar(0.5, 2.0).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.low(), mm(0.5));
        assert_eq!(i.high(), mm(1.0));
        let c = ConcentrationRange::from_milli_molar(3.0, 4.0).unwrap();
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn linspace_hits_endpoints() {
        let r = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let pts = r.linspace(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Molar::ZERO);
        assert!((pts[4].as_milli_molar() - 1.0).abs() < 1e-12);
        assert!((pts[2].as_milli_molar() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn linspace_needs_two_points() {
        let r = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let _ = r.linspace(1);
    }

    #[test]
    fn overlap_score_extremes() {
        let a = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let same = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let disjoint = ConcentrationRange::from_milli_molar(2.0, 3.0).unwrap();
        assert!((a.overlap_score(&same) - 1.0).abs() < 1e-12);
        assert_eq!(a.overlap_score(&disjoint), 0.0);
        let half = ConcentrationRange::from_milli_molar(0.5, 1.0).unwrap();
        assert!((a.overlap_score(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_uses_paper_units() {
        let r = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        assert_eq!(r.to_string(), "0.000 – 1.000 mM");
        let r = ConcentrationRange::from_micro_molar(0.0, 40.0).unwrap();
        assert_eq!(r.to_string(), "0.00 – 40.00 µM");
    }
}

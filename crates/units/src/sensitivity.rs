//! The biosensing figure of merit: area-normalized calibration slope.

use std::fmt;

use crate::electrical::{Amperes, CurrentDensity};
use crate::error::{ensure_non_negative, Result};
use crate::geometry::SquareCm;
use crate::macros::quantity_ops;
use crate::Molar;

/// Sensor sensitivity, µA · mM⁻¹ · cm⁻² — the unit every row of the
/// paper's Table 2 is quoted in.
///
/// Sensitivity is the slope of the calibration curve (current vs
/// concentration) normalized by the electrode's geometric area, which is
/// what makes devices with different electrode sizes comparable.
///
/// # Examples
///
/// ```
/// use bios_units::{Sensitivity, Molar, SquareCm};
///
/// // The paper's glucose sensor: 55.5 µA·mM⁻¹·cm⁻².
/// let s = Sensitivity::new(55.5);
///
/// // Expected current for 1 mM glucose on a 0.25 mm² electrode:
/// let i = s.expected_current(Molar::from_milli_molar(1.0),
///                            SquareCm::from_square_mm(0.25));
/// assert!((i.as_micro_amps() - 55.5 * 0.0025).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Sensitivity(f64);

quantity_ops!(Sensitivity);

impl Sensitivity {
    /// Creates a sensitivity from µA · mM⁻¹ · cm⁻².
    #[must_use]
    pub fn new(micro_amps_per_milli_molar_square_cm: f64) -> Sensitivity {
        Sensitivity(micro_amps_per_milli_molar_square_cm)
    }

    /// Fallible constructor from µA · mM⁻¹ · cm⁻².
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input — a working
    /// sensor has a positive calibration slope.
    pub fn try_new(value: f64) -> Result<Sensitivity> {
        ensure_non_negative("sensitivity", value).map(Sensitivity)
    }

    /// Derives a sensitivity from a raw calibration slope (current per
    /// concentration) and the electrode area.
    #[must_use]
    pub fn from_slope(current_per_milli_molar: Amperes, area: SquareCm) -> Sensitivity {
        Sensitivity(current_per_milli_molar.as_micro_amps() / area.as_square_cm())
    }

    /// Returns the sensitivity in µA · mM⁻¹ · cm⁻².
    #[must_use]
    pub fn as_micro_amps_per_milli_molar_square_cm(self) -> f64 {
        self.0
    }

    /// Predicts the current a sensor with this sensitivity produces for a
    /// given analyte concentration on a given electrode area (valid inside
    /// the linear range).
    #[must_use]
    pub fn expected_current(self, concentration: Molar, area: SquareCm) -> Amperes {
        Amperes::from_micro_amps(self.0 * concentration.as_milli_molar() * area.as_square_cm())
    }

    /// Predicts the current density for a given concentration.
    #[must_use]
    pub fn expected_density(self, concentration: Molar) -> CurrentDensity {
        CurrentDensity::from_micro_amps_per_square_cm(self.0 * concentration.as_milli_molar())
    }

    /// Relative difference from another sensitivity: `|self−other|/other`.
    ///
    /// Used by the experiment harness to score simulated vs paper values.
    #[must_use]
    pub fn relative_error(self, reference: Sensitivity) -> f64 {
        if reference.0 == 0.0 {
            f64::INFINITY
        } else {
            (self.0 - reference.0).abs() / reference.0
        }
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µA·mM⁻¹·cm⁻²", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slope_normalizes_by_area() {
        // 5 µA per mM on a 0.13 cm² SPE → 38.46 µA·mM⁻¹·cm⁻².
        let s = Sensitivity::from_slope(
            Amperes::from_micro_amps(5.0),
            SquareCm::from_square_mm(13.0),
        );
        assert!((s.as_micro_amps_per_milli_molar_square_cm() - 38.4615).abs() < 1e-3);
    }

    #[test]
    fn expected_current_is_linear() {
        let s = Sensitivity::new(55.5);
        let area = SquareCm::from_square_cm(1.0);
        let i1 = s.expected_current(Molar::from_milli_molar(0.5), area);
        let i2 = s.expected_current(Molar::from_milli_molar(1.0), area);
        assert!((i2.as_micro_amps() / i1.as_micro_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_scores() {
        let measured = Sensitivity::new(50.0);
        let paper = Sensitivity::new(55.5);
        assert!((measured.relative_error(paper) - 5.5 / 55.5).abs() < 1e-12);
        assert!(Sensitivity::new(1.0)
            .relative_error(Sensitivity::new(0.0))
            .is_infinite());
    }

    #[test]
    fn validation() {
        assert!(Sensitivity::try_new(-1.0).is_err());
        assert!(Sensitivity::try_new(55.5).is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(Sensitivity::new(55.5).to_string(), "55.500 µA·mM⁻¹·cm⁻²");
    }
}

//! Thermodynamic temperature.

use std::fmt;

use crate::error::{ensure_non_negative, Result};

/// Thermodynamic temperature, stored canonically in kelvin.
///
/// Electrochemical experiments in the paper run at room temperature
/// (25 °C) or physiological temperature (37 °C); both are provided as
/// constants.
///
/// # Examples
///
/// ```
/// use bios_units::Kelvin;
///
/// let t = Kelvin::from_celsius(25.0);
/// assert!((t.as_kelvin() - 298.15).abs() < 1e-9);
/// assert!(t < Kelvin::PHYSIOLOGICAL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Standard laboratory room temperature, 25 °C.
    pub const ROOM: Kelvin = Kelvin(298.15);

    /// Human physiological temperature, 37 °C.
    pub const PHYSIOLOGICAL: Kelvin = Kelvin(310.15);

    /// Creates a temperature from kelvin.
    #[must_use]
    pub fn from_kelvin(kelvin: f64) -> Kelvin {
        Kelvin(kelvin)
    }

    /// Creates a temperature from degrees Celsius.
    #[must_use]
    pub fn from_celsius(celsius: f64) -> Kelvin {
        Kelvin(celsius + 273.15)
    }

    /// Fallible constructor from kelvin.
    ///
    /// # Errors
    ///
    /// Returns an error for negative (below absolute zero) or non-finite
    /// input.
    pub fn try_from_kelvin(kelvin: f64) -> Result<Kelvin> {
        ensure_non_negative("temperature", kelvin).map(Kelvin)
    }

    /// Returns the temperature in kelvin.
    #[must_use]
    pub fn as_kelvin(self) -> f64 {
        self.0
    }

    /// Returns the temperature in degrees Celsius.
    #[must_use]
    pub fn as_celsius(self) -> f64 {
        self.0 - 273.15
    }
}

impl Default for Kelvin {
    /// Defaults to room temperature, the paper's experimental condition.
    fn default() -> Kelvin {
        Kelvin::ROOM
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.as_celsius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Kelvin::from_celsius(37.0);
        assert!((t.as_celsius() - 37.0).abs() < 1e-12);
        assert_eq!(t, Kelvin::PHYSIOLOGICAL);
    }

    #[test]
    fn default_is_room() {
        assert_eq!(Kelvin::default(), Kelvin::ROOM);
    }

    #[test]
    fn absolute_zero_is_floor() {
        assert!(Kelvin::try_from_kelvin(-1.0).is_err());
        assert!(Kelvin::try_from_kelvin(0.0).is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(Kelvin::ROOM.to_string(), "25.00 °C");
    }
}

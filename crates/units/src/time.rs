//! Time quantity.

use std::fmt;

use crate::error::{ensure_non_negative, Result};
use crate::macros::quantity_ops;

/// Time, stored canonically in seconds.
///
/// # Examples
///
/// ```
/// use bios_units::Seconds;
///
/// let settle = Seconds::from_millis(250.0);
/// assert_eq!(settle.as_seconds(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

quantity_ops!(Seconds);

impl Seconds {
    /// Zero time.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a time from seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Seconds {
        Seconds(seconds)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub fn from_millis(millis: f64) -> Seconds {
        Seconds(millis * 1e-3)
    }

    /// Creates a time from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Seconds {
        Seconds(minutes * 60.0)
    }

    /// Fallible constructor from seconds.
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite input.
    pub fn try_from_seconds(seconds: f64) -> Result<Seconds> {
        ensure_non_negative("time", seconds).map(Seconds)
    }

    /// Returns the time in seconds.
    #[must_use]
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 && self.0 != 0.0 {
            write!(f, "{:.1} ms", self.as_millis())
        } else {
            write!(f, "{:.3} s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ladder() {
        assert_eq!(Seconds::from_minutes(2.0).as_seconds(), 120.0);
        assert_eq!(Seconds::from_millis(1500.0).as_seconds(), 1.5);
    }

    #[test]
    fn validation() {
        assert!(Seconds::try_from_seconds(-1.0).is_err());
        assert!(Seconds::try_from_seconds(0.0).is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(Seconds::from_seconds(2.0).to_string(), "2.000 s");
        assert_eq!(Seconds::from_millis(5.0).to_string(), "5.0 ms");
    }
}

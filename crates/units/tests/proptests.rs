//! Property tests for the quantity newtypes: conversions are exact
//! inverses, arithmetic is linear, ordering follows magnitude.

use proptest::prelude::*;

use bios_units::{
    Amperes, Centimeters, ConcentrationRange, Kelvin, Molar, Ohms, ScanRate, Seconds,
    Sensitivity, SquareCm, Volts,
};

fn finite_positive() -> impl Strategy<Value = f64> {
    // Values spanning the magnitudes the platform actually uses.
    (1e-9f64..1e6).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn molar_unit_ladder_round_trips(v in finite_positive()) {
        let c = Molar::from_milli_molar(v);
        prop_assert!((c.as_micro_molar() / 1e3 - v).abs() <= v * 1e-12);
        prop_assert!((c.as_nano_molar() / 1e6 - v).abs() <= v * 1e-12);
        prop_assert!((Molar::from_micro_molar(c.as_micro_molar()).as_milli_molar() - v).abs()
            <= v * 1e-12);
    }

    #[test]
    fn amperes_unit_ladder_round_trips(v in finite_positive()) {
        let i = Amperes::from_nano_amps(v);
        prop_assert!((i.as_micro_amps() * 1e3 - v).abs() <= v * 1e-9);
        prop_assert!((Amperes::from_micro_amps(i.as_micro_amps()).as_nano_amps() - v).abs()
            <= v * 1e-9);
    }

    #[test]
    fn addition_is_commutative_and_linear(a in finite_positive(), b in finite_positive()) {
        let x = Molar::from_milli_molar(a);
        let y = Molar::from_milli_molar(b);
        prop_assert_eq!(x + y, y + x);
        prop_assert!(((x + y).as_milli_molar() - (a + b)).abs() <= (a + b) * 1e-12);
    }

    #[test]
    fn scalar_multiplication_scales(v in finite_positive(), k in 0.1f64..100.0) {
        let i = Amperes::from_micro_amps(v);
        let scaled = i * k;
        prop_assert!((scaled.as_micro_amps() - v * k).abs() <= (v * k) * 1e-12);
        prop_assert_eq!(k * i, scaled);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless(a in finite_positive(), b in finite_positive()) {
        let r = SquareCm::from_square_cm(a) / SquareCm::from_square_cm(b);
        prop_assert!((r - a / b).abs() <= (a / b) * 1e-12);
    }

    #[test]
    fn ordering_follows_magnitude(a in finite_positive(), b in finite_positive()) {
        let x = Volts::from_milli_volts(a);
        let y = Volts::from_milli_volts(b);
        prop_assert_eq!(x < y, a < b);
        // Conversion round trips can cost an ULP, so compare with slack.
        let eps = a.max(b) * 1e-12;
        prop_assert!((x.max(y).as_milli_volts() - a.max(b)).abs() <= eps);
        prop_assert!((x.min(y).as_milli_volts() - a.min(b)).abs() <= eps);
    }

    #[test]
    fn current_density_round_trips_through_area(
        i in finite_positive(),
        area in 1e-4f64..10.0,
    ) {
        let current = Amperes::from_micro_amps(i);
        let a = SquareCm::from_square_cm(area);
        let back = (current / a).over_area(a);
        prop_assert!((back.as_micro_amps() - i).abs() <= i * 1e-12);
    }

    #[test]
    fn sensitivity_prediction_is_linear_in_concentration(
        s in 0.1f64..2000.0,
        c in 1e-4f64..10.0,
    ) {
        let sens = Sensitivity::new(s);
        let area = SquareCm::from_square_cm(1.0);
        let i1 = sens.expected_current(Molar::from_milli_molar(c), area);
        let i2 = sens.expected_current(Molar::from_milli_molar(2.0 * c), area);
        prop_assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_is_zero_iff_equal(s in 0.1f64..2000.0) {
        let a = Sensitivity::new(s);
        prop_assert!(a.relative_error(a) < 1e-15);
        let b = Sensitivity::new(s * 1.5);
        prop_assert!((b.relative_error(a) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn range_linspace_is_sorted_and_bounded(
        lo in 0.0f64..5.0,
        width in 0.001f64..10.0,
        n in 2usize..60,
    ) {
        let range = ConcentrationRange::from_milli_molar(lo, lo + width).unwrap();
        let pts = range.linspace(n);
        prop_assert_eq!(pts.len(), n);
        prop_assert!(pts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((pts[0].as_milli_molar() - lo).abs() < 1e-9);
        prop_assert!((pts[n - 1].as_milli_molar() - (lo + width)).abs() < 1e-9);
        for p in &pts {
            prop_assert!(range.contains(*p) || (p.as_milli_molar() - (lo + width)).abs() < 1e-9);
        }
    }

    #[test]
    fn overlap_score_is_symmetric_and_bounded(
        a_lo in 0.0f64..2.0, a_w in 0.01f64..3.0,
        b_lo in 0.0f64..2.0, b_w in 0.01f64..3.0,
    ) {
        let a = ConcentrationRange::from_milli_molar(a_lo, a_lo + a_w).unwrap();
        let b = ConcentrationRange::from_milli_molar(b_lo, b_lo + b_w).unwrap();
        let ab = a.overlap_score(&b);
        let ba = b.overlap_score(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn celsius_kelvin_round_trip(t in -50.0f64..200.0) {
        let k = Kelvin::from_celsius(t);
        prop_assert!((k.as_celsius() - t).abs() < 1e-9);
    }

    #[test]
    fn ohms_law_linearity(r in 1.0f64..1e7, i in 1e-9f64..1e-3) {
        let v = Ohms::from_ohms(r).voltage_for(Amperes::from_amps(i));
        prop_assert!((v.as_volts() - r * i).abs() <= (r * i) * 1e-12);
    }

    #[test]
    fn seconds_and_scan_rate_compose(rate in 1.0f64..1000.0, t in 0.001f64..100.0) {
        // A sweep at `rate` mV/s for `t` seconds travels rate·t mV.
        let sr = ScanRate::from_milli_volts_per_second(rate);
        let dt = Seconds::from_seconds(t);
        let travel = sr.as_milli_volts_per_second() * dt.as_seconds();
        prop_assert!((travel - rate * t).abs() <= (rate * t) * 1e-12);
    }

    #[test]
    fn length_squared_matches_area(l in 1e-4f64..10.0) {
        let cm = Centimeters::from_cm(l);
        prop_assert!((cm.squared().as_square_cm() - l * l).abs() <= l * l * 1e-12);
    }

    #[test]
    fn negative_concentrations_rejected(v in finite_positive()) {
        prop_assert!(Molar::try_from_molar(-v).is_err());
        prop_assert!(Molar::try_from_molar(v).is_ok());
    }
}

//! Property tests for the quantity newtypes: conversions are exact
//! inverses, arithmetic is linear, ordering follows magnitude.
//! Sampled deterministically via `bios_prng::cases` (offline build —
//! no property-testing framework available).

use bios_prng::cases;
use bios_units::{
    Amperes, Centimeters, ConcentrationRange, Kelvin, Molar, Ohms, ScanRate, Seconds, Sensitivity,
    SquareCm, Volts,
};

/// Values spanning the magnitudes the platform actually uses.
fn finite_positive(rng: &mut bios_prng::Rng) -> f64 {
    rng.log_uniform_in(1e-9, 1e6)
}

#[test]
fn molar_unit_ladder_round_trips() {
    cases(0x0001, 64, |rng| {
        let v = finite_positive(rng);
        let c = Molar::from_milli_molar(v);
        assert!((c.as_micro_molar() / 1e3 - v).abs() <= v * 1e-12);
        assert!((c.as_nano_molar() / 1e6 - v).abs() <= v * 1e-12);
        assert!(
            (Molar::from_micro_molar(c.as_micro_molar()).as_milli_molar() - v).abs() <= v * 1e-12
        );
    });
}

#[test]
fn amperes_unit_ladder_round_trips() {
    cases(0x0002, 64, |rng| {
        let v = finite_positive(rng);
        let i = Amperes::from_nano_amps(v);
        assert!((i.as_micro_amps() * 1e3 - v).abs() <= v * 1e-9);
        assert!((Amperes::from_micro_amps(i.as_micro_amps()).as_nano_amps() - v).abs() <= v * 1e-9);
    });
}

#[test]
fn addition_is_commutative_and_linear() {
    cases(0x0003, 64, |rng| {
        let (a, b) = (finite_positive(rng), finite_positive(rng));
        let x = Molar::from_milli_molar(a);
        let y = Molar::from_milli_molar(b);
        assert_eq!(x + y, y + x);
        assert!(((x + y).as_milli_molar() - (a + b)).abs() <= (a + b) * 1e-12);
    });
}

#[test]
fn scalar_multiplication_scales() {
    cases(0x0004, 64, |rng| {
        let v = finite_positive(rng);
        let k = rng.uniform_in(0.1, 100.0);
        let i = Amperes::from_micro_amps(v);
        let scaled = i * k;
        assert!((scaled.as_micro_amps() - v * k).abs() <= (v * k) * 1e-12);
        assert_eq!(k * i, scaled);
    });
}

#[test]
fn ratio_of_like_quantities_is_dimensionless() {
    cases(0x0005, 64, |rng| {
        let (a, b) = (finite_positive(rng), finite_positive(rng));
        let r = SquareCm::from_square_cm(a) / SquareCm::from_square_cm(b);
        assert!((r - a / b).abs() <= (a / b) * 1e-12);
    });
}

#[test]
fn ordering_follows_magnitude() {
    cases(0x0006, 64, |rng| {
        let (a, b) = (finite_positive(rng), finite_positive(rng));
        let x = Volts::from_milli_volts(a);
        let y = Volts::from_milli_volts(b);
        assert_eq!(x < y, a < b);
        // Conversion round trips can cost an ULP, so compare with slack.
        let eps = a.max(b) * 1e-12;
        assert!((x.max(y).as_milli_volts() - a.max(b)).abs() <= eps);
        assert!((x.min(y).as_milli_volts() - a.min(b)).abs() <= eps);
    });
}

#[test]
fn current_density_round_trips_through_area() {
    cases(0x0007, 64, |rng| {
        let i = finite_positive(rng);
        let area = rng.log_uniform_in(1e-4, 10.0);
        let current = Amperes::from_micro_amps(i);
        let a = SquareCm::from_square_cm(area);
        let back = (current / a).over_area(a);
        assert!((back.as_micro_amps() - i).abs() <= i * 1e-12);
    });
}

#[test]
fn sensitivity_prediction_is_linear_in_concentration() {
    cases(0x0008, 64, |rng| {
        let s = rng.uniform_in(0.1, 2000.0);
        let c = rng.log_uniform_in(1e-4, 10.0);
        let sens = Sensitivity::new(s);
        let area = SquareCm::from_square_cm(1.0);
        let i1 = sens.expected_current(Molar::from_milli_molar(c), area);
        let i2 = sens.expected_current(Molar::from_milli_molar(2.0 * c), area);
        assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-9);
    });
}

#[test]
fn relative_error_is_zero_iff_equal() {
    cases(0x0009, 64, |rng| {
        let s = rng.uniform_in(0.1, 2000.0);
        let a = Sensitivity::new(s);
        assert!(a.relative_error(a) < 1e-15);
        let b = Sensitivity::new(s * 1.5);
        assert!((b.relative_error(a) - 0.5).abs() < 1e-9);
    });
}

#[test]
fn range_linspace_is_sorted_and_bounded() {
    cases(0x000A, 64, |rng| {
        let lo = rng.uniform_in(0.0, 5.0);
        let width = rng.uniform_in(0.001, 10.0);
        let n = rng.index_in(2, 60);
        let range = ConcentrationRange::from_milli_molar(lo, lo + width).unwrap();
        let pts = range.linspace(n);
        assert_eq!(pts.len(), n);
        assert!(pts.windows(2).all(|w| w[0] <= w[1]));
        assert!((pts[0].as_milli_molar() - lo).abs() < 1e-9);
        assert!((pts[n - 1].as_milli_molar() - (lo + width)).abs() < 1e-9);
        for p in &pts {
            assert!(range.contains(*p) || (p.as_milli_molar() - (lo + width)).abs() < 1e-9);
        }
    });
}

#[test]
fn overlap_score_is_symmetric_and_bounded() {
    cases(0x000B, 64, |rng| {
        let a_lo = rng.uniform_in(0.0, 2.0);
        let a_w = rng.uniform_in(0.01, 3.0);
        let b_lo = rng.uniform_in(0.0, 2.0);
        let b_w = rng.uniform_in(0.01, 3.0);
        let a = ConcentrationRange::from_milli_molar(a_lo, a_lo + a_w).unwrap();
        let b = ConcentrationRange::from_milli_molar(b_lo, b_lo + b_w).unwrap();
        let ab = a.overlap_score(&b);
        let ba = b.overlap_score(&a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    });
}

#[test]
fn celsius_kelvin_round_trip() {
    cases(0x000C, 64, |rng| {
        let t = rng.uniform_in(-50.0, 200.0);
        let k = Kelvin::from_celsius(t);
        assert!((k.as_celsius() - t).abs() < 1e-9);
    });
}

#[test]
fn ohms_law_linearity() {
    cases(0x000D, 64, |rng| {
        let r = rng.log_uniform_in(1.0, 1e7);
        let i = rng.log_uniform_in(1e-9, 1e-3);
        let v = Ohms::from_ohms(r).voltage_for(Amperes::from_amps(i));
        assert!((v.as_volts() - r * i).abs() <= (r * i) * 1e-12);
    });
}

#[test]
fn seconds_and_scan_rate_compose() {
    cases(0x000E, 64, |rng| {
        // A sweep at `rate` mV/s for `t` seconds travels rate·t mV.
        let rate = rng.uniform_in(1.0, 1000.0);
        let t = rng.log_uniform_in(0.001, 100.0);
        let sr = ScanRate::from_milli_volts_per_second(rate);
        let dt = Seconds::from_seconds(t);
        let travel = sr.as_milli_volts_per_second() * dt.as_seconds();
        assert!((travel - rate * t).abs() <= (rate * t) * 1e-12);
    });
}

#[test]
fn length_squared_matches_area() {
    cases(0x000F, 64, |rng| {
        let l = rng.log_uniform_in(1e-4, 10.0);
        let cm = Centimeters::from_cm(l);
        assert!((cm.squared().as_square_cm() - l * l).abs() <= l * l * 1e-12);
    });
}

#[test]
fn negative_concentrations_rejected() {
    cases(0x0010, 64, |rng| {
        let v = finite_positive(rng);
        assert!(Molar::try_from_molar(-v).is_err());
        assert!(Molar::try_from_molar(v).is_ok());
    });
}

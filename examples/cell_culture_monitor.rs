//! Multi-metabolite cell-culture monitoring — the use case of the
//! authors' earlier work ([4], [5]) that the 5-electrode platform was
//! built for: tracking glucose consumption and lactate/glutamate
//! production of a neural culture over 48 hours.
//!
//! Run with: `cargo run --example cell_culture_monitor`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::core::catalog;
use biosim::core::platform::SensingPlatform;
use biosim::prelude::*;

/// A toy metabolic model of the culture: glucose is consumed with
/// first-order kinetics, ~90 % of it reappearing as lactate; glutamate
/// accumulates slowly from medium turnover.
fn culture_state(hours: f64) -> Sample {
    let glucose0 = 10.0; // mM
    let consumed = glucose0 * (1.0 - (-hours / 30.0).exp());
    Sample::blank()
        .with_analyte(
            Analyte::Glucose,
            Molar::from_milli_molar(glucose0 - consumed),
        )
        .with_analyte(
            Analyte::Lactate,
            Molar::from_milli_molar(0.9 * consumed * 2.0 / 10.0),
        )
        .with_analyte(
            Analyte::Glutamate,
            Molar::from_micro_molar(20.0 + 6.0 * hours),
        )
}

fn main() -> Result<(), CoreError> {
    // Mount the three metabolite channels of the paper's chip. The
    // remaining two channels stay free (the platform is modular).
    let mut chip = SensingPlatform::epfl_chip(2024);
    chip.mount(0, catalog::our_glucose_sensor().build_sensor())?;
    chip.mount(1, catalog::our_lactate_sensor().build_sensor())?;
    chip.mount(2, catalog::our_glutamate_sensor().build_sensor())?;

    println!("== 48 h neural-culture monitoring on the 5-WE chip ==\n");
    println!(
        "{:>5}  {:>12}  {:>12}  {:>12}",
        "hour", "glucose", "lactate", "glutamate"
    );

    for hour in (0..=48).step_by(6) {
        // The medium is diluted 1:10 before measurement so glucose and
        // lactate stay inside the sensors' 0–1 mM linear ranges.
        let sample = culture_state(f64::from(hour)).diluted(10.0);
        let readings = chip.measure_all(&sample);
        let mut row = format!("{hour:>5}");
        for r in &readings {
            row.push_str(&format!("  {:>12}", r.current.to_string()));
        }
        println!("{row}");
    }

    println!(
        "\nThe glucose channel's current falls as the culture consumes\n\
         glucose while the lactate channel's rises — the crossing is the\n\
         metabolic-shift signature the authors monitor in [5]."
    );

    // Verify the trend numerically: glucose current must fall, lactate
    // must rise over the run.
    let first = culture_state(0.0).diluted(10.0);
    let last = culture_state(48.0).diluted(10.0);
    let g0 = chip.measure(0, &first)?.current;
    let g1 = chip.measure(0, &last)?.current;
    let l0 = chip.measure(1, &first)?.current;
    let l1 = chip.measure(1, &last)?.current;
    assert!(g1 < g0, "glucose signal should fall");
    assert!(l1 > l0, "lactate signal should rise");
    println!("trend check: glucose {g0} -> {g1}, lactate {l0} -> {l1}");
    Ok(())
}

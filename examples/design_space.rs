//! Design-space exploration: the miniaturization / integration argument
//! of the paper's introduction, made quantitative.
//!
//! §1 claims that (a) integrating the readout next to the sensor improves
//! SNR and (b) shrinking the electrode enables dense arrays at the cost
//! of absolute signal. This example sweeps electrode area × readout
//! electronics and reports the detection limit of each design point.
//!
//! Run with: `cargo run --example design_space`

// An example reports on stdout by design, and aborting with a clear
// message is its right failure mode.
#![allow(clippy::print_stdout, clippy::expect_used)]

use biosim::analytics::report::TextTable;
use biosim::core::protocol::{CalibrationProtocol, Chronoamperometry};
use biosim::core::sensor::{Biosensor, Technique};
use biosim::enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
use biosim::nanomaterial::{Electrode, ElectrodeMaterial, ElectrodeRole, SurfaceModification};
use biosim::prelude::*;
use biosim::units::SurfaceLoading;

fn sensor_with_area(area: SquareCm) -> Biosensor {
    let film = EnzymeFilm::builder()
        .loading(SurfaceLoading::from_pico_mol_per_square_cm(8.0))
        .retained_activity(1.0)
        .km_shift(1.4)
        .build();
    Biosensor::builder("design-point glucose sensor", Analyte::Glucose)
        .electrode(Electrode::new(
            ElectrodeMaterial::Gold,
            area,
            ElectrodeRole::Working,
        ))
        .modification(SurfaceModification::mwcnt_nafion())
        .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
        .technique(Technique::paper_chronoamperometry())
        .build()
}

fn main() -> Result<(), CoreError> {
    println!("== Electrode area × readout electronics design sweep ==\n");
    let areas_mm2 = [13.0, 2.0, 0.25, 0.05];
    type ChainFactory = fn(u64) -> ReadoutChain;
    let readouts: [(&str, ChainFactory); 3] = [
        ("benchtop", ReadoutChain::benchtop),
        ("integrated CMOS", ReadoutChain::integrated_cmos),
        ("low-cost reader", ReadoutChain::low_cost),
    ];

    let mut table = TextTable::new(vec![
        "area (mm²)",
        "readout",
        "sensitivity",
        "LOD (µM)",
        "max current",
    ]);
    let sweep = ConcentrationRange::from_milli_molar(0.0, 1.0).map_err(CoreError::from)?;

    let mut lod_by_readout: Vec<(String, f64)> = Vec::new();
    for &mm2 in &areas_mm2 {
        let sensor = sensor_with_area(SquareCm::from_square_mm(mm2));
        for (name, make) in &readouts {
            let mut chain = make(17).auto_ranged_for(sensor.faradaic_current(sweep.high()) * 1.3);
            let curve =
                Chronoamperometry::default().calibrate_over(&sensor, &mut chain, &sweep, 15);
            let summary = curve.summary(&Default::default())?;
            table.add_row(vec![
                format!("{mm2}"),
                (*name).to_owned(),
                format!("{}", summary.sensitivity),
                format!("{:.2}", summary.detection_limit.as_micro_molar()),
                format!("{}", sensor.faradaic_current(sweep.high())),
            ]);
            if (mm2 - 0.25).abs() < 1e-9 {
                lod_by_readout.push(((*name).to_owned(), summary.detection_limit.as_micro_molar()));
            }
        }
    }
    println!("{}", table.render());

    // The §1 claim, checked on the paper's 0.25 mm² electrode size:
    // integrated CMOS beats the low-cost reader on detection limit.
    let lod = |name: &str| {
        lod_by_readout
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| *l)
            .expect("design point present")
    };
    let cmos = lod("integrated CMOS");
    let cheap = lod("low-cost reader");
    println!("at 0.25 mm²: integrated CMOS LOD {cmos:.2} µM vs low-cost {cheap:.2} µM");
    assert!(
        cmos < cheap,
        "integration should improve the detection limit"
    );
    println!(
        "\nSmaller electrodes trade absolute current for array density;\n\
         quieter, co-integrated electronics buy the detection limit back —\n\
         the platform argument of §1/§2.5 in numbers."
    );
    Ok(())
}

//! The personalized-therapy scenario of the paper's introduction:
//! monitoring anticancer drug levels in a patient sample with the
//! multi-panel CYP450 platform.
//!
//! Mounts all four CYP sensors on screen-printed electrodes, calibrates
//! the whole panel concurrently through the fleet runtime, then
//! quantifies an unknown "patient" cocktail of cyclophosphamide +
//! ifosfamide by inverting the calibration fits.
//!
//! Run with: `cargo run --example drug_panel`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::core::catalog;
use biosim::prelude::*;
use biosim::runtime::JobError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Multi-panel anticancer drug monitoring ==\n");

    // A patient sample after combination chemotherapy (unknown to the
    // quantification step).
    let truth_cp = Molar::from_micro_molar(35.0);
    let truth_ifo = Molar::from_micro_molar(60.0);
    let patient = Sample::physiological_serum()
        .with_analyte(Analyte::Cyclophosphamide, truth_cp)
        .with_analyte(Analyte::Ifosfamide, truth_ifo);

    // Calibrate every channel of the panel in one fleet run: the four
    // CYP sensors fan out across the runtime's workers and come back
    // with per-job error reporting.
    let runtime = Runtime::new(RuntimeConfig::from_env());
    let fleet = Fleet::builder("cyp-panel")
        .sensors(catalog::cyp_sensors())
        .seed(7)
        .build();
    let panel: FleetReport = runtime.run(&fleet);
    println!(
        "panel calibrated: {} channels on {} workers in {:?}\n",
        fleet.len(),
        panel.workers,
        panel.elapsed
    );
    for (result, error) in panel.failures() {
        eprintln!("channel {} failed: {error}", result.sensor);
    }

    for entry in catalog::cyp_sensors() {
        let outcome = panel
            .outcome(entry.id(), 7)
            .ok_or_else(|| JobError::Panicked(format!("channel {} missing", entry.id())))?;
        let fit_sensitivity = outcome.summary.sensitivity;

        // Measure the patient sample on the calibrated channel.
        let sensor = entry.build_sensor();
        let mut chain = entry.build_readout(99);
        let current = chain.digitize(sensor.respond_to_sample(&patient));

        // Invert: concentration = current / (sensitivity × area).
        let slope_micro_amps_per_milli_molar = fit_sensitivity
            .as_micro_amps_per_milli_molar_square_cm()
            * sensor.electrode().area().as_square_cm();
        let estimated = Molar::from_milli_molar(
            (current.as_micro_amps() / slope_micro_amps_per_milli_molar).max(0.0),
        );

        let true_level = patient.concentration(entry.analyte());
        println!("{:<22} ({})", entry.label(), entry.analyte());
        println!("  calibrated sensitivity: {fit_sensitivity}");
        println!(
            "  LOD:                    {}",
            outcome.summary.detection_limit
        );
        println!("  channel current:        {current}");
        if true_level.as_molar() > 0.0 {
            let err = (estimated.as_micro_molar() - true_level.as_micro_molar())
                / true_level.as_micro_molar();
            println!(
                "  estimated {:.1} µM vs true {:.1} µM ({:+.1}%)",
                estimated.as_micro_molar(),
                true_level.as_micro_molar(),
                err * 100.0
            );
        } else {
            println!(
                "  estimated {:.2} µM (drug absent — reading is noise, \
                 below LOD {})",
                estimated.as_micro_molar(),
                outcome.summary.detection_limit
            );
        }
        println!();
    }

    // External calibration under-reads in serum (matrix suppression);
    // standard addition on the sample itself removes the bias.
    println!("== Matrix correction by standard addition (CP channel) ==\n");
    let Some(entry) = catalog::cyp_sensors()
        .into_iter()
        .find(|e| e.analyte() == Analyte::Cyclophosphamide)
    else {
        eprintln!("catalog has no cyclophosphamide sensor");
        return Ok(());
    };
    let sensor = entry.build_sensor();
    let mut chain = entry.build_readout(123);
    use biosim::analytics::standard_addition::{estimate_unknown, Addition};
    let series: Vec<Addition> = [0.0, 20.0, 40.0, 60.0]
        .iter()
        .map(|&spike| {
            let total = Molar::from_micro_molar(truth_cp.as_micro_molar() + spike);
            let spiked = patient
                .clone()
                .with_analyte(Analyte::Cyclophosphamide, total);
            Addition {
                added: Molar::from_micro_molar(spike),
                signal: chain.digitize(sensor.respond_to_sample(&spiked)),
            }
        })
        .collect();
    let corrected = estimate_unknown(&series).map_err(CoreError::from)?;
    println!(
        "standard-addition estimate: {:.1} µM vs true {:.1} µM ({:+.1}%)\n",
        corrected.as_micro_molar(),
        truth_cp.as_micro_molar(),
        (corrected.as_micro_molar() / truth_cp.as_micro_molar() - 1.0) * 100.0
    );

    println!(
        "Therapy guidance: a clinician would titrate the next dose from\n\
         the measured drug levels instead of the population mean — the\n\
         personalized-medicine loop the paper motivates."
    );
    Ok(())
}

//! Renders the "hysteresis plot" of a CYP450 drug sensor — the cyclic
//! voltammogram the paper reads drug concentrations from (§3.1) — as an
//! ASCII chart, at three cyclophosphamide levels.
//!
//! Run with: `cargo run --example hysteresis`

// An example reports on stdout by design, and aborting with a clear
// message is its right failure mode.
#![allow(clippy::print_stdout, clippy::expect_used)]

use biosim::core::catalog;
use biosim::electrochem::voltammetry::Voltammogram;
use biosim::prelude::*;

/// Plots current vs potential as a coarse ASCII raster.
fn ascii_plot(vg: &Voltammogram, width: usize, height: usize) -> String {
    let pts = vg.points();
    let (mut e_lo, mut e_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut i_lo, mut i_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in pts {
        e_lo = e_lo.min(p.potential.as_volts());
        e_hi = e_hi.max(p.potential.as_volts());
        i_lo = i_lo.min(p.current.as_amps());
        i_hi = i_hi.max(p.current.as_amps());
    }
    let mut grid = vec![vec![b' '; width]; height];
    for p in pts {
        let x = ((p.potential.as_volts() - e_lo) / (e_hi - e_lo) * (width - 1) as f64) as usize;
        let y = ((p.current.as_amps() - i_lo) / (i_hi - i_lo) * (height - 1) as f64) as usize;
        grid[height - 1 - y][x] = b'*';
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "E: {:.0}..{:.0} mV   i: {:.2}..{:.2} µA\n",
        e_lo * 1e3,
        e_hi * 1e3,
        i_lo * 1e6,
        i_hi * 1e6
    ));
    out
}

fn main() {
    let entry = catalog::cyp_sensors()
        .into_iter()
        .find(|e| e.analyte() == Analyte::Cyclophosphamide)
        .expect("CP sensor in catalog");
    let sensor = entry.build_sensor();

    for micro_molar in [0.0, 30.0, 60.0] {
        let vg = sensor
            .synthesize_voltammogram(Molar::from_micro_molar(micro_molar))
            .expect("CYP sensor synthesizes CVs");
        println!("== cyclophosphamide {micro_molar} µM ==");
        println!("{}", ascii_plot(&vg, 72, 16));
        let cathodic = vg.cathodic_peak().expect("peak exists");
        println!(
            "cathodic peak: {} at {}   loop area: {:.3e} V·A\n",
            cathodic.current,
            cathodic.potential,
            vg.hysteresis_area()
        );
    }
    println!(
        "The cathodic (catalytic) peak deepens with drug level — the\n\
         peak-height-vs-concentration readout of the paper's Table 2 CYP rows."
    );
}

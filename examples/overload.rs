//! Surviving overload: a hospital-ward monitoring fleet hit by a
//! traffic burst, run through the gateway's admission-control /
//! circuit-breaker / brownout front door instead of straight into the
//! runtime.
//!
//! The scenario: two wards stream calibration requests for their
//! bedside panels. Ward A's lactate channels have a poisoned batch of
//! strips (every run fails), and a shift change compresses arrivals
//! into bursts. Without the gateway the runtime would grind through
//! everything late; with it, the lactate family is cut off after a few
//! failures, burst overflow is rejected explicitly, and queue pressure
//! downgrades sweep resolution instead of dropping patients' readings.
//!
//! Run with: `cargo run --example overload`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::core::catalog;
use biosim::gateway::{
    BreakerConfig, Disposition, Gateway, GatewayConfig, Quality, Rejected, TokenBucket,
};
use biosim::prelude::*;

fn main() {
    let runtime = Runtime::new(RuntimeConfig::from_env());
    let gateway = Gateway::new(
        GatewayConfig {
            queue_capacity: 8,
            service_slots: 2,
            bucket_capacity_milli: 5 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: TokenBucket::WHOLE_TOKEN,
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ticks: 8,
                probe_quota: 1,
            },
            ..GatewayConfig::default()
        },
        runtime,
    );

    // A bursty shift-change trace: the TrafficBurst fault spec
    // compresses the arrival schedule exactly as it would a real one —
    // deterministically, from the plan seed.
    let plan = FaultPlan::builder("shift-change", 0xED)
        .spec(FaultKind::TrafficBurst, 0.2, 0.9)
        .build();
    let poisoned_lactate = catalog::our_lactate_sensor().with_sweep_points(2);
    let pairs: Vec<(catalog::CatalogEntry, u64)> = (0..36)
        .map(|i| {
            if i % 5 == 2 {
                (poisoned_lactate.clone(), i)
            } else {
                (catalog::our_glucose_sensor(), i)
            }
        })
        .collect();
    let mut trace = gateway.trace_from_plan(&plan, &pairs, "ward-a", 3);
    for req in trace.iter_mut().skip(1).step_by(2) {
        req.tenant = "ward-b".to_string();
    }

    let report = gateway.run(&trace);

    println!(
        "shift change: {} requests, drained at tick {}\n",
        trace.len(),
        report.drained_tick
    );
    for outcome in &report.outcomes {
        match &outcome.disposition {
            Disposition::Executed {
                quality,
                done_tick,
                result,
                ..
            } => {
                let verdict = match (&result.outcome, quality) {
                    (Err(_), _) => "FAILED (fed to the family breaker)",
                    (Ok(_), Quality::Degraded) => "BROWNED OUT (coarser sweep)",
                    (Ok(_), Quality::Full) => "ok",
                };
                println!(
                    "  #{:02} {} {:<16} {verdict} at t{}",
                    outcome.id, outcome.tenant, outcome.sensor, done_tick
                );
            }
            Disposition::Rejected(Rejected::BreakerOpen) => println!(
                "  #{:02} {} {:<16} breaker open — family cut off",
                outcome.id, outcome.tenant, outcome.sensor
            ),
            Disposition::Rejected(reason) => println!(
                "  #{:02} {} {:<16} rejected: {reason}",
                outcome.id, outcome.tenant, outcome.sensor
            ),
        }
    }
    println!("\ncounters: {}", report.counters);
    println!(
        "every request accounted for: {}",
        if report.clean_drain() { "yes" } else { "NO" }
    );
}

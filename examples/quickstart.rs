//! Quickstart: build the paper's glucose biosensor, calibrate it, and
//! print its figures of merit next to the published Table 2 row.
//!
//! Run with: `cargo run --example quickstart`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. Pick the paper's own glucose sensor from the catalog:
    //    MWCNT/Nafion film + glucose oxidase on a 0.25 mm² Au
    //    microelectrode, chronoamperometric readout at +650 mV.
    let entry = catalog::our_glucose_sensor();
    println!("sensor:  {}", entry.label());
    println!("analyte: {}", entry.analyte());

    // 2. Inspect the composed device.
    let sensor = entry.build_sensor();
    println!(
        "electrode: {} ({})",
        sensor.electrode().material(),
        sensor.electrode().area()
    );
    println!("film: {}", sensor.modification());
    println!(
        "model sensitivity: {} (paper: {})",
        sensor.model_sensitivity(),
        entry.paper().sensitivity
    );

    // 3. Run a full simulated calibration: standard additions, settling,
    //    replicate sampling through the noisy readout chain, regression,
    //    linear-range detection, and the 3σ detection limit.
    let outcome = entry.run_calibration(42)?;
    let s = outcome.summary;
    println!(
        "\nsimulated calibration ({} standards):",
        entry.sweep_points()
    );
    println!("  sensitivity:  {}", s.sensitivity);
    println!("  linear range: {}", s.linear_range);
    println!("  LOD:          {}", s.detection_limit);
    println!("  R²:           {:.5}", s.r_squared);

    // 4. Predict the current for a physiological sample.
    let serum = Sample::physiological_serum();
    let current = sensor.respond_to_sample(&serum);
    println!(
        "\n5 mM serum glucose on this channel reads {current} \
         (≈ saturated: the sensor is tuned for 0–1 mM cell-culture work)"
    );
    Ok(())
}

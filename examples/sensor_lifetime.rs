//! Sensor stability over time and the disposable-vs-integrated economics
//! of §2.5.
//!
//! Enzyme films denature; a deployed sensor's sensitivity drifts down
//! until recalibration (or biolayer replacement) is needed. This example
//! tracks a glucose channel over six weeks and compares the running cost
//! of the 3-D integrated stack (replaceable biolayer) against fully
//! disposable strips.
//!
//! Run with: `cargo run --example sensor_lifetime`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::core::platform::stack::IntegratedStack;
use biosim::core::protocol::{CalibrationProtocol, Chronoamperometry};
use biosim::core::sensor::{Biosensor, Technique};
use biosim::enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
use biosim::nanomaterial::{ElectrodeStock, SurfaceModification};
use biosim::prelude::*;
use biosim::units::SurfaceLoading;

fn fresh_film() -> EnzymeFilm {
    EnzymeFilm::builder()
        .loading(SurfaceLoading::from_pico_mol_per_square_cm(8.0))
        .retained_activity(1.0)
        .km_shift(1.4)
        .build()
}

fn sensor_with_film(film: EnzymeFilm) -> Biosensor {
    Biosensor::builder("ageing glucose channel", Analyte::Glucose)
        .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
        .modification(SurfaceModification::mwcnt_nafion())
        .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
        .technique(Technique::paper_chronoamperometry())
        .build()
}

fn main() -> Result<(), CoreError> {
    println!("== Six weeks of sensitivity drift (2 %/day activity loss) ==\n");
    println!(
        "{:>5}  {:>24}  {:>10}",
        "day", "measured sensitivity", "vs day 0"
    );

    let sweep = ConcentrationRange::from_milli_molar(0.0, 1.0)?;
    let mut day0 = None;
    for day in (0u64..=42).step_by(7) {
        let film = fresh_film().aged(day as f64, EnzymeFilm::TYPICAL_DECAY_PER_DAY);
        let sensor = sensor_with_film(film);
        let mut chain = ReadoutChain::integrated_cmos(100 + day)
            .auto_ranged_for(sensor.faradaic_current(sweep.high()) * 1.5);
        let curve = Chronoamperometry::default().calibrate_over(&sensor, &mut chain, &sweep, 12);
        let s = curve.summary(&Default::default()).map(|s| s.sensitivity);
        let s = match s {
            Ok(s) => s,
            Err(e) => {
                println!("{day:>5}  calibration failed ({e}) — film exhausted");
                continue;
            }
        };
        let base = *day0.get_or_insert(s.as_micro_amps_per_milli_molar_square_cm());
        println!(
            "{day:>5}  {:>24}  {:>9.1}%",
            s.to_string(),
            s.as_micro_amps_per_milli_molar_square_cm() / base * 100.0
        );
    }

    let half_life = fresh_film().lifetime_to_fraction(0.5, EnzymeFilm::TYPICAL_DECAY_PER_DAY);
    println!("\nfilm half-life at 2 %/day: {half_life:.1} days");
    println!("→ weekly recalibration keeps readings honest; biolayer swap due ~monthly.\n");

    println!("== Biolayer economics (Guiducci 3-D stack [17] vs disposables) ==\n");
    let stack = IntegratedStack::guiducci();
    println!(
        "{:>8}  {:>18}  {:>18}",
        "cycles", "integrated stack", "fully disposable"
    );
    for cycles in [1u64, 5, 20, 100, 500] {
        println!(
            "{cycles:>8}  {:>18.1}  {:>18.1}",
            stack.cost_over(cycles),
            stack.disposable_cost_over(cycles)
        );
    }
    println!(
        "\nbreak-even at {} measurement cycles — integration pays almost\n\
         immediately once the biolayer is the only consumable.",
        stack.break_even_cycles()
    );
    Ok(())
}

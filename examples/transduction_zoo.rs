//! The §2.3 classification, executable: one working model per
//! transduction family the paper surveys — amperometric (the platform's
//! own), potentiometric, Faradic impedimetric, field-effect, surface
//! plasmon resonance, and piezoelectric (QCM).
//!
//! Run with: `cargo run --example transduction_zoo`

// An example reports on stdout by design.
#![allow(clippy::print_stdout)]

use biosim::core::catalog;
use biosim::electrochem::field_effect::BioFet;
use biosim::electrochem::impedance::{estimate_charge_transfer, RandlesCell};
use biosim::electrochem::potentiometry::{Interferent, IonSelectiveElectrode};
use biosim::labelfree::{QuartzCrystalMicrobalance, SprSensor};
use biosim::prelude::*;
use biosim::units::Kelvin;

fn main() -> Result<(), CoreError> {
    println!("== 1. Amperometric (the paper's choice): glucose channel ==");
    let outcome = catalog::our_glucose_sensor().run_calibration(42)?;
    println!(
        "   calibration slope {}, LOD {}\n",
        outcome.summary.sensitivity, outcome.summary.detection_limit
    );

    println!("== 2. Potentiometric: urea biosensor back end (NH4+ ISE) ==");
    // Urease converts urea to ammonium; the ISE reads the product.
    let ise = IonSelectiveElectrode::new(Volts::from_milli_volts(220.0), 1, Kelvin::ROOM);
    let interferents = [(
        Interferent {
            selectivity: 1e-3,
            charge: 1,
        },
        Molar::from_milli_molar(140.0), // physiological Na+
    )];
    for urea_milli in [0.1, 1.0, 10.0] {
        // 1:1 conversion to ammonium at steady state.
        let e = ise.potential(Molar::from_milli_molar(urea_milli), &interferents);
        println!("   {urea_milli:>5} mM urea → {e}");
    }
    println!(
        "   Na+ background caps detection near {}\n",
        ise.interference_floor(&interferents)
    );

    println!("== 3. Faradic impedimetric: immunosensor via R_ct ==");
    let before_binding = RandlesCell::new(120.0, 4_000.0, 1.2e-6, 80.0);
    let after_binding = RandlesCell::new(120.0, 9_500.0, 1.1e-6, 80.0);
    let r_before = estimate_charge_transfer(&before_binding.spectrum(0.1, 1e6, 300));
    let r_after = estimate_charge_transfer(&after_binding.spectrum(0.1, 1e6, 300));
    println!("   R_ct before binding: {r_before:.0} Ω");
    println!(
        "   R_ct after binding:  {r_after:.0} Ω  ({:.1}×)\n",
        r_after / r_before
    );

    println!("== 4. Field-effect: CNT-FET PSA immunosensor [22] ==");
    let fet = BioFet::psa_cnt_fet();
    for nano in [0.5, 5.0, 50.0] {
        let c = Molar::from_nano_molar(nano);
        println!(
            "   {nano:>5} nM PSA → ΔV_th {:.1} mV, ΔI/I0 {:.1}%",
            fet.threshold_shift(c).as_milli_volts(),
            fet.relative_response(c) * 100.0
        );
    }

    println!("\n== 5. Surface plasmon resonance: biomarker panel [11] ==");
    let spr = SprSensor::biacore_like();
    for nano in [1.0, 10.0, 100.0] {
        let c = Molar::from_nano_molar(nano);
        let ru = spr.response_units(c);
        println!(
            "   {nano:>5} nM antigen → {ru:.0} RU ({:.1} mdeg shift)",
            spr.angle_shift_millideg(ru)
        );
    }
    println!(
        "   3σ detection limit: {:.3} nM",
        spr.detection_limit().as_nano_molar()
    );

    println!("\n== 6. Piezoelectric: 5 MHz QCM immunoassay [13] ==");
    let qcm = QuartzCrystalMicrobalance::new(5e6, SquareCm::from_square_cm(1.0));
    for ng in [50.0, 200.0, 1000.0] {
        println!(
            "   {ng:>5} ng bound → Δf {:.2} Hz",
            qcm.frequency_shift_hz(ng * 1e-9)
        );
    }
    println!(
        "   monolayer detectable: {}",
        qcm.detects_protein_monolayer()
    );

    println!(
        "\nSix transduction mechanisms, one codebase — the survey of §2.3\n\
         as running models instead of prose."
    );
    Ok(())
}

#!/usr/bin/env bash
# The full pre-merge gate: build, tests, formatting, lints.
# Usage: scripts/check.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
# Chaos gate: the hardened runtime must stay deterministic under an
# armed fault plan (retries, panics, budgets, bounded cache).
run cargo test -q -p bios-runtime --test runtime_chaos
# Recovery gate: journal corruption, crash resume, and watchdog tests.
run cargo test -q -p bios-runtime --test runtime_recover
run cargo test -q -p bios-recover

# Crash-resume gate: run the fixed gate fleet journaled, kill it
# mid-fleet (the binary aborts itself after the 5th durable record,
# exactly as `kill -9` would), resume the journal, and require the
# resumed digest to be byte-identical to an uninterrupted reference.
echo "==> crash-resume gate"
gate_dir="$(mktemp -d)"
trap 'rm -rf "$gate_dir"' EXIT
crash_gate() { cargo run --release -q -p bios-bench --bin crash_gate -- "$@"; }
ref_fnv="$(crash_gate --journal "$gate_dir/ref.journal" | grep digest_fnv)"
if crash_gate --journal "$gate_dir/crash.journal" --crash-after 5 >/dev/null 2>&1; then
    echo "crash-resume gate: the crashing run was supposed to die" >&2
    exit 1
fi
resumed_fnv="$(crash_gate --journal "$gate_dir/crash.journal" --resume --workers 8 | grep digest_fnv)"
if [ "$ref_fnv" != "$resumed_fnv" ]; then
    echo "crash-resume gate: digest mismatch ($ref_fnv vs $resumed_fnv)" >&2
    exit 1
fi
echo "    resumed digest matches reference ($ref_fnv)"

# Overload gate: a fixed bursty trace through the gateway must shed,
# brown out, and circuit-break — but in a bounded way, draining every
# request to a terminal outcome — and the whole decision trace must be
# byte-identical at 1 and 8 workers. The binary itself asserts the
# nonzero-but-bounded counters and the clean drain (non-zero exit on
# violation); the shell compares the two digests.
echo "==> overload gate"
overload_gate() { cargo run --release -q -p bios-bench --bin overload_gate -- "$@"; }
overload_1="$(overload_gate --workers 1 | grep digest_fnv)"
overload_8="$(overload_gate --workers 8 | grep digest_fnv)"
if [ "$overload_1" != "$overload_8" ]; then
    echo "overload gate: digest differs across worker counts ($overload_1 vs $overload_8)" >&2
    exit 1
fi
echo "    overload decisions identical at 1 and 8 workers ($overload_1)"

# Stream gate: a 1000-patient × 288-tick (one simulated day) cohort
# with aging films through the longitudinal stream engine. The binary
# asserts the closed loop engages (drift injected, detected, epochs
# swapped; zero false trips, zero browned-out recalibrations); the
# shell pins the stream digest byte-identical at 1 and 8 workers.
echo "==> stream gate"
stream_gate() { cargo run --release -q -p bios-bench --bin stream_gate -- "$@"; }
stream_1="$(stream_gate --workers 1 --patients 1000 --ticks 288 | grep digest_fnv)"
stream_8="$(stream_gate --workers 8 --patients 1000 --ticks 288 | grep digest_fnv)"
if [ "$stream_1" != "$stream_8" ]; then
    echo "stream gate: digest differs across worker counts ($stream_1 vs $stream_8)" >&2
    exit 1
fi
echo "    stream decisions identical at 1 and 8 workers ($stream_1)"

# Shard gate: the tenant-sharded fleet-of-fleets must be placement-
# invisible — the merged digest byte-identical at (1 shard × 1 worker),
# (4 × 2), and (8 × 8), and unchanged when a shard is lost mid-trace,
# quarantined, and its tenants redistributed. The binary asserts the
# quarantine actually happened (non-zero exit on violation); the shell
# compares the four digests.
echo "==> shard gate"
shard_gate() { cargo run --release -q -p bios-bench --bin shard_gate -- "$@"; }
shard_1x1="$(shard_gate --shards 1 --workers 1 | grep digest_fnv)"
shard_4x2="$(shard_gate --shards 4 --workers 2 | grep digest_fnv)"
shard_8x8="$(shard_gate --shards 8 --workers 8 | grep digest_fnv)"
shard_q="$(shard_gate --shards 4 --workers 2 --quarantine | grep digest_fnv)"
if [ "$shard_1x1" != "$shard_4x2" ] || [ "$shard_4x2" != "$shard_8x8" ]; then
    echo "shard gate: digest differs across shard layouts ($shard_1x1 / $shard_4x2 / $shard_8x8)" >&2
    exit 1
fi
if [ "$shard_1x1" != "$shard_q" ]; then
    echo "shard gate: quarantine changed the digest ($shard_1x1 vs $shard_q)" >&2
    exit 1
fi
echo "    sharded decisions identical at 1x1, 4x2, 8x8, and quarantined 4x2 ($shard_1x1)"

# Quorum gate: silent corruption armed on every tenant with the
# redundancy screen voting on every completion. The binary asserts
# detection (catch rate ≥ 99%, zero escapes, disagreements fired,
# repeat offenders quarantined — non-zero exit on violation); the
# shell pins the armed digest byte-identical across layouts AND
# byte-identical to the unarmed healthy run, which in turn must equal
# the shard gate's golden digest — arming the screen may never move a
# single byte of the report.
echo "==> quorum gate"
quorum_gate() { cargo run --release -q -p bios-bench --bin quorum_gate -- "$@"; }
quorum_1x1="$(quorum_gate --shards 1 --workers 1 --armed | grep digest_fnv)"
quorum_4x2="$(quorum_gate --shards 4 --workers 2 --armed | grep digest_fnv)"
quorum_8x8="$(quorum_gate --shards 8 --workers 8 --armed | grep digest_fnv)"
quorum_off="$(quorum_gate --shards 4 --workers 2 | grep digest_fnv)"
if [ "$quorum_1x1" != "$quorum_4x2" ] || [ "$quorum_4x2" != "$quorum_8x8" ]; then
    echo "quorum gate: armed digest differs across layouts ($quorum_1x1 / $quorum_4x2 / $quorum_8x8)" >&2
    exit 1
fi
if [ "$quorum_1x1" != "$quorum_off" ]; then
    echo "quorum gate: arming the screen moved the digest ($quorum_1x1 vs $quorum_off)" >&2
    exit 1
fi
if [ "$quorum_off" != "$shard_4x2" ]; then
    echo "quorum gate: unarmed digest diverged from the shard gate ($quorum_off vs $shard_4x2)" >&2
    exit 1
fi
echo "    quorum voting identical at 1x1, 4x2, 8x8 and byte-equal to the unarmed run ($quorum_1x1)"

# Torture gate: hundreds of seeded storage-fault schedules (DESIGN.md
# §17) — a crash at *every* op index of the monolithic and sharded
# reference runs plus randomized mixes of short writes, ENOSPC, failed
# syncs, and crashes. The binary asserts every schedule lands in the
# trichotomy (recover / typed error / metered degradation) and that
# both crash sweeps recover 100%; the shell re-asserts the zero
# panic/divergence counters off the summary line.
echo "==> torture gate"
torture_out="$(cargo run --release -q -p bios-bench --bin torture_gate)"
torture_total="$(printf '%s\n' "$torture_out" | grep '^total:')"
echo "    $torture_total"
case "$torture_total" in
*"panics=0 divergences=0"*) ;;
*)
    echo "torture gate: panics or divergences detected ($torture_total)" >&2
    exit 1
    ;;
esac

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings

# Static-analysis gate: the source-level determinism / panic-freedom /
# float-hygiene / API-hygiene audit (DESIGN.md §11) plus the semantic
# pass (DESIGN.md §16): call-graph determinism taint, crate-layer
# proofs, and lock discipline. Any finding fails the gate; the waiver
# count is part of the printed summary. The audit runs twice — the
# second run must ride the per-file facts cache.
run cargo run --release -q -p bios-audit
if ! grep -q '"schema_version": 2,' AUDIT_report.json; then
    echo "audit gate: AUDIT_report.json has an unknown schema_version (expected 2)" >&2
    exit 1
fi
audit_warm="$(cargo run --release -q -p bios-audit 2>&1 | tail -1)"
echo "    $audit_warm"
case "$audit_warm" in
*"cache 0/"*)
    echo "audit gate: second run had zero facts-cache hits" >&2
    exit 1
    ;;
esac

# Semantic fixture gate: each new rule family must still *fire*. Every
# firing fixture is staged into a synthetic workspace and the audit
# must exit non-zero on it, pinning the detectors end-to-end (the
# golden tests pin the exact findings; this pins the exit code).
echo "==> semantic fixture gate"
audit_fixture() { # <family> <fixture> <staged-path>
    local fam="$1" fixture="$2" staged="$3"
    local fixroot="$gate_dir/audit-$fam"
    mkdir -p "$fixroot/$(dirname "$staged")"
    printf '[workspace]\nmembers = ["crates/*"]\n' >"$fixroot/Cargo.toml"
    cp "crates/audit/tests/fixtures/$fixture" "$fixroot/$staged"
    if cargo run --release -q -p bios-audit -- \
        --root "$fixroot" --no-cache --json "$fixroot/report.json" >/dev/null; then
        echo "audit gate: $fam fixture $fixture did not fail the audit" >&2
        exit 1
    fi
    echo "    $fam fires on $fixture"
}
audit_fixture G-taint g_taint_firing.rs crates/faults/src/plan.rs
audit_fixture G-layer g_layer_firing.rs crates/enzyme/src/lib.rs
audit_fixture L-lock l_lock_firing.rs crates/faults/src/plan.rs

# Doc gate: rustdoc must build clean — broken intra-doc links and
# missing docs are errors, not warnings.
echo "==> cargo doc --no-deps (warnings as errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> all checks passed"

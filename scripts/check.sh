#!/usr/bin/env bash
# The full pre-merge gate: build, tests, formatting, lints.
# Usage: scripts/check.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
# Chaos gate: the hardened runtime must stay deterministic under an
# armed fault plan (retries, panics, budgets, bounded cache).
run cargo test -q -p bios-runtime --test runtime_chaos
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"

//! `biosim` — command-line front end to the sensor catalog.
//!
//! ```console
//! biosim list                         # all catalog sensors with paper figures
//! biosim show glucose/ours            # one sensor's construction in detail
//! biosim calibrate glucose/ours       # run a full simulated calibration
//! biosim calibrate lactate/goran2011 --seed 7
//! biosim measure cyp/cyclophosphamide 40   # simulate measuring 40 µM
//! ```

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use biosim::analytics::report::TextTable;
use biosim::core::catalog::{self, CatalogEntry};
use biosim::core::quantify::{Quantification, Quantifier};
use biosim::prelude::*;

fn all_entries() -> Vec<CatalogEntry> {
    let mut v = catalog::all_table2();
    v.extend(catalog::multi_panel_sensors());
    v
}

fn find(id: &str) -> Option<CatalogEntry> {
    all_entries().into_iter().find(|e| e.id() == id)
}

fn parse_seed(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn cmd_list() -> ExitCode {
    let mut t = TextTable::new(vec!["id", "analyte", "S (µA·mM⁻¹·cm⁻²)", "range", "LOD"]);
    for e in all_entries() {
        let paper = e.paper();
        t.add_row(vec![
            e.id().to_owned(),
            e.analyte().to_string(),
            format!(
                "{:.2}",
                paper.sensitivity.as_micro_amps_per_milli_molar_square_cm()
            ),
            paper.linear_range.to_string(),
            paper.detection_limit.map_or("–".to_owned(), |l| {
                format!("{:.2} µM", l.as_micro_molar())
            }),
        ]);
    }
    print!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_show(id: &str) -> ExitCode {
    let Some(e) = find(id) else {
        eprintln!("unknown sensor id '{id}' — try `biosim list`");
        return ExitCode::FAILURE;
    };
    let sensor = e.build_sensor();
    println!("id:           {}", e.id());
    println!("label:        {}", e.label());
    if let Some(c) = e.citation() {
        println!("citation:     {c}");
    }
    println!("analyte:      {}", e.analyte());
    println!(
        "electrode:    {} {} ({:?})",
        sensor.electrode().material(),
        sensor.electrode().area(),
        sensor.electrode().role()
    );
    println!("modification: {}", sensor.modification());
    println!("probe:        {}", sensor.chemistry().probe_name());
    println!("technique:    {}", sensor.technique().label());
    println!(
        "film loading: {}",
        sensor.chemistry().film().effective_loading()
    );
    println!("model S:      {}", sensor.model_sensitivity());
    println!("model range:  up to {}", sensor.model_linear_limit());
    println!("paper S:      {}", e.paper().sensitivity);
    println!(
        "sweep:        {} over {} standards",
        e.sweep(),
        e.sweep_points()
    );
    ExitCode::SUCCESS
}

fn cmd_calibrate(id: &str, seed: u64) -> ExitCode {
    let Some(e) = find(id) else {
        eprintln!("unknown sensor id '{id}' — try `biosim list`");
        return ExitCode::FAILURE;
    };
    match e.run_calibration(seed) {
        Ok(outcome) => {
            let s = outcome.summary;
            println!("sensor:       {}", e.label());
            println!("seed:         {seed}");
            println!("sensitivity:  {}", s.sensitivity);
            println!("linear range: {}", s.linear_range);
            println!("LOD:          {}", s.detection_limit);
            println!("R²:           {:.5}", s.r_squared);
            println!(
                "vs paper:     ΔS {:+.1}%",
                (s.sensitivity.as_micro_amps_per_milli_molar_square_cm()
                    / e.paper()
                        .sensitivity
                        .as_micro_amps_per_milli_molar_square_cm()
                    - 1.0)
                    * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("calibration failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_measure(id: &str, micro_molar: f64, seed: u64) -> ExitCode {
    let Some(e) = find(id) else {
        eprintln!("unknown sensor id '{id}' — try `biosim list`");
        return ExitCode::FAILURE;
    };
    let outcome = match e.run_calibration(seed) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("calibration failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let sensor = e.build_sensor();
    let q = Quantifier::from_calibration(&outcome.summary, sensor.electrode().area());
    let truth = Molar::from_micro_molar(micro_molar);
    let mut chain = e.build_readout(seed.wrapping_add(1));
    let current = chain.digitize(sensor.faradaic_current(truth));
    println!("true level:   {:.2} µM", micro_molar);
    println!("channel read: {current}");
    match q.quantify(current) {
        Quantification::Level(c) => {
            println!(
                "quantified:   {:.2} µM ({:+.1}%)",
                c.as_micro_molar(),
                (c.as_micro_molar() / micro_molar - 1.0) * 100.0
            );
        }
        Quantification::BelowDetection { limit } => {
            println!("quantified:   below detection ({limit})");
        }
        Quantification::AboveRange { range_top } => {
            println!("quantified:   above linear range (top {range_top})");
            if let Some(d) = q.suggested_dilution(current) {
                println!("suggestion:   dilute {d:.1}× and re-measure");
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  biosim list\n  biosim show <id>\n  biosim calibrate <id> [--seed N]\n  \
         biosim measure <id> <µM> [--seed N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_seed(&args);
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => match args.get(1) {
            Some(id) => cmd_show(id),
            None => usage(),
        },
        Some("calibrate") => match args.get(1) {
            Some(id) => cmd_calibrate(id, seed),
            None => usage(),
        },
        Some("measure") => match (args.get(1), args.get(2).and_then(|v| v.parse().ok())) {
            (Some(id), Some(level)) => cmd_measure(id, level, seed),
            _ => usage(),
        },
        _ => usage(),
    }
}

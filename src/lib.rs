//! # biosim
//!
//! An integrated biosensor simulation platform — a from-scratch Rust
//! reproduction of the system described in *"Integrated Biosensors for
//! Personalized Medicine"* (G. De Micheli, C. Boero, C. Baj-Rossi,
//! I. Taurino, S. Carrara — DAC 2012).
//!
//! The paper's physical platform — carbon-nanotube-modified enzyme
//! electrodes with integrated electrochemical readout for metabolite and
//! anticancer-drug monitoring — is virtualized end to end: electrode
//! physics, enzyme kinetics, nanomaterial surface models, a potentiostat
//! readout chain with realistic noise, calibration protocols, and the
//! analytics that extract sensitivity, linear range, and detection limit.
//!
//! This facade crate re-exports all subsystem crates:
//!
//! | module | crate | what it models |
//! |---|---|---|
//! | [`units`] | `bios-units` | typed physical quantities |
//! | [`electrochem`] | `bios-electrochem` | Nernst/Butler–Volmer/Cottrell physics, diffusion, voltammetry |
//! | [`enzyme`] | `bios-enzyme` | Michaelis–Menten, oxidases, P450 isoforms, films |
//! | [`nanomaterial`] | `bios-nanomaterial` | electrodes and CNT surface modifications |
//! | [`instrument`] | `bios-instrument` | amplifier, ADC, noise, filters |
//! | [`analytics`] | `bios-analytics` | regression, linear range, LOD |
//! | [`labelfree`] | `bios-labelfree` | SPR and QCM label-free transduction |
//! | [`prng`] | `bios-prng` | deterministic random streams (splitmix64 + xoshiro256\*\*) |
//! | [`core`] | `bios-core` | the composed platform, protocols, Table 1/2 catalog |
//! | [`faults`] | `bios-faults` | deterministic fault plans injected across the physical layers |
//! | [`recover`] | `bios-recover` | checksummed journal + snapshot primitives for crash resume |
//! | [`runtime`] | `bios-runtime` | hardened concurrent fleet simulation, bounded result cache, metrics |
//! | [`gateway`] | `bios-gateway` | overload-robust admission control, circuit breaking, brownout degradation |
//! | [`quorum`] | `bios-quorum` | N-modular redundancy: replica voting, silent-corruption detection, suspect quarantine |
//! | [`stream`] | `bios-stream` | longitudinal patient streams, online drift monitors, deterministic re-calibration |
//! | [`shard`] | `bios-shard` | tenant-sharded fleet-of-fleets: bulkheads, shard supervision, deterministic work-stealing |
//!
//! # Quick start
//!
//! ```
//! use biosim::core::catalog;
//!
//! // Run the paper's glucose sensor through a full simulated
//! // calibration and read off its figures of merit.
//! let entry = catalog::our_glucose_sensor();
//! let outcome = entry.run_calibration(42)?;
//! println!("sensitivity: {}", outcome.summary.sensitivity);
//! println!("linear range: {}", outcome.summary.linear_range);
//! println!("LOD: {}", outcome.summary.detection_limit);
//! # Ok::<(), biosim::core::CoreError>(())
//! ```

#![warn(missing_docs)]

pub use bios_analytics as analytics;
pub use bios_core as core;
pub use bios_electrochem as electrochem;
pub use bios_enzyme as enzyme;
pub use bios_faults as faults;
pub use bios_gateway as gateway;
pub use bios_instrument as instrument;
pub use bios_labelfree as labelfree;
pub use bios_nanomaterial as nanomaterial;
pub use bios_prng as prng;
pub use bios_quorum as quorum;
pub use bios_recover as recover;
pub use bios_runtime as runtime;
pub use bios_shard as shard;
pub use bios_stream as stream;
pub use bios_units as units;

/// Commonly used items for scripting against the platform.
pub mod prelude {
    pub use bios_analytics::{
        CalibrationCurve, CalibrationSummary, DriftDetector, DriftMonitor, LinearFit,
    };
    pub use bios_core::catalog;
    pub use bios_core::platform::SensingPlatform;
    pub use bios_core::protocol::{CalibrationProtocol, Chronoamperometry, CyclicVoltammetry};
    pub use bios_core::{Analyte, Biosensor, CoreError, Sample};
    pub use bios_faults::{FaultKind, FaultPlan};
    pub use bios_gateway::{Gateway, GatewayConfig, GatewayReport, Request};
    pub use bios_instrument::ReadoutChain;
    pub use bios_nanomaterial::{ElectrodeStock, SurfaceModification};
    pub use bios_quorum::{QuorumConfig, QuorumScreen, QuorumSummary};
    pub use bios_runtime::{
        Fleet, FleetOutcome, FleetReport, JournalOptions, ResumeReport, Runtime, RuntimeConfig,
    };
    pub use bios_shard::{ShardConfig, ShardedGateway, ShardedReport, ShardedRuntime};
    pub use bios_stream::{PatientCohort, StreamConfig, StreamEngine, StreamReport};
    pub use bios_units::{
        Amperes, ConcentrationRange, Molar, Seconds, Sensitivity, SquareCm, Volts,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let c = Molar::from_milli_molar(5.0);
        assert!(c.as_micro_molar() > 0.0);
        let entry = catalog::our_glucose_sensor();
        assert!(entry.is_ours());
    }
}

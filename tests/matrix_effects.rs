//! Matrix effects and the standard-addition counter-measure: serum
//! suppresses amperometric slopes, biasing external calibration; spiking
//! the sample itself removes the bias.

use biosim::analytics::standard_addition::{estimate_unknown, Addition};
use biosim::core::catalog;
use biosim::core::quantify::Quantifier;
use biosim::prelude::*;

#[test]
fn serum_matrix_biases_external_calibration_low() {
    let entry = catalog::cyp_sensors()
        .into_iter()
        .find(|e| e.analyte() == Analyte::Cyclophosphamide)
        .unwrap();
    let outcome = entry.run_calibration(3).unwrap();
    let sensor = entry.build_sensor();
    let q = Quantifier::from_calibration(&outcome.summary, sensor.electrode().area());

    let truth = Molar::from_micro_molar(40.0);
    let serum = Sample::physiological_serum().with_analyte(Analyte::Cyclophosphamide, truth);
    let mut chain = entry.build_readout(55);
    let current = chain.digitize(sensor.respond_to_sample(&serum));
    let estimate = q.quantify(current).level().expect("in range");
    let bias = (estimate.as_micro_molar() - 40.0) / 40.0;
    // External calibration under-reads by roughly the matrix factor.
    assert!(bias < -0.08, "bias {bias}");
    assert!(bias > -0.25, "bias {bias}");
}

#[test]
fn standard_addition_removes_the_matrix_bias() {
    let entry = catalog::cyp_sensors()
        .into_iter()
        .find(|e| e.analyte() == Analyte::Cyclophosphamide)
        .unwrap();
    let sensor = entry.build_sensor();
    let mut chain = entry.build_readout(91);

    let truth = Molar::from_micro_molar(40.0);
    let serum = Sample::physiological_serum().with_analyte(Analyte::Cyclophosphamide, truth);

    // Spike the serum itself: 0, +10, +20, +30 µM, keeping the total
    // inside the sensor's 84 µM sweep so Michaelis–Menten curvature
    // does not bend the extrapolation. Average a few replicate readings
    // per level, as the bench protocol would, so the 4-point
    // extrapolation is not at the mercy of single noise draws.
    let series: Vec<Addition> = [0.0, 10.0, 20.0, 30.0]
        .iter()
        .map(|&spike| {
            let total = Molar::from_micro_molar(40.0 + spike);
            let spiked = serum.clone().with_analyte(Analyte::Cyclophosphamide, total);
            let reps = 8;
            let mean_amps = (0..reps)
                .map(|_| chain.digitize(sensor.respond_to_sample(&spiked)).as_amps())
                .sum::<f64>()
                / f64::from(reps);
            Addition {
                added: Molar::from_micro_molar(spike),
                signal: Amperes::from_amps(mean_amps),
            }
        })
        .collect();

    let estimate = estimate_unknown(&series).unwrap();
    let rel = (estimate.as_micro_molar() - 40.0).abs() / 40.0;
    assert!(rel < 0.08, "standard addition off by {rel}");
}

#[test]
fn dilution_also_mitigates_matrix_suppression() {
    // 10× dilution relaxes the matrix factor from 0.85 to 0.985.
    let serum = Sample::physiological_serum();
    assert!(serum.matrix_factor() < 0.9);
    assert!(serum.diluted(10.0).matrix_factor() > 0.98);
}

#[test]
fn spike_recovery_flags_the_matrix() {
    use biosim::analytics::standard_addition::spike_recovery;
    let entry = catalog::our_glucose_sensor();
    let outcome = entry.run_calibration(5).unwrap();
    let sensor = entry.build_sensor();
    let external_slope = outcome
        .summary
        .sensitivity
        .as_micro_amps_per_milli_molar_square_cm()
        * sensor.electrode().area().as_square_cm();

    let base = Sample::physiological_serum()
        .diluted(10.0)
        .with_analyte(Analyte::Glucose, Molar::from_micro_molar(300.0));
    let spiked = base
        .clone()
        .with_analyte(Analyte::Glucose, Molar::from_micro_molar(500.0));
    let i0 = sensor.respond_to_sample(&base);
    let i1 = sensor.respond_to_sample(&spiked);
    let recovery = spike_recovery(i0, i1, Molar::from_micro_molar(200.0), external_slope).unwrap();
    // Diluted serum: mild suppression → recovery slightly below unity.
    assert!(recovery > 0.9 && recovery < 1.05, "recovery {recovery}");
}

//! Cross-crate physics consistency: the closed-form relations, the
//! numerical solvers, and the sensor forward model must agree with each
//! other where their domains overlap.

use biosim::electrochem::diffusion::{DiffusionGrid, SurfaceBoundary};
use biosim::electrochem::voltammetry::CvSimulator;
use biosim::electrochem::{cottrell, randles_sevcik, CyclicSweep, RedoxCouple};
use biosim::nanomaterial::SurfaceModification;
use biosim::units::{DiffusionCoefficient, Kelvin, Molar, ScanRate, Seconds, SquareCm, Volts};

#[test]
fn diffusion_solver_reproduces_cottrell_over_a_decade_of_time() {
    let d = DiffusionCoefficient::from_square_cm_per_second(1e-5);
    let bulk = Molar::from_milli_molar(1.0);
    let area = SquareCm::from_square_cm(1.0);
    let mut grid = DiffusionGrid::new(d, bulk, 600e-4, 1201).expect("valid grid");
    grid.set_surface(SurfaceBoundary::Concentration(0.0));
    let dt = Seconds::from_millis(1.0);
    let mut elapsed = 0.0;
    for checkpoint in [0.5f64, 1.0, 2.0, 5.0] {
        while elapsed < checkpoint - 1e-9 {
            grid.step_crank_nicolson(dt);
            elapsed += dt.as_seconds();
        }
        let i_grid = grid.flux_mol_per_cm2_s() * 96485.332 * area.as_square_cm();
        let i_cottrell =
            cottrell::cottrell_current(1, area, d, bulk, Seconds::from_seconds(checkpoint));
        let rel = (i_grid - i_cottrell.as_amps()).abs() / i_cottrell.as_amps();
        assert!(rel < 0.03, "t = {checkpoint}s: {rel}");
    }
}

#[test]
fn cv_simulation_tracks_randles_sevcik_scaling_in_scan_rate() {
    let couple = RedoxCouple::builder("fast")
        .standard_potential(Volts::from_milli_volts(200.0))
        .rate_constant(1.0)
        .diffusion(DiffusionCoefficient::from_square_cm_per_second(6.5e-6))
        .build();
    let area = SquareCm::from_square_cm(0.1);
    let c = Molar::from_milli_molar(1.0);
    let peak_at = |mv_per_s: f64| {
        let sweep = CyclicSweep::new(
            Volts::from_milli_volts(-200.0),
            Volts::from_milli_volts(600.0),
            ScanRate::from_milli_volts_per_second(mv_per_s),
            1,
        );
        CvSimulator::new(couple.clone(), area)
            .with_reduced_bulk(c)
            .with_nodes(300)
            .expect("enough nodes")
            .run(&sweep)
            .anodic_peak()
            .unwrap()
            .current
            .as_amps()
    };
    let i_50 = peak_at(50.0);
    let i_200 = peak_at(200.0);
    // Randles–Ševčík: 4× the scan rate doubles the peak.
    let ratio = i_200 / i_50;
    assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
}

#[test]
fn cnt_modification_pulls_sluggish_couple_toward_reversible_peak() {
    // A slow couple on a bare electrode gives a depressed, shifted peak;
    // the same couple accelerated by the MWCNT film approaches the
    // reversible Randles–Ševčík limit — the paper's §2.4 claim.
    let slow = RedoxCouple::builder("sluggish probe")
        .standard_potential(Volts::from_milli_volts(200.0))
        .rate_constant(5e-4)
        .diffusion(DiffusionCoefficient::from_square_cm_per_second(6.5e-6))
        .build();
    let area = SquareCm::from_square_cm(0.1);
    let c = Molar::from_milli_molar(1.0);
    let sweep = CyclicSweep::new(
        Volts::from_milli_volts(-200.0),
        Volts::from_milli_volts(600.0),
        ScanRate::from_milli_volts_per_second(100.0),
        1,
    );
    let run = |couple: RedoxCouple| {
        CvSimulator::new(couple, area)
            .with_reduced_bulk(c)
            .with_nodes(300)
            .expect("enough nodes")
            .run(&sweep)
    };
    let bare = run(slow.clone());
    let on_cnt = run(SurfaceModification::mwcnt_nafion().modify_couple(&slow));
    let analytic = randles_sevcik::reversible_peak_current(
        1,
        area,
        slow.diffusion(),
        c,
        ScanRate::from_milli_volts_per_second(100.0),
        Kelvin::ROOM,
    );

    let bare_peak = bare.anodic_peak().unwrap();
    let cnt_peak = on_cnt.anodic_peak().unwrap();
    // CNT film raises the peak toward the reversible limit…
    assert!(cnt_peak.current > bare_peak.current);
    let cnt_gap = (cnt_peak.current.as_amps() - analytic.as_amps()).abs() / analytic.as_amps();
    let bare_gap = (bare_peak.current.as_amps() - analytic.as_amps()).abs() / analytic.as_amps();
    assert!(cnt_gap < bare_gap);
    assert!(cnt_gap < 0.10, "CNT peak still {cnt_gap} from reversible");
    // …and closes the peak separation toward 57 mV.
    let sep_bare = bare.peak_separation().unwrap();
    let sep_cnt = on_cnt.peak_separation().unwrap();
    assert!(sep_cnt < sep_bare);
}

#[test]
fn sensor_model_sensitivity_agrees_with_calibrated_slope_noise_free() {
    use biosim::core::catalog;
    use biosim::core::protocol::{CalibrationProtocol, Chronoamperometry};
    use biosim::instrument::filter::FilterSpec;
    use biosim::instrument::noise::NoiseGenerator;
    use biosim::instrument::{Adc, ReadoutChain, TransimpedanceAmplifier};
    use biosim::units::{Amperes, Ohms};

    // A nearly noiseless, very fine chain: the measured slope must match
    // the analytic model slope to better than 2 %.
    for entry in [
        catalog::our_glucose_sensor(),
        catalog::our_lactate_sensor(),
        catalog::our_glutamate_sensor(),
    ] {
        let sensor = entry.build_sensor();
        let max = sensor.faradaic_current(entry.sweep().high());
        let tia = TransimpedanceAmplifier::auto_range(max * 1.2, Volts::from_volts(3.3));
        let _ = Ohms::from_ohms(1.0); // (ohms imported for clarity of the chain's units)
        let mut chain = ReadoutChain::new(
            tia,
            Adc::new(24, Volts::from_volts(3.3)),
            NoiseGenerator::new(1, Amperes::from_pico_amps(0.001)),
            FilterSpec::None,
        );
        let curve =
            Chronoamperometry::default().calibrate_over(&sensor, &mut chain, &entry.sweep(), 25);
        let measured = curve.sensitivity().unwrap();
        // The linear-range fit spans finite concentrations, so a small
        // negative Michaelis–Menten bias vs the C→0 tangent is expected;
        // it must stay within the linearity tolerance band.
        let model = sensor.model_sensitivity();
        let rel = (measured.as_micro_amps_per_milli_molar_square_cm()
            - model.as_micro_amps_per_milli_molar_square_cm())
            / model.as_micro_amps_per_milli_molar_square_cm();
        assert!(rel <= 0.0, "{}: measured above tangent?", entry.id());
        assert!(rel > -0.10, "{}: bias {rel}", entry.id());
    }
}

#[test]
fn oxidase_sensor_output_is_oxygen_limited() {
    use biosim::core::sensor::{Biosensor, Technique};
    use biosim::core::Analyte;
    use biosim::enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
    use biosim::nanomaterial::ElectrodeStock;
    use biosim::units::SurfaceLoading;

    let make = |o2_micro_molar: f64| {
        let enzyme = Oxidase::stock(OxidaseKind::GlucoseOxidase)
            .with_oxygen(Molar::from_micro_molar(o2_micro_molar));
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
            .build();
        Biosensor::builder("o2 study", Analyte::Glucose)
            .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
            .modification(SurfaceModification::mwcnt_nafion())
            .oxidase(enzyme, film)
            .technique(Technique::paper_chronoamperometry())
            .build()
    };
    let air = make(250.0);
    let hypoxic = make(25.0);
    let c = Molar::from_milli_molar(5.0);
    assert!(hypoxic.faradaic_current(c) < air.faradaic_current(c));
}

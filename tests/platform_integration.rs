//! Cross-crate integration: the multi-channel platform measuring
//! realistic samples end to end.

use biosim::core::catalog;
use biosim::core::platform::SensingPlatform;
use biosim::prelude::*;

// Test setup helper: aborting on a bad mount is the right failure mode,
// but clippy only auto-exempts `#[test]` functions themselves.
#[allow(clippy::unwrap_used)]
fn loaded_chip(seed: u64) -> SensingPlatform {
    let mut chip = SensingPlatform::epfl_chip(seed);
    chip.mount(0, catalog::our_glucose_sensor().build_sensor())
        .unwrap();
    chip.mount(1, catalog::our_lactate_sensor().build_sensor())
        .unwrap();
    chip.mount(2, catalog::our_glutamate_sensor().build_sensor())
        .unwrap();
    chip
}

#[test]
fn channels_are_selective() {
    let mut chip = loaded_chip(1);
    // Glucose-only, lactate-only, glutamate-only samples: each lights up
    // exactly its own channel.
    let cases = [
        (Analyte::Glucose, 0usize),
        (Analyte::Lactate, 1),
        (Analyte::Glutamate, 2),
    ];
    for (analyte, own_channel) in cases {
        let sample = Sample::blank().with_analyte(analyte, Molar::from_milli_molar(0.8));
        for probe in 0..3 {
            let r = chip.measure(probe, &sample).unwrap();
            if probe == own_channel {
                assert!(
                    r.current.as_nano_amps() > 1.0,
                    "{analyte}: own channel silent"
                );
            } else {
                assert!(
                    r.current.as_nano_amps().abs() < 1.0,
                    "{analyte}: cross-talk on channel {probe}: {}",
                    r.current
                );
            }
        }
    }
}

#[test]
fn quantification_round_trip_through_calibration() {
    // Calibrate the glucose channel, then recover an unknown
    // concentration from its measured current within 10 %.
    let entry = catalog::our_glucose_sensor();
    let outcome = entry.run_calibration(21).unwrap();
    let slope_micro_amps_per_milli_molar = outcome
        .summary
        .sensitivity
        .as_micro_amps_per_milli_molar_square_cm()
        * entry.build_sensor().electrode().area().as_square_cm();

    let unknown = Molar::from_micro_molar(400.0);
    let sensor = entry.build_sensor();
    let mut chain = entry.build_readout(77);
    let current = chain.digitize(sensor.faradaic_current(unknown));
    let estimate =
        Molar::from_milli_molar(current.as_micro_amps() / slope_micro_amps_per_milli_molar);
    let rel = (estimate.as_micro_molar() - 400.0).abs() / 400.0;
    assert!(rel < 0.10, "recovered {} ({rel:+.2})", estimate);
}

#[test]
fn dilution_brings_serum_into_linear_range() {
    // Raw serum glucose (5 mM) saturates the 0–1 mM sensor; a 1:10
    // dilution restores proportionality.
    let sensor = catalog::our_glucose_sensor().build_sensor();
    let serum = Sample::physiological_serum();
    let i_raw = sensor.faradaic_current(serum.concentration(Analyte::Glucose));
    let i_diluted = sensor.faradaic_current(serum.diluted(10.0).concentration(Analyte::Glucose));
    // Raw: far beyond linearity, so 10× dilution loses much less than
    // 10× signal.
    assert!(i_raw.as_amps() / i_diluted.as_amps() < 9.0);
    // Diluted reading sits inside the detected linear range.
    let outcome = catalog::our_glucose_sensor().run_calibration(3).unwrap();
    assert!(outcome
        .summary
        .linear_range
        .contains(serum.diluted(10.0).concentration(Analyte::Glucose)));
}

#[test]
fn ascorbate_interference_is_rejected_by_nafion() {
    let sensor = catalog::our_glucose_sensor().build_sensor();
    let clean = Sample::blank().with_analyte(Analyte::Glucose, Molar::from_micro_molar(500.0));
    let spiked = clean
        .clone()
        .with_analyte(Analyte::AscorbicAcid, Molar::from_micro_molar(100.0));
    let i_clean = sensor.respond_to_sample(&clean);
    let i_spiked = sensor.respond_to_sample(&spiked);
    let bias = (i_spiked.as_amps() - i_clean.as_amps()) / i_clean.as_amps();
    assert!(
        bias < 0.05,
        "ascorbate bias {bias:+.3} should be under 5% behind Nafion"
    );
}

#[test]
fn chip_reuses_channels_after_dismount() {
    let mut chip = loaded_chip(9);
    let removed = chip.dismount(0).unwrap().unwrap();
    assert_eq!(removed.analyte(), Analyte::Glucose);
    // Remount a different chemistry on the same channel — modularity.
    chip.mount(0, catalog::cyp_sensors()[1].build_sensor())
        .unwrap();
    assert_eq!(
        chip.sensor_at(0).unwrap().analyte(),
        Analyte::Cyclophosphamide
    );
    let sample =
        Sample::blank().with_analyte(Analyte::Cyclophosphamide, Molar::from_micro_molar(30.0));
    let r = chip.measure(0, &sample).unwrap();
    assert!(r.current.as_nano_amps() > 10.0);
}

#[test]
fn five_channel_panel_runs_full_table1_chemistries() {
    // Mount 5 of the 7 Table 1 chemistries at once (chip capacity), the
    // multi-target scenario.
    let mut chip = SensingPlatform::epfl_chip(33);
    let entries = catalog::table1();
    for (ch, entry) in entries.iter().take(5).enumerate() {
        chip.mount(ch, entry.build_sensor()).unwrap();
    }
    let sample = Sample::cell_culture_medium()
        .with_analyte(Analyte::ArachidonicAcid, Molar::from_micro_molar(20.0));
    let readings = chip.measure_all(&sample);
    assert_eq!(readings.len(), 5);
    // Channels whose analyte is present respond; absent analytes stay
    // at noise level.
    for r in &readings {
        let present = sample.concentration(r.analyte).as_molar() > 0.0;
        if present {
            // The glutamate channel is the least sensitive (0.9
            // µA·mM⁻¹·cm⁻² × 0.0025 cm² × 0.2 mM ≈ 0.45 nA).
            assert!(r.current.as_nano_amps() > 0.3, "{:?}", r);
        }
    }
}

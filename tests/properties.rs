//! Property-based tests over the end-to-end pipeline: invariants that
//! must hold for *any* physically sensible configuration, not just the
//! catalog points. Sampled deterministically via `bios_prng::cases`.

use biosim::core::catalog;
use biosim::core::protocol::{CalibrationProtocol, Chronoamperometry};
use biosim::core::sensor::{Biosensor, Technique};
use biosim::core::Analyte;
use biosim::enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
use biosim::nanomaterial::{ElectrodeStock, SurfaceModification};
use biosim::prelude::*;
use biosim::prng::cases;
use biosim::units::SurfaceLoading;

fn arbitrary_sensor(loading_pmol: f64, activity: f64, km_shift: f64) -> Biosensor {
    let film = EnzymeFilm::builder()
        .loading(SurfaceLoading::from_pico_mol_per_square_cm(loading_pmol))
        .retained_activity(activity)
        .km_shift(km_shift)
        .build();
    Biosensor::builder("property sensor", Analyte::Glucose)
        .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
        .modification(SurfaceModification::mwcnt_nafion())
        .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
        .technique(Technique::paper_chronoamperometry())
        .build()
}

/// Faradaic current is non-negative and monotone non-decreasing in
/// concentration for any film parameters.
#[test]
fn current_monotone_in_concentration() {
    cases(0x0801, 64, |rng| {
        let loading = rng.uniform_in(1.0, 500.0);
        let activity = rng.uniform_in(0.05, 1.0);
        let km_shift = rng.uniform_in(0.1, 10.0);
        let c_lo = rng.uniform_in(0.0, 5.0);
        let delta = rng.uniform_in(0.0, 5.0);
        let sensor = arbitrary_sensor(loading, activity, km_shift);
        let i_lo = sensor.faradaic_current(Molar::from_milli_molar(c_lo));
        let i_hi = sensor.faradaic_current(Molar::from_milli_molar(c_lo + delta));
        assert!(i_lo.as_amps() >= 0.0);
        assert!(i_hi.as_amps() >= i_lo.as_amps());
    });
}

/// Sensitivity scales linearly with enzyme loading.
#[test]
fn sensitivity_linear_in_loading() {
    cases(0x0802, 64, |rng| {
        let loading = rng.uniform_in(1.0, 200.0);
        let factor = rng.uniform_in(1.5, 5.0);
        let s1 = arbitrary_sensor(loading, 0.5, 1.0).model_sensitivity();
        let s2 = arbitrary_sensor(loading * factor, 0.5, 1.0).model_sensitivity();
        let ratio = s2.as_micro_amps_per_milli_molar_square_cm()
            / s1.as_micro_amps_per_milli_molar_square_cm();
        assert!((ratio - factor).abs() / factor < 1e-9);
    });
}

/// The detected linear range never exceeds the sweep and the
/// measured sensitivity is positive, for any seed.
#[test]
fn calibration_invariants_under_any_seed() {
    cases(0x0803, 64, |rng| {
        let seed = rng.next_u64() % 10_000;
        let entry = catalog::our_glucose_sensor();
        let outcome = entry.run_calibration(seed).unwrap();
        let sweep = entry.sweep();
        assert!(outcome.summary.linear_range.high() <= sweep.high());
        assert!(outcome.summary.linear_range.low() >= sweep.low());
        assert!(
            outcome
                .summary
                .sensitivity
                .as_micro_amps_per_milli_molar_square_cm()
                > 0.0
        );
        assert!(outcome.summary.detection_limit.as_molar() > 0.0);
        assert!(outcome.summary.r_squared > 0.9);
    });
}

/// Blank samples never read more than a few noise sigmas on any
/// channel, for any seed.
#[test]
fn blanks_stay_at_noise_level() {
    cases(0x0804, 64, |rng| {
        let seed = rng.next_u64() % 1_000;
        let entry = catalog::our_lactate_sensor();
        let sensor = entry.build_sensor();
        let mut chain = entry.build_readout(seed);
        let blank = chain.digitize(sensor.faradaic_current(Molar::ZERO));
        let sigma = entry.readout_noise();
        assert!(blank.as_amps().abs() < 6.0 * sigma.as_amps());
    });
}

/// Quantification round trip: currents inside the linear range map
/// back to concentrations within 15 % for arbitrary target points.
#[test]
fn quantification_round_trip() {
    cases(0x0805, 64, |rng| {
        let frac = rng.uniform_in(0.2, 0.9);
        let seed = rng.next_u64() % 500;
        let entry = catalog::our_glucose_sensor();
        let outcome = entry.run_calibration(seed).unwrap();
        let sensor = entry.build_sensor();
        let top = outcome.summary.linear_range.high();
        let unknown = Molar::from_molar(top.as_molar() * frac);
        let mut chain = entry.build_readout(seed.wrapping_add(1));
        let current = chain.digitize(sensor.faradaic_current(unknown));
        let slope = outcome
            .summary
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm()
            * sensor.electrode().area().as_square_cm();
        let estimate = current.as_micro_amps() / slope; // mM
        let rel = (estimate - unknown.as_milli_molar()).abs() / unknown.as_milli_molar();
        assert!(rel < 0.15, "recovered {estimate} mM for {unknown} ({rel})");
    });
}

/// A calibration over shuffled standards yields the same curve as
/// over sorted standards (points are sorted internally).
#[test]
fn standard_order_is_irrelevant() {
    cases(0x0806, 64, |rng| {
        let seed = rng.next_u64() % 200;
        let entry = catalog::our_glucose_sensor();
        let sensor = entry.build_sensor();
        let protocol = Chronoamperometry::default();
        let sorted: Vec<Molar> = entry.sweep().linspace(9);
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        // Use identical chains (same seed) for a fair comparison of the
        // analysis path; the noise stream differs per ordering, so we
        // only compare structural outputs.
        let c1 = protocol.calibrate(&sensor, &mut entry.build_readout(seed), &sorted);
        let c2 = protocol.calibrate(&sensor, &mut entry.build_readout(seed), &shuffled);
        let xs1 = c1.concentrations_milli_molar();
        let xs2 = c2.concentrations_milli_molar();
        assert_eq!(xs1, xs2);
    });
}

//! Worker-count independence: a fleet over the full catalog must
//! produce byte-identical calibration summaries at 1, 2, and 8 workers
//! for a fixed seed — scheduling must never leak into the physics.

use biosim::core::catalog;
use biosim::faults::{FaultKind, FaultPlan};
use biosim::runtime::{Fleet, Runtime, RuntimeConfig};

fn full_catalog_fleet(seed: u64) -> Fleet {
    let mut sensors = catalog::all_table2();
    sensors.extend(catalog::multi_panel_sensors());
    Fleet::builder("determinism")
        .sensors(sensors)
        .seed(seed)
        .build()
}

#[test]
fn digests_identical_across_worker_counts() {
    let fleet = full_catalog_fleet(42);
    let digests: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let runtime = Runtime::new(
                RuntimeConfig::default()
                    .with_workers(workers)
                    .with_cache(false),
            );
            let report = runtime.run(&fleet);
            assert_eq!(report.results.len(), fleet.len());
            assert!(
                report.failures().next().is_none(),
                "catalog fleet must calibrate cleanly"
            );
            report.summaries_digest()
        })
        .collect();
    assert!(!digests[0].is_empty());
    assert_eq!(digests[0], digests[1], "1 vs 2 workers diverged");
    assert_eq!(digests[0], digests[2], "1 vs 8 workers diverged");
}

#[test]
fn concurrent_digest_matches_sequential_reference() {
    let fleet = full_catalog_fleet(7);
    let sequential = Runtime::new(RuntimeConfig::default().with_workers(1).with_cache(false))
        .run_sequential(&fleet);
    let concurrent =
        Runtime::new(RuntimeConfig::default().with_workers(8).with_cache(false)).run(&fleet);
    assert_eq!(sequential.summaries_digest(), concurrent.summaries_digest());
}

#[test]
fn cached_rerun_preserves_the_digest() {
    let fleet = full_catalog_fleet(3);
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(4));
    let first = runtime.run(&fleet);
    let second = runtime.run(&fleet);
    assert_eq!(second.cache_hits(), fleet.len());
    assert_eq!(first.summaries_digest(), second.summaries_digest());
}

#[test]
fn armed_fault_plan_digests_identical_across_worker_counts() {
    // Chaos must be as deterministic as health: an armed plan that
    // panics some jobs, glitches others into retries, and degrades the
    // physics still yields byte-identical digests and the same
    // completed/degraded/failed triage at 1, 2, and 8 workers.
    let plan = FaultPlan::builder("determinism-chaos", 0xBAD5EED)
        .spec(FaultKind::TransientGlitch, 0.8, 0.4)
        .spec(FaultKind::WorkerPanic, 0.15, 1.0)
        .spec(FaultKind::FilmDenaturation, 0.5, 0.7)
        .spec(FaultKind::ElectrodeFouling, 0.5, 0.6)
        .spec(FaultKind::ReadoutSpike, 0.4, 0.5)
        .build();
    let mut sensors = catalog::all_table2();
    sensors.extend(catalog::multi_panel_sensors());
    let fleet = Fleet::builder("chaos-determinism")
        .sensors(sensors)
        .seed(42)
        .fault_plan(plan)
        .build();
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            Runtime::new(
                RuntimeConfig::default()
                    .with_workers(workers)
                    .with_cache(false)
                    .with_retry_backoff(std::time::Duration::from_micros(10)),
            )
            .run(&fleet)
        })
        .collect();
    let outcome = reports[0].outcome_summary();
    assert!(outcome.failed >= 1, "plan must panic ≥1 job: {outcome}");
    assert!(outcome.degraded >= 1, "plan must degrade ≥1 job: {outcome}");
    assert!(
        outcome.completed >= 1,
        "some channels must stay clean: {outcome}"
    );
    for report in &reports[1..] {
        assert_eq!(report.summaries_digest(), reports[0].summaries_digest());
        assert_eq!(report.outcome_summary(), outcome);
    }
}

#[test]
fn different_seeds_produce_different_digests() {
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(4).with_cache(false));
    let a = runtime.run(&full_catalog_fleet(1)).summaries_digest();
    let b = runtime.run(&full_catalog_fleet(2)).summaries_digest();
    assert_ne!(a, b, "noise seeds must matter");
}

//! Worker-count independence: a fleet over the full catalog must
//! produce byte-identical calibration summaries at 1, 2, and 8 workers
//! for a fixed seed — scheduling must never leak into the physics.

use biosim::core::catalog;
use biosim::runtime::{Fleet, Runtime, RuntimeConfig};

fn full_catalog_fleet(seed: u64) -> Fleet {
    let mut sensors = catalog::all_table2();
    sensors.extend(catalog::multi_panel_sensors());
    Fleet::builder("determinism")
        .sensors(sensors)
        .seed(seed)
        .build()
}

#[test]
fn digests_identical_across_worker_counts() {
    let fleet = full_catalog_fleet(42);
    let digests: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let runtime = Runtime::new(
                RuntimeConfig::default()
                    .with_workers(workers)
                    .with_cache(false),
            );
            let report = runtime.run(&fleet);
            assert_eq!(report.results.len(), fleet.len());
            assert!(
                report.failures().next().is_none(),
                "catalog fleet must calibrate cleanly"
            );
            report.summaries_digest()
        })
        .collect();
    assert!(!digests[0].is_empty());
    assert_eq!(digests[0], digests[1], "1 vs 2 workers diverged");
    assert_eq!(digests[0], digests[2], "1 vs 8 workers diverged");
}

#[test]
fn concurrent_digest_matches_sequential_reference() {
    let fleet = full_catalog_fleet(7);
    let sequential = Runtime::new(RuntimeConfig::default().with_workers(1).with_cache(false))
        .run_sequential(&fleet);
    let concurrent =
        Runtime::new(RuntimeConfig::default().with_workers(8).with_cache(false)).run(&fleet);
    assert_eq!(sequential.summaries_digest(), concurrent.summaries_digest());
}

#[test]
fn cached_rerun_preserves_the_digest() {
    let fleet = full_catalog_fleet(3);
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(4));
    let first = runtime.run(&fleet);
    let second = runtime.run(&fleet);
    assert_eq!(second.cache_hits(), fleet.len());
    assert_eq!(first.summaries_digest(), second.summaries_digest());
}

#[test]
fn different_seeds_produce_different_digests() {
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(4).with_cache(false));
    let a = runtime.run(&full_catalog_fleet(1)).summaries_digest();
    let b = runtime.run(&full_catalog_fleet(2)).summaries_digest();
    assert_ne!(a, b, "noise seeds must matter");
}

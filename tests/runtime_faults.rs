//! Per-job fault aggregation: one mis-configured sensor in a fleet
//! must fail alone — every healthy channel still calibrates, and the
//! report carries the broken channel's error instead of aborting.

use biosim::core::catalog;
use biosim::runtime::{Fleet, JobError, Runtime, RuntimeConfig};

/// A sensor whose sweep has too few points for linear-range detection
/// (the analyzer needs at least 3).
fn broken_entry() -> biosim::core::catalog::CatalogEntry {
    catalog::our_glucose_sensor()
        .with_id("glucose/broken")
        .with_sweep_points(2)
}

#[test]
fn one_bad_sensor_fails_alone() {
    let fleet = Fleet::builder("faulty")
        .sensors(catalog::glucose_sensors())
        .sensor(broken_entry())
        .seed(42)
        .build();
    let report = Runtime::new(RuntimeConfig::default().with_workers(4)).run(&fleet);

    assert_eq!(report.results.len(), fleet.len());
    let failures: Vec<_> = report.failures().collect();
    assert_eq!(failures.len(), 1, "exactly the broken channel fails");
    let (result, error) = failures[0];
    assert_eq!(result.sensor, "glucose/broken");
    assert!(
        matches!(error, JobError::Calibration(_)),
        "calibration error expected, got: {error}"
    );
    // Every healthy channel completed with usable figures of merit.
    assert_eq!(report.successes().count(), fleet.len() - 1);
    for (result, outcome) in report.successes() {
        assert_ne!(result.sensor, "glucose/broken");
        assert!(outcome.summary.r_squared > 0.9);
    }
}

#[test]
fn failures_are_not_cached() {
    let fleet = Fleet::builder("faulty-rerun")
        .sensor(broken_entry())
        .seed(1)
        .build();
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(2));
    let first = runtime.run(&fleet);
    assert_eq!(first.failures().count(), 1);
    // The failed job is retried (and fails again) rather than served
    // from the cache: only successes are memoized.
    let second = runtime.run(&fleet);
    assert_eq!(second.cache_hits(), 0);
    assert_eq!(second.failures().count(), 1);
}

#[test]
fn sequential_path_aggregates_identically() {
    let fleet = Fleet::builder("faulty-seq")
        .sensors(catalog::lactate_sensors())
        .sensor(broken_entry())
        .seed(5)
        .build();
    let runtime = Runtime::new(RuntimeConfig::default().with_workers(1).with_cache(false));
    let report = runtime.run_sequential(&fleet);
    assert_eq!(report.failures().count(), 1);
    assert_eq!(report.successes().count(), fleet.len() - 1);
}

#[test]
fn fault_digest_records_the_error_line() {
    let fleet = Fleet::builder("faulty-digest")
        .sensor(broken_entry())
        .seed(9)
        .build();
    let report =
        Runtime::new(RuntimeConfig::default().with_workers(2).with_cache(false)).run(&fleet);
    let digest = report.summaries_digest();
    assert!(digest.contains("glucose/broken seed=9 ERROR"), "{digest}");
}

//! Multiplexed-readout trade-offs: sharing one front end across the
//! 5-electrode chip versus per-channel chains.

use biosim::instrument::sequencer::ScanSchedule;
use biosim::prelude::*;
use biosim::units::Seconds;

#[test]
fn five_channel_frame_fits_chronoamperometric_sampling() {
    // The paper's oxidase protocol samples the settled plateau; a mux
    // frame must revisit each channel faster than the plateau drifts
    // (seconds scale). 50 ms settling + 200 ms dwell → 1.25 s frames.
    let schedule = ScanSchedule::new(5, Seconds::from_millis(50.0), Seconds::from_millis(200.0));
    assert!(schedule.frame_time().as_seconds() < 2.0);
    // At a 1 kHz ADC each channel still collects 160 samples/s — far
    // more than the 8-sample averaging window the protocol uses.
    assert!(schedule.effective_rate_hz(1000.0) > 100.0);
}

#[test]
fn mux_snr_penalty_is_bounded_and_priced_in() {
    let dedicated = ScanSchedule::new(1, Seconds::from_millis(0.001), Seconds::from_millis(200.0));
    let shared = ScanSchedule::new(5, Seconds::from_millis(50.0), Seconds::from_millis(200.0));
    // Sharing the chain across 5 channels costs √5·√(1/duty) ≈ 2.5× in
    // averaging SNR — recoverable by dwelling 6× longer if needed.
    let penalty = dedicated.snr_penalty() / shared.snr_penalty();
    assert!(penalty > 2.0 && penalty < 3.0, "penalty {penalty}");
}

#[test]
fn sequenced_platform_measurements_remain_selective() {
    use biosim::core::catalog;
    use biosim::core::platform::SensingPlatform;

    // Visiting channels in schedule order must not change their
    // readings: the platform is stateless between visits.
    let mut chip = SensingPlatform::epfl_chip(77);
    chip.mount(0, catalog::our_glucose_sensor().build_sensor())
        .unwrap();
    chip.mount(1, catalog::our_lactate_sensor().build_sensor())
        .unwrap();
    chip.mount(2, catalog::our_glutamate_sensor().build_sensor())
        .unwrap();
    let sample = Sample::cell_culture_medium().diluted(10.0);

    let schedule = ScanSchedule::new(3, Seconds::from_millis(50.0), Seconds::from_millis(200.0));
    // Scan three frames; each channel's reading stays consistent frame
    // to frame (within noise).
    let mut per_channel: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for _frame in 0..3 {
        for (ch, readings) in per_channel.iter_mut().enumerate().take(schedule.channels()) {
            let r = chip.measure(ch, &sample).unwrap();
            readings.push(r.current.as_nano_amps());
        }
    }
    for (ch, readings) in per_channel.iter().enumerate() {
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        for r in readings {
            assert!(
                (r - mean).abs() < 1.0 + 0.05 * mean.abs(),
                "channel {ch} drifted: {readings:?}"
            );
        }
    }
}
